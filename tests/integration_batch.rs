//! Integration tests for the parallel batch-sweep subsystem: the ISSUE's
//! acceptance criterion (≥ 8 same-topology power-grid jobs, exactly one
//! symbolic analysis, bit-identical to sequential execution at any thread
//! count), per-job error isolation, mixed-method pattern sharing, and
//! `StreamingObserver` decimation under batch use.

use exi_netlist::generators::{power_grid, rc_ladder, PowerGridSpec, RcLadderSpec};
use exi_netlist::Circuit;
use exi_sim::{
    BatchJob, BatchPlan, BatchProgress, BatchRunner, Method, RunStats, Simulator, TransientOptions,
};

fn grid_circuit() -> Circuit {
    power_grid(&PowerGridSpec::default()).expect("power grid builds")
}

fn grid_options(k: usize) -> TransientOptions {
    // Eight distinct corners of the step-control options; the topology (and
    // hence every matrix pattern and the DC start) is shared.
    TransientOptions {
        t_stop: 4e-10 + k as f64 * 5e-11,
        h_init: 1e-12,
        h_max: 1e-11 + k as f64 * 2e-12,
        error_budget: 1e-3 / (1.0 + k as f64 * 0.3),
        ..TransientOptions::default()
    }
}

fn grid_plan(jobs: usize) -> BatchPlan {
    let mut plan = BatchPlan::new();
    for k in 0..jobs {
        plan.push(
            BatchJob::new(
                format!("corner{k}"),
                grid_circuit(),
                Method::ExponentialRosenbrock,
                grid_options(k),
            )
            .probe("g_3_3")
            .probe("g_7_7"),
        );
    }
    plan
}

/// `(times, samples, final_state)` of one recorded job.
type Waveform = (Vec<f64>, Vec<Vec<f64>>, Vec<f64>);

/// The waveform of every recorded job, for bit-level comparison.
fn waveforms(result: &exi_sim::BatchResult) -> Vec<Waveform> {
    result
        .jobs
        .iter()
        .map(|j| {
            let r = j.recorded().expect("recorded output");
            (r.times.clone(), r.samples.clone(), r.final_state.clone())
        })
        .collect()
}

/// Zeroes the fields that legitimately vary between equivalent batch
/// executions (wall-clock time, lock-wait time and configured concurrency).
/// `shared_symbolic_wait_events` is deliberately *not* normalized: with
/// every pattern pre-published before workers start, no job ever blocks on
/// an in-flight cache slot, at any thread count.
fn normalized(stats: &RunStats) -> RunStats {
    RunStats {
        runtime: std::time::Duration::ZERO,
        cache_wait: std::time::Duration::ZERO,
        worker_threads: 0,
        ..stats.clone()
    }
}

/// The ISSUE acceptance criterion, end to end.
#[test]
fn power_grid_sweep_is_bit_identical_at_any_thread_count_with_one_symbolic_analysis() {
    const JOBS: usize = 8;
    // Sequential reference: a fresh, unshared session per job.
    let reference: Vec<_> = (0..JOBS)
        .map(|k| {
            let circuit = grid_circuit();
            let r = Simulator::new(&circuit)
                .transient(
                    Method::ExponentialRosenbrock,
                    &grid_options(k),
                    &["g_3_3", "g_7_7"],
                )
                .expect("sequential run");
            (r.times, r.samples, r.final_state)
        })
        .collect();

    let mut merged_stats = Vec::new();
    let mut batch_waveforms = Vec::new();
    for threads in [1, 2, 8] {
        let plan = grid_plan(JOBS);
        let result = BatchRunner::new().worker_threads(threads).run(&plan);
        assert!(result.all_ok(), "threads={threads}: {:?}", result.failed());
        assert_eq!(result.stats.batch_jobs, JOBS);
        assert_eq!(result.stats.worker_threads, threads);
        // Exactly one symbolic analysis for the whole fleet — performed up
        // front by the runner — so every job derived its factors from the
        // shared cache, and none ever blocked on an in-flight slot.
        assert_eq!(
            result.stats.symbolic_analyses, 1,
            "threads={threads}: {:?}",
            result.stats
        );
        assert_eq!(result.stats.shared_symbolic_hits, JOBS);
        assert_eq!(result.stats.shared_symbolic_wait_events, 0);
        assert_eq!(
            result.stats.lu_factorizations,
            result.stats.symbolic_analyses + result.stats.lu_refactorizations
        );
        batch_waveforms.push(waveforms(&result));
        merged_stats.push(normalized(&result.stats));
    }

    // Bit-identical across thread counts…
    assert_eq!(batch_waveforms[0], batch_waveforms[1]);
    assert_eq!(batch_waveforms[0], batch_waveforms[2]);
    assert_eq!(merged_stats[0], merged_stats[1]);
    assert_eq!(merged_stats[0], merged_stats[2]);
    // …and bit-identical to isolated sequential sessions.
    assert_eq!(batch_waveforms[0], reference);
}

/// Mixed methods on one topology: the `G` pattern and the implicit
/// `C/h + θG` pattern are each analyzed exactly once, no matter how many
/// jobs use them.
#[test]
fn mixed_method_batch_shares_both_pattern_analyses() {
    let options = TransientOptions {
        t_stop: 3e-10,
        h_init: 1e-12,
        h_max: 1e-11,
        error_budget: 1e-3,
        ..TransientOptions::default()
    };
    let mut plan = BatchPlan::new();
    for (k, method) in [
        Method::ExponentialRosenbrock,
        Method::BackwardEuler,
        Method::BackwardEuler,
        Method::Trapezoidal,
        Method::ExponentialRosenbrockCorrected,
    ]
    .into_iter()
    .enumerate()
    {
        plan.push(
            BatchJob::new(
                format!("{k}-{method}"),
                grid_circuit(),
                method,
                options.clone(),
            )
            .probe("g_3_3"),
        );
    }
    for threads in [1, 4] {
        let runner = BatchRunner::new().worker_threads(threads);
        let result = runner.run(&plan);
        assert!(result.all_ok());
        // On the power grid every capacitor sits at a node that also carries
        // conductance, so the implicit Jacobian C/h + θG has *exactly* the
        // pattern of G — the pattern-keyed cache legitimately serves both
        // matrix roles (and BE vs TR: θ scales values, not the pattern) from
        // one analysis. The invariant is "one symbolic analysis per distinct
        // pattern", measured directly against the cache:
        assert_eq!(
            result.stats.symbolic_analyses,
            runner.cache().patterns(),
            "threads={threads}: {:?}",
            result.stats
        );
        assert_eq!(result.stats.symbolic_analyses, 1);
        // Seeding events: every job seeds its G slot once (5) and every
        // implicit job additionally seeds its Jacobian slot once (3); the
        // single analysis was pre-published by the runner, so all eight
        // seedings were shared-cache hits.
        assert_eq!(result.stats.shared_symbolic_hits, 5 + 3);
    }
}

/// One failing job must leave the other jobs' results and the merged
/// counters intact — and its own partial statistics still count.
#[test]
fn job_failures_are_isolated_and_reported_with_context() {
    let good_options = grid_options(0);
    let mut plan = BatchPlan::new();
    plan.push(
        BatchJob::new(
            "good",
            grid_circuit(),
            Method::ExponentialRosenbrock,
            good_options.clone(),
        )
        .probe("g_3_3"),
    );
    // An unreachable Newton tolerance: the DC solve (which uses its own
    // tolerance) succeeds, then every transient step fails to converge and
    // the step control collapses — a mid-run failure with real partial work.
    plan.push(BatchJob::new(
        "newton-death",
        grid_circuit(),
        Method::BackwardEuler,
        TransientOptions {
            newton_tolerance: 0.0,
            newton_max_iterations: 2,
            ..good_options.clone()
        },
    ));
    plan.push(
        BatchJob::new(
            "also-good",
            grid_circuit(),
            Method::ExponentialRosenbrock,
            good_options,
        )
        .probe("g_3_3"),
    );
    let result = BatchRunner::new().worker_threads(2).run(&plan);
    assert_eq!(result.len(), 3);
    assert_eq!(result.failed(), 1);
    assert!(result.jobs[0].is_ok());
    assert!(!result.jobs[1].is_ok());
    assert!(result.jobs[2].is_ok());
    assert_eq!(result.jobs[1].label, "newton-death");
    // The failed job did real work before dying; its counters are merged.
    assert!(result.jobs[1].stats.lu_factorizations > 0);
    assert_eq!(result.stats.batch_jobs, 3);
    // The two successful runs are identical (same circuit, same options).
    let a = result.jobs[0].recorded().unwrap();
    let b = result.jobs[2].recorded().unwrap();
    assert_eq!(a.times, b.times);
    assert_eq!(a.samples, b.samples);
}

/// StreamingObserver decimation under batch use: a streaming job retains a
/// bounded, stride-doubled subset of exactly the points an equivalent
/// recording job accepts.
#[test]
fn streaming_jobs_decimate_the_same_accepted_points() {
    let circuit = rc_ladder(&RcLadderSpec {
        segments: 6,
        ..RcLadderSpec::default()
    })
    .expect("ladder builds");
    // A long run (small h_max) so the 16-point buffer decimates repeatedly.
    let options = TransientOptions {
        t_stop: 2e-9,
        h_init: 1e-12,
        h_max: 4e-12,
        error_budget: 1e-3,
        ..TransientOptions::default()
    };
    let mut plan = BatchPlan::new();
    plan.push(
        BatchJob::new(
            "recorded",
            circuit.clone(),
            Method::ExponentialRosenbrock,
            options.clone(),
        )
        .probe("n6"),
    );
    plan.push(
        BatchJob::new("streamed", circuit, Method::ExponentialRosenbrock, options)
            .probe("n6")
            .streaming(16),
    );
    let result = BatchRunner::new().worker_threads(2).run(&plan);
    assert!(result.all_ok());
    let recorded = result.jobs[0].recorded().expect("recorded waveform");
    let streamed = result.jobs[1].streamed().expect("streamed waveform");
    assert!(
        recorded.len() > 64,
        "want a long run, got {} points",
        recorded.len()
    );
    // Bounded memory, repeated stride doubling.
    assert!(streamed.len() < 16);
    assert!(streamed.stride >= 8, "stride {}", streamed.stride);
    assert!(streamed.stride.is_power_of_two());
    assert_eq!(streamed.observed, recorded.len());
    // The retained points are exactly the recorded points on the stride grid
    // (both jobs are bit-identical runs of the same circuit).
    for (k, (&t, row)) in streamed
        .times
        .iter()
        .zip(streamed.values.chunks(streamed.probes.len()))
        .enumerate()
    {
        let source = k * streamed.stride;
        assert_eq!(t, recorded.times[source], "retained point {k}");
        assert_eq!(row[0], recorded.samples[source][0], "retained point {k}");
    }
}

/// A pattern group whose first (pilot) job fails must promote the next
/// candidate deterministically: output stays bit-identical at every thread
/// count and the fleet still performs exactly one symbolic analysis.
#[test]
fn failed_pilot_promotes_the_next_candidate_deterministically() {
    let build_plan = || {
        let mut plan = BatchPlan::new();
        // The group's lowest-index job fails option validation before doing
        // any factorization — it must not wedge or randomize the group.
        plan.push(BatchJob::new(
            "doomed-pilot",
            grid_circuit(),
            Method::ExponentialRosenbrock,
            TransientOptions {
                h_init: 1.0, // > t_stop: rejected by validate()
                ..grid_options(0)
            },
        ));
        for k in 1..5 {
            plan.push(
                BatchJob::new(
                    format!("corner{k}"),
                    grid_circuit(),
                    Method::ExponentialRosenbrock,
                    grid_options(k),
                )
                .probe("g_3_3"),
            );
        }
        plan
    };
    let mut per_thread = Vec::new();
    for threads in [1, 4] {
        let result = BatchRunner::new()
            .worker_threads(threads)
            .run(&build_plan());
        assert_eq!(result.failed(), 1);
        assert!(!result.jobs[0].is_ok());
        // The runner pre-published the group's analysis before any job ran
        // (fingerprinting does not depend on the doomed job's options), so
        // the failure costs nothing: jobs 1..4 all shared the analysis.
        assert_eq!(
            result.stats.symbolic_analyses, 1,
            "threads={threads}: {:?}",
            result.stats
        );
        assert_eq!(result.stats.shared_symbolic_hits, 4);
        let waves: Vec<Waveform> = result.jobs[1..]
            .iter()
            .map(|j| {
                let r = j.recorded().expect("recorded output");
                (r.times.clone(), r.samples.clone(), r.final_state.clone())
            })
            .collect();
        per_thread.push(waves);
    }
    assert_eq!(per_thread[0], per_thread[1]);
    // And identical to isolated sequential sessions.
    for (k, wave) in per_thread[0].iter().enumerate() {
        let circuit = grid_circuit();
        let r = Simulator::new(&circuit)
            .transient(
                Method::ExponentialRosenbrock,
                &grid_options(k + 1),
                &["g_3_3"],
            )
            .expect("sequential run");
        assert_eq!(&(r.times, r.samples, r.final_state), wave, "job {}", k + 1);
    }
}

/// The progress hook sees every job exactly once, from worker threads.
#[test]
fn batch_progress_hook_reports_all_jobs() {
    let plan = grid_plan(5);
    let progress = BatchProgress::new();
    let result = BatchRunner::new()
        .worker_threads(3)
        .run_observed(&plan, &progress);
    assert!(result.all_ok());
    assert_eq!(progress.started(), 5);
    assert_eq!(progress.finished(), 5);
    assert_eq!(progress.failed(), 0);
}

/// Sharing one cache across several batches keeps amortizing: a second batch
/// on the same topology performs zero symbolic analyses.
#[test]
fn shared_cache_survives_across_batches() {
    let cache = std::sync::Arc::new(exi_sparse::SymbolicCache::new());
    let first = BatchRunner::new()
        .worker_threads(2)
        .shared_cache(std::sync::Arc::clone(&cache))
        .run(&grid_plan(3));
    assert_eq!(first.stats.symbolic_analyses, 1);
    let second = BatchRunner::new()
        .worker_threads(2)
        .shared_cache(cache)
        .run(&grid_plan(3));
    assert_eq!(second.stats.symbolic_analyses, 0, "{:?}", second.stats);
    assert_eq!(second.stats.shared_symbolic_hits, 3);
    // On a fully warmed cache no job may ever block on an in-flight slot:
    // warm lookups are pure reads, never condvar waits.
    assert_eq!(second.stats.shared_symbolic_wait_events, 0);
}
