//! Deck round-trip regression suite: the checked-in `tests/decks/*.sp`
//! fixtures must build circuits **bit-identical** to their generator-built
//! twins — same `circuit_fingerprint`, same waveforms, same `RunStats` —
//! across all four integration methods, and the `exi-cli` entry points must
//! reproduce the same bits end to end.
//!
//! # Updating the fixtures
//!
//! The deck files are generated from the workload generators through
//! `Deck::to_spice`. After an intentional generator or serializer change:
//!
//! ```text
//! UPDATE_DECKS=1 cargo test -p exi-cli --test integration_decks
//! git diff tests/decks/   # review!
//! ```

use std::path::PathBuf;

use exi_cli::{analysis_options, run_deck, RunConfig};
use exi_netlist::generators::{
    coupled_lines, inverter_chain, power_grid, rc_ladder, CoupledLinesSpec, InverterChainSpec,
    PowerGridSpec, RcLadderSpec,
};
use exi_netlist::{circuit_fingerprint, parse_deck_file, Analysis, Circuit, Deck};
use exi_sim::{Method, RunStats, Simulator, TransientResult};

/// One fixture: a generator circuit plus the `.tran` card and probes its
/// deck carries.
struct DeckCase {
    name: &'static str,
    circuit: Circuit,
    /// `.tran <step> <stop> <hmax>` arguments.
    tran: (f64, f64, f64),
    /// `.options reltol` — the error budget, matching the golden-waveform
    /// harness so the 4×4 sweep stays fast.
    reltol: f64,
    probes: Vec<&'static str>,
}

/// The four generator workloads, sized like the golden-waveform cases so a
/// full 4×4 method sweep stays fast.
fn deck_cases() -> Vec<DeckCase> {
    vec![
        DeckCase {
            name: "rc_ladder",
            circuit: rc_ladder(&RcLadderSpec {
                segments: 4,
                resistance: 200.0,
                capacitance: 2e-13,
                ..RcLadderSpec::default()
            })
            .expect("rc_ladder builds"),
            tran: (1e-12, 5e-10, 2e-11),
            reltol: 1e-3,
            probes: vec!["n2", "n4"],
        },
        DeckCase {
            name: "inverter_chain",
            circuit: inverter_chain(&InverterChainSpec {
                stages: 2,
                ..InverterChainSpec::default()
            })
            .expect("inverter_chain builds"),
            tran: (1e-12, 3e-10, 5e-12),
            reltol: 5e-3,
            probes: vec!["s1", "s2"],
        },
        DeckCase {
            name: "power_grid",
            circuit: power_grid(&PowerGridSpec {
                rows: 3,
                cols: 3,
                num_sinks: 2,
                ..PowerGridSpec::default()
            })
            .expect("power_grid builds"),
            tran: (1e-12, 5e-10, 2e-11),
            reltol: 1e-3,
            probes: vec!["g_1_1", "g_2_2"],
        },
        DeckCase {
            name: "coupled_lines",
            circuit: coupled_lines(&CoupledLinesSpec {
                lines: 2,
                segments: 4,
                random_couplings: 3,
                ..CoupledLinesSpec::default()
            })
            .expect("coupled_lines builds"),
            tran: (1e-12, 2e-10, 1e-11),
            reltol: 1e-2,
            probes: vec!["l0_3", "l1_3"],
        },
    ]
}

fn decks_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/cli; fixtures live at the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/decks")
}

fn fixture_path(name: &str) -> PathBuf {
    decks_dir().join(format!("{name}.sp"))
}

/// The deck a case serializes to.
fn case_deck(case: &DeckCase) -> Deck {
    let mut deck = Deck::new(case.circuit.clone());
    deck.title = Some(format!("{} generator workload", case.name));
    deck.analyses.push(Analysis::Tran {
        step: case.tran.0,
        stop: case.tran.1,
        h_max: Some(case.tran.2),
    });
    deck.prints = case.probes.iter().map(|p| p.to_string()).collect();
    deck.reltol = Some(case.reltol);
    deck
}

/// Zeroes the wall-clock field so two runs of identical work compare equal.
fn counters(stats: &RunStats) -> RunStats {
    RunStats {
        runtime: std::time::Duration::ZERO,
        ..stats.clone()
    }
}

fn run_twin(circuit: &Circuit, case: &DeckCase, method: Method) -> TransientResult {
    // The exact options the CLI derives from the deck's cards — the single
    // mapping both sides of every bit-identity assertion go through.
    let reference = case_deck(case);
    let options = analysis_options(&reference, &reference.analyses[0]).expect("tran card");
    Simulator::new(circuit)
        .transient(method, &options, &case.probes)
        .unwrap_or_else(|e| panic!("{} / {} failed: {e}", case.name, method.label()))
}

fn check_case(case: &DeckCase) {
    let update = std::env::var("UPDATE_DECKS").is_ok_and(|v| v == "1");
    let path = fixture_path(case.name);
    let text = case_deck(case).to_spice().expect("serializable circuit");
    if update {
        std::fs::create_dir_all(decks_dir()).expect("create tests/decks");
        std::fs::write(&path, &text).expect("write deck fixture");
    } else {
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing deck fixture {path:?} ({e}); generate it with \
                 UPDATE_DECKS=1 cargo test -p exi-cli --test integration_decks"
            )
        });
        assert_eq!(
            on_disk, text,
            "{}: checked-in deck no longer matches its generator serialization; \
             if intentional, regenerate with UPDATE_DECKS=1 and review the diff",
            case.name
        );
    }

    // The parsed deck must reproduce the generator circuit exactly.
    let deck = parse_deck_file(&path)
        .unwrap_or_else(|e| panic!("{}: deck fixture does not parse: {e}", case.name));
    assert_eq!(
        circuit_fingerprint(&deck.circuit),
        circuit_fingerprint(&case.circuit),
        "{}: deck-built circuit fingerprint differs from the generator's",
        case.name
    );
    assert_eq!(
        deck.analyses,
        vec![Analysis::Tran {
            step: case.tran.0,
            stop: case.tran.1,
            h_max: Some(case.tran.2),
        }],
        "{}: analysis card drifted",
        case.name
    );
    assert_eq!(
        deck.prints, case.probes,
        "{}: print card drifted",
        case.name
    );

    // And every method must replay bit-for-bit with identical statistics.
    for method in Method::all() {
        let from_deck = run_twin(&deck.circuit, case, method);
        let from_generator = run_twin(&case.circuit, case, method);
        assert!(
            from_generator.len() > 5,
            "{} / {}: suspiciously short run",
            case.name,
            method.label()
        );
        assert_eq!(
            from_deck.times,
            from_generator.times,
            "{} / {}: time axis diverged",
            case.name,
            method.label()
        );
        for (row, (a, b)) in from_deck
            .samples
            .iter()
            .zip(&from_generator.samples)
            .enumerate()
        {
            for (col, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    x.to_bits() == y.to_bits(),
                    "{} / {} row {row} col {col}: {x:.17e} != {y:.17e}",
                    case.name,
                    method.label()
                );
            }
        }
        assert_eq!(
            from_deck.final_state,
            from_generator.final_state,
            "{} / {}: final state diverged",
            case.name,
            method.label()
        );
        assert_eq!(
            counters(&from_deck.stats),
            counters(&from_generator.stats),
            "{} / {}: run statistics diverged",
            case.name,
            method.label()
        );
    }
}

#[test]
fn deck_rc_ladder_matches_generator_bitwise() {
    check_case(&deck_cases()[0]);
}

#[test]
fn deck_inverter_chain_matches_generator_bitwise() {
    check_case(&deck_cases()[1]);
}

#[test]
fn deck_power_grid_matches_generator_bitwise() {
    check_case(&deck_cases()[2]);
}

#[test]
fn deck_coupled_lines_matches_generator_bitwise() {
    check_case(&deck_cases()[3]);
}

/// The acceptance path: `exi-cli run tests/decks/power_grid.sp --method er`
/// must emit the exact bits of the generator-built `Simulator` run.
#[test]
fn cli_run_on_power_grid_deck_is_bit_identical_to_the_generator_run() {
    let case = &deck_cases()[2];
    let deck = parse_deck_file(fixture_path(case.name)).expect("fixture parses");
    let mut csv = Vec::new();
    let summary = run_deck(&deck, &RunConfig::default(), &mut csv).expect("cli run");
    let reference = run_twin(&case.circuit, case, Method::ExponentialRosenbrock);

    let text = String::from_utf8(csv).expect("utf-8 csv");
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("time,g_1_1,g_2_2"));
    let rows: Vec<Vec<f64>> = lines
        .map(|l| l.split(',').map(|c| c.parse().unwrap()).collect())
        .collect();
    assert_eq!(rows.len(), reference.len(), "row count != accepted points");
    assert_eq!(summary.rows, reference.len());
    for (k, row) in rows.iter().enumerate() {
        assert_eq!(
            row[0].to_bits(),
            reference.times[k].to_bits(),
            "row {k} time"
        );
        for (j, v) in row[1..].iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                reference.samples[k][j].to_bits(),
                "row {k} probe {j}"
            );
        }
    }
}

/// `--stream N` keeps a decimated, bounded view whose retained points are
/// genuine samples of the full run.
#[test]
fn cli_stream_mode_emits_a_bounded_subset_of_the_full_run() {
    let case = &deck_cases()[2];
    let deck = parse_deck_file(fixture_path(case.name)).expect("fixture parses");
    let mut csv = Vec::new();
    let config = RunConfig {
        stream: Some(16),
        ..RunConfig::default()
    };
    let summary = run_deck(&deck, &config, &mut csv).expect("cli stream run");
    assert!(summary.rows < 16, "stream rows {}", summary.rows);
    let reference = run_twin(&case.circuit, case, Method::ExponentialRosenbrock);
    let text = String::from_utf8(csv).unwrap();
    let full: std::collections::HashMap<u64, &Vec<f64>> = reference
        .times
        .iter()
        .zip(&reference.samples)
        .map(|(t, row)| (t.to_bits(), row))
        .collect();
    for line in text.lines().skip(1) {
        let cols: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
        let row = full
            .get(&cols[0].to_bits())
            .unwrap_or_else(|| panic!("retained time {:.17e} not in the full run", cols[0]));
        for (j, v) in cols[1..].iter().enumerate() {
            assert_eq!(v.to_bits(), row[j].to_bits());
        }
    }
}

/// End-to-end sweep over the checked-in `.param` template deck through the
/// real file-based code path (`exi_cli::run_sweep`).
#[test]
fn cli_sweep_fans_the_template_deck_across_values() {
    use exi_cli::{run_sweep, SweepConfig};
    let out_dir = std::env::temp_dir().join(format!("exi_cli_sweep_{}", std::process::id()));
    std::fs::remove_dir_all(&out_dir).ok();
    let config = SweepConfig {
        params: vec![(
            "rload".to_string(),
            vec!["1k".to_string(), "2k".to_string(), "5k".to_string()],
        )],
        threads: 2,
        ..SweepConfig::default()
    };
    let summary = run_sweep(&decks_dir().join("sweep_rc.sp"), &config, &out_dir).expect("sweep");
    assert_eq!(summary.members, 3);
    assert_eq!(summary.failed, 0);
    // One symbolic analysis (pre-published by the runner, so all three
    // members count as shared hits) and three distinct plans (the
    // resistance is part of the plan's fingerprint) for the whole fleet.
    assert_eq!(summary.stats.symbolic_analyses, 1);
    assert_eq!(summary.stats.shared_symbolic_hits, 3);
    assert_eq!(summary.stats.batch_jobs, 3);
    for value in ["1k", "2k", "5k"] {
        let file = out_dir.join(format!("rload={value}.csv"));
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("missing member waveform {file:?}: {e}"));
        assert!(text.starts_with("time,out\n"), "{file:?}");
        assert!(text.lines().count() > 5, "{file:?}");
    }
    std::fs::remove_dir_all(&out_dir).ok();
}

/// The full argv path: parse_args + execute with an output file, as the
/// binary would run it in CI.
#[test]
fn cli_argv_path_writes_an_output_file() {
    use exi_cli::{execute, parse_args, Command};
    let out_file = std::env::temp_dir().join(format!("exi_cli_run_{}.csv", std::process::id()));
    let deck_path = fixture_path("power_grid");
    let args: Vec<String> = [
        "run",
        deck_path.to_str().unwrap(),
        "--method",
        "er",
        "--out",
        "csv",
        "--output",
        out_file.to_str().unwrap(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let command = parse_args(&args).expect("argv parses");
    assert!(matches!(command, Command::Run { .. }));
    let mut status = Vec::new();
    execute(&command, &mut status).expect("execute");
    let status = String::from_utf8(status).unwrap();
    assert!(status.contains("symbolic LU analyses"), "{status}");
    let text = std::fs::read_to_string(&out_file).expect("output file written");
    assert!(text.starts_with("time,g_1_1,g_2_2\n"));
    assert!(text.lines().count() > 5);
    std::fs::remove_file(&out_file).ok();
}
