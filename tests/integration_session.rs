//! Integration tests for the `Simulator` session API: pause/resume
//! bit-identity, wrapper compatibility, cross-run cache reuse, streaming
//! observers and interleaved co-simulation.

use exi_netlist::generators::{inverter_chain, power_grid, InverterChainSpec, PowerGridSpec};
use exi_netlist::Circuit;
use exi_sim::{
    Engine, Method, NullObserver, Probe, RecordingObserver, Simulator, StepOutcome,
    StreamingObserver, TransientOptions,
};

fn grid_circuit() -> Circuit {
    power_grid(&PowerGridSpec {
        rows: 8,
        cols: 8,
        num_sinks: 8,
        ..PowerGridSpec::default()
    })
    .unwrap()
}

fn grid_options() -> TransientOptions {
    TransientOptions {
        t_stop: 2e-9,
        h_init: 1e-12,
        h_max: 2e-11,
        error_budget: 2e-3,
        ..TransientOptions::default()
    }
}

/// Acceptance bar: the deprecated `run_transient` wrapper produces
/// bit-identical waveforms to the session API for all four methods on the
/// power-grid case.
#[test]
fn wrapper_is_bit_identical_to_session_on_power_grid() {
    let ckt = grid_circuit();
    let options = grid_options();
    for method in Method::all() {
        #[allow(deprecated)]
        let wrapped = exi_sim::run_transient(&ckt, method, &options, &["g_4_4"]).unwrap();
        let session = Simulator::new(&ckt)
            .transient(method, &options, &["g_4_4"])
            .unwrap();
        assert_eq!(wrapped.times, session.times, "{method}: times differ");
        assert_eq!(wrapped.samples, session.samples, "{method}: samples differ");
        assert_eq!(
            wrapped.final_state, session.final_state,
            "{method}: final state differs"
        );
    }
}

/// Acceptance bar: a paused-then-resumed ER run is bit-identical to an
/// uninterrupted one — every accepted time point, every sample and the final
/// state.
#[test]
fn paused_and_resumed_er_run_is_bit_identical() {
    let ckt = grid_circuit();
    let options = grid_options();

    let uninterrupted = Simulator::new(&ckt)
        .transient(Method::ExponentialRosenbrock, &options, &["g_4_4"])
        .unwrap();

    let mut sim = Simulator::new(&ckt);
    let probes = vec![Probe::new("g_4_4", ckt.unknown_of("g_4_4").unwrap())];
    let mut observer = RecordingObserver::new(probes, false);
    let stats = {
        let mut stepper = sim
            .stepper(Method::ExponentialRosenbrock, &options)
            .unwrap();
        stepper.start(&mut observer).unwrap();
        // Pause twice along the way; inspect the stepper at each pause point.
        for t_pause in [0.4e-9, 1.2e-9] {
            let outcome = stepper.run_until(t_pause, &mut observer).unwrap();
            assert!(
                matches!(outcome, StepOutcome::Paused { .. }),
                "expected a pause at {t_pause:e}, got {outcome:?}"
            );
            assert!(stepper.time() >= t_pause * (1.0 - 1e-9));
            assert!(stepper.state().iter().all(|v| v.is_finite()));
            assert!(!stepper.is_finished());
        }
        // Final resume through run_to_end — it counts as a resume too.
        stepper.run_to_end(&mut observer).unwrap()
    };
    sim.absorb_run(&stats);
    let resumed = observer.into_result();

    assert_eq!(stats.resumed_runs, 2, "{stats:?}");
    assert_eq!(uninterrupted.times, resumed.times);
    assert_eq!(uninterrupted.samples, resumed.samples);
    assert_eq!(uninterrupted.final_state, resumed.final_state);
    // The callbacks were counted: one on_dc + one per accepted/rejected step
    // + one on_finish.
    assert_eq!(
        stats.observer_callbacks,
        2 + stats.accepted_steps + stats.rejected_steps,
        "{stats:?}"
    );
}

/// Cross-run reuse: two consecutive transient runs on an unchanged topology
/// perform exactly one symbolic analysis in total, and produce bit-identical
/// waveforms.
#[test]
fn consecutive_runs_share_one_symbolic_analysis() {
    let ckt = grid_circuit();
    let options = grid_options();
    let mut sim = Simulator::new(&ckt);
    let first = sim
        .transient(Method::ExponentialRosenbrock, &options, &["g_4_4"])
        .unwrap();
    let second = sim
        .transient(Method::ExponentialRosenbrock, &options, &["g_4_4"])
        .unwrap();
    // Per-run: the first run pays the single symbolic analysis (seeded by the
    // DC solve), the second reuses it outright.
    assert_eq!(first.stats.symbolic_analyses, 1, "{:?}", first.stats);
    assert_eq!(second.stats.symbolic_analyses, 0, "{:?}", second.stats);
    // The second run skipped the DC solve entirely.
    assert_eq!(second.stats.newton_iterations, 0, "{:?}", second.stats);
    // Session totals: exactly one symbolic analysis over both runs.
    assert_eq!(sim.session_stats().symbolic_analyses, 1);
    assert_eq!(sim.completed_runs(), 2);
    // Determinism: cache reuse does not change the waveform.
    assert_eq!(first.times, second.times);
    assert_eq!(first.samples, second.samples);
    assert_eq!(first.final_state, second.final_state);
}

/// Calling `dc()` before any transient still counts the DC solve's symbolic
/// analysis into the session totals exactly once.
#[test]
fn dc_first_session_still_counts_the_symbolic_analysis() {
    let ckt = grid_circuit();
    let mut sim = Simulator::new(&ckt);
    let dc = sim.dc().unwrap();
    assert!(dc.state.iter().all(|v| v.is_finite()));
    assert_eq!(sim.session_stats().symbolic_analyses, 1);
    sim.transient(Method::ExponentialRosenbrock, &grid_options(), &[])
        .unwrap();
    // The transient reused the cached DC solution and its symbolic analysis.
    assert_eq!(sim.session_stats().symbolic_analyses, 1);
    assert_eq!(sim.completed_runs(), 1);
}

/// A run that errors out mid-way still enters the session totals (its cache
/// mutations persist), but does not count as completed.
#[test]
fn failed_run_still_enters_session_totals() {
    let ckt = inverter_chain(&InverterChainSpec {
        stages: 1,
        ..InverterChainSpec::default()
    })
    .unwrap();
    let options = TransientOptions {
        t_stop: 1e-9,
        h_init: 1e-12,
        h_min: 1e-12,
        // Impossible error budget forces endless rejections.
        error_budget: 1e-30,
        ..TransientOptions::default()
    };
    let mut sim = Simulator::new(&ckt);
    let err = sim
        .transient(Method::ExponentialRosenbrock, &options, &[])
        .unwrap_err();
    assert!(matches!(err, exi_sim::SimError::StepSizeUnderflow { .. }));
    assert_eq!(sim.completed_runs(), 0);
    // The DC solve and the aborted run's factorizations are all accounted.
    let totals = sim.session_stats();
    assert!(totals.symbolic_analyses >= 1, "{totals:?}");
    assert!(totals.lu_factorizations >= 1, "{totals:?}");
    assert!(totals.rejected_steps > 0, "{totals:?}");
}

/// Requesting a different fill-reducing ordering drops the caches, so an
/// ordering sweep actually measures each ordering instead of silently
/// refactorizing with the first one.
#[test]
fn ordering_change_triggers_a_fresh_symbolic_analysis() {
    let ckt = grid_circuit();
    let mut sim = Simulator::new(&ckt);
    let rcm = TransientOptions {
        ordering: exi_sparse::OrderingMethod::Rcm,
        ..grid_options()
    };
    let mindeg = TransientOptions {
        ordering: exi_sparse::OrderingMethod::MinDegree,
        ..grid_options()
    };
    let first = sim
        .transient(Method::ExponentialRosenbrock, &rcm, &["g_4_4"])
        .unwrap();
    let second = sim
        .transient(Method::ExponentialRosenbrock, &mindeg, &["g_4_4"])
        .unwrap();
    let third = sim
        .transient(Method::ExponentialRosenbrock, &mindeg, &["g_4_4"])
        .unwrap();
    // The ordering change invalidates the caches: the second run pays for its
    // own symbolic analysis (and DC solve); the third reuses the second's.
    assert_eq!(first.stats.symbolic_analyses, 1, "{:?}", first.stats);
    assert_eq!(second.stats.symbolic_analyses, 1, "{:?}", second.stats);
    assert!(second.stats.newton_iterations > 0, "{:?}", second.stats);
    assert_eq!(third.stats.symbolic_analyses, 0, "{:?}", third.stats);
    assert_eq!(sim.session_stats().symbolic_analyses, 2);
    // The min-degree run matches a throwaway session with the same ordering.
    let solo = Simulator::new(&ckt)
        .transient(Method::ExponentialRosenbrock, &mindeg, &["g_4_4"])
        .unwrap();
    assert_eq!(solo.times, second.times);
    assert_eq!(solo.samples, second.samples);
}

/// A method sweep on one session shares the DC solution and workspaces; the
/// results match per-method throwaway sessions bit-for-bit.
#[test]
fn sweep_matches_individual_sessions() {
    let ckt = inverter_chain(&InverterChainSpec {
        stages: 2,
        ..InverterChainSpec::default()
    })
    .unwrap();
    let options = TransientOptions {
        t_stop: 2e-10,
        h_init: 2e-12,
        h_max: 1e-11,
        error_budget: 1e-2,
        ..TransientOptions::default()
    };
    let runs: Vec<(Method, TransientOptions)> = Method::all()
        .into_iter()
        .map(|m| (m, options.clone()))
        .collect();
    let mut sim = Simulator::new(&ckt);
    let swept = sim.sweep(&runs, &["s2"]).unwrap();
    assert_eq!(swept.len(), 4);
    assert_eq!(sim.completed_runs(), 4);
    for (method, result) in Method::all().into_iter().zip(&swept) {
        let solo = Simulator::new(&ckt)
            .transient(method, &options, &["s2"])
            .unwrap();
        assert_eq!(solo.times, result.times, "{method}");
        assert_eq!(solo.samples, result.samples, "{method}");
    }
}

/// The streaming observer keeps a bounded, decimated waveform of an
/// arbitrarily long run, and the null observer records nothing while the
/// solver statistics stay identical.
#[test]
fn streaming_and_null_observers() {
    let ckt = grid_circuit();
    let options = grid_options();
    let mut sim = Simulator::new(&ckt);

    let full = sim
        .transient(Method::ExponentialRosenbrock, &options, &["g_4_4"])
        .unwrap();

    let probes = vec![Probe::new("g_4_4", ckt.unknown_of("g_4_4").unwrap())];
    let capacity = 16;
    let mut streaming = StreamingObserver::new(probes, capacity);
    let streamed_stats = sim
        .transient_observed(Method::ExponentialRosenbrock, &options, &mut streaming)
        .unwrap();
    assert!(streaming.len() <= capacity);
    assert_eq!(streaming.observed(), full.len());
    // Every retained point is an exact sample of the full waveform.
    let p = full.probe_index("g_4_4").unwrap();
    let wf = streaming.waveform(0);
    assert!(!wf.is_empty());
    for &(t, v) in &wf {
        let k = full.times.iter().position(|&ft| ft == t).unwrap();
        assert_eq!(full.samples[k][p], v);
    }

    let null_stats = sim
        .transient_observed(Method::ExponentialRosenbrock, &options, &mut NullObserver)
        .unwrap();
    // Identical solver work, independent of the observer.
    assert_eq!(streamed_stats.accepted_steps, null_stats.accepted_steps);
    assert_eq!(streamed_stats.linear_solves, null_stats.linear_solves);
    assert_eq!(
        streamed_stats.observer_callbacks,
        null_stats.observer_callbacks
    );
}

/// Interleaved co-simulation: two circuits advance in lockstep through their
/// own sessions, and each produces the same waveform as a dedicated
/// uninterrupted run.
#[test]
fn interleaved_co_simulation_matches_solo_runs() {
    let ckt_a = grid_circuit();
    let ckt_b = inverter_chain(&InverterChainSpec {
        stages: 2,
        ..InverterChainSpec::default()
    })
    .unwrap();
    let options_a = grid_options();
    let options_b = TransientOptions {
        t_stop: 2e-10,
        h_init: 2e-12,
        h_max: 1e-11,
        error_budget: 1e-2,
        ..TransientOptions::default()
    };

    let solo_a = Simulator::new(&ckt_a)
        .transient(Method::ExponentialRosenbrock, &options_a, &[])
        .unwrap();
    let solo_b = Simulator::new(&ckt_b)
        .transient(Method::BackwardEuler, &options_b, &[])
        .unwrap();

    let mut sim_a = Simulator::new(&ckt_a);
    let mut sim_b = Simulator::new(&ckt_b);
    let mut obs_a = RecordingObserver::new(Vec::new(), false);
    let mut obs_b = RecordingObserver::new(Vec::new(), false);
    let mut stepper_a = sim_a
        .stepper(Method::ExponentialRosenbrock, &options_a)
        .unwrap();
    let mut stepper_b = sim_b.stepper(Method::BackwardEuler, &options_b).unwrap();
    // Round-robin: one accepted step of each circuit per iteration (the
    // steppers auto-initialize on the first advance).
    loop {
        let a = stepper_a.advance(&mut obs_a).unwrap();
        let b = stepper_b.advance(&mut obs_b).unwrap();
        if a == StepOutcome::Finished && b == StepOutcome::Finished {
            break;
        }
    }
    stepper_a.finish(&mut obs_a);
    stepper_b.finish(&mut obs_b);

    let co_a = obs_a.into_result();
    let co_b = obs_b.into_result();
    assert_eq!(solo_a.times, co_a.times);
    assert_eq!(solo_a.final_state, co_a.final_state);
    assert_eq!(solo_b.times, co_b.times);
    assert_eq!(solo_b.final_state, co_b.final_state);
}
