//! Integration tests for the stamping-plan hot path: exactly one plan
//! compilation per topology, a zero-allocation steady state, and
//! restamped-entry counts that scale with the nonlinear device count only.

use std::sync::Arc;

use exi_netlist::generators::{inverter_chain, power_grid, InverterChainSpec, PowerGridSpec};
use exi_sim::{BatchJob, BatchPlan, BatchRunner, Method, PlanCache, Simulator, TransientOptions};

fn options() -> TransientOptions {
    TransientOptions {
        t_stop: 5e-10,
        h_init: 1e-12,
        h_max: 2e-11,
        error_budget: 1e-3,
        ..TransientOptions::default()
    }
}

/// Acceptance criterion: a power-grid transient (linear-dominated workload)
/// compiles exactly one plan, performs zero steady-state assembly
/// allocations, and — having no nonlinear devices — restamps nothing: every
/// per-step matrix restore is a flat baseline copy.
#[test]
fn power_grid_transient_compiles_one_plan_and_restamps_nothing() {
    let spec = PowerGridSpec {
        rows: 10,
        cols: 10,
        num_sinks: 12,
        ..PowerGridSpec::default()
    };
    let circuit = power_grid(&spec).unwrap();
    let plan = circuit.compile_plan().unwrap();
    assert_eq!(plan.nonlinear_stamp_count(), 0);

    let mut sim = Simulator::new(&circuit);
    let first = sim
        .transient(Method::ExponentialRosenbrock, &options(), &["g_5_5"])
        .unwrap();
    assert!(first.stats.accepted_steps > 5);
    assert!(first.stats.device_evaluations > first.stats.accepted_steps);
    // One topology analysis for the whole run...
    assert_eq!(first.stats.plan_compilations, 1, "{:?}", first.stats);
    // ...zero nonlinear restamps (the grid is linear)...
    assert_eq!(first.stats.restamped_entries, 0);
    // ...and zero assembly allocations: every buffer was pre-sized.
    assert_eq!(first.stats.assembly_workspace_allocations, 0);

    // A second run (different method, same session) reuses the plan.
    let second = sim
        .transient(Method::BackwardEuler, &options(), &["g_5_5"])
        .unwrap();
    assert_eq!(second.stats.plan_compilations, 0, "{:?}", second.stats);
    assert_eq!(second.stats.assembly_workspace_allocations, 0);
    assert_eq!(sim.session_stats().plan_compilations, 1);
}

/// On a nonlinear workload the per-evaluation restamp cost is exactly the
/// nonlinear stamp count — the linear baseline (wires, loads, supplies) is
/// never re-stamped.
#[test]
fn restamped_entries_scale_with_nonlinear_stamps_only() {
    let spec = InverterChainSpec {
        stages: 3,
        ..InverterChainSpec::default()
    };
    let circuit = inverter_chain(&spec).unwrap();
    let plan = circuit.compile_plan().unwrap();
    let nl = plan.nonlinear_stamp_count();
    // 3 stages × (NMOS with grounded source: 2 live cells, PMOS with vdd
    // source: 6 live cells).
    assert_eq!(nl, 3 * (2 + 6));

    let opts = TransientOptions {
        t_stop: 2e-10,
        h_init: 1e-12,
        h_max: 5e-12,
        error_budget: 5e-3,
        ..TransientOptions::default()
    };
    for method in [Method::ExponentialRosenbrock, Method::BackwardEuler] {
        let run = Simulator::new(&circuit)
            .transient(method, &opts, &["s3"])
            .unwrap();
        assert_eq!(
            run.stats.restamped_entries,
            run.stats.device_evaluations * nl,
            "{method:?}: {:?}",
            run.stats
        );
        assert_eq!(run.stats.assembly_workspace_allocations, 0);
    }
}

/// A same-structure batch shares one compiled plan fleet-wide: the merged
/// statistics report a single compilation plus one cache hit per session.
#[test]
fn batch_jobs_share_one_plan_compilation() {
    let mut plan = BatchPlan::new();
    for k in 0..6 {
        // One fixed grid structure; only the error budget varies (a sink
        // seed would move the sinks and change the device structure).
        let spec = PowerGridSpec {
            rows: 6,
            cols: 6,
            num_sinks: 4,
            ..PowerGridSpec::default()
        };
        let circuit = power_grid(&spec).unwrap();
        let opts = TransientOptions {
            error_budget: 1e-3 / (k + 1) as f64,
            ..options()
        };
        plan.push(
            BatchJob::new(
                format!("budget{k}"),
                circuit,
                Method::ExponentialRosenbrock,
                opts,
            )
            .probe("g_3_3"),
        );
    }
    let shared_plans = Arc::new(PlanCache::new());
    let runner = BatchRunner::new()
        .worker_threads(3)
        .shared_plan_cache(Arc::clone(&shared_plans));
    let result = runner.run(&plan);
    assert!(result.all_ok());
    assert_eq!(result.stats.batch_jobs, 6);
    // One distinct structure -> one compile (performed by the fingerprint
    // pass), every session served from the pool.
    assert_eq!(result.stats.plan_compilations, 1, "{:?}", result.stats);
    assert_eq!(result.stats.shared_plan_hits, 6);
    assert_eq!(shared_plans.len(), 1);
    assert_eq!(result.stats.assembly_workspace_allocations, 0);
    let stats = shared_plans.stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.capacity, None);
    assert_eq!(stats.evictions, 0);
    // Exactly one compile server-wide; every other access was a warm hit
    // (the scheduling pre-pass and each session both consult the cache).
    assert_eq!(stats.misses, 1);
    assert!(stats.hits >= 6, "{stats:?}");
}

/// A capacity-bounded plan cache evicts its least-recently-used structure
/// and accounts every hit, miss, and eviction — residency guarantees for a
/// long-lived server process.
#[test]
fn bounded_plan_cache_evicts_lru_and_counts() {
    let circuits: Vec<_> = (2..5)
        .map(|stages| {
            inverter_chain(&InverterChainSpec {
                stages,
                ..InverterChainSpec::default()
            })
            .unwrap()
        })
        .collect();
    let (a, b, c) = (&circuits[0], &circuits[1], &circuits[2]);

    let cache = PlanCache::with_capacity(2);
    assert_eq!(cache.capacity(), Some(2));
    assert!(cache.get_or_compile(a).unwrap().1);
    assert!(cache.get_or_compile(b).unwrap().1);
    // Touch `a` so `b` becomes the least recently used...
    assert!(!cache.get_or_compile(a).unwrap().1);
    // ...then admit `c`, which must evict `b`.
    assert!(cache.get_or_compile(c).unwrap().1);
    assert_eq!(cache.len(), 2);
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 3, 1));
    // `b` was evicted, so it recompiles (displacing `a`, now the LRU),
    // while `c` is still resident.
    assert!(cache.get_or_compile(b).unwrap().1);
    assert!(!cache.get_or_compile(c).unwrap().1);
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 4, 2));
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.capacity, Some(2));
    assert!((stats.hit_rate() - 2.0 / 6.0).abs() < 1e-15);
}

/// A zero capacity is clamped to one entry: the cache still functions as a
/// single-slot plan holder instead of thrashing on every request.
#[test]
fn plan_cache_capacity_floor_is_one() {
    let cache = PlanCache::with_capacity(0);
    assert_eq!(cache.capacity(), Some(1));
    let spec = InverterChainSpec {
        stages: 2,
        ..InverterChainSpec::default()
    };
    let circuit = inverter_chain(&spec).unwrap();
    assert!(cache.get_or_compile(&circuit).unwrap().1);
    assert!(!cache.get_or_compile(&circuit).unwrap().1);
    assert_eq!(cache.len(), 1);
}
