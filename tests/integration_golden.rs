//! Golden-waveform regression harness.
//!
//! Every (generator, method) pair replays against a committed reference
//! waveform under `tests/golden/` and must reproduce it **bit for bit** —
//! the solver stack (device evaluation, LU pivoting and replay order, Krylov
//! subspace builds, step-size control) is deterministic, so any bit drift is
//! a behavioral change that must be reviewed, not noise to be tolerated.
//!
//! # Updating the fixtures
//!
//! After an *intentional* numerical change, regenerate and commit:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test integration_golden
//! git diff tests/golden/   # review the waveform drift!
//! ```
//!
//! Fixtures are plain text: comment header, then one `time value…` row per
//! accepted point, printed with 18 significant digits so every `f64`
//! round-trips exactly.

use std::fmt::Write as _;
use std::path::PathBuf;

use exi_netlist::generators::{
    coupled_lines, inverter_chain, power_grid, rc_ladder, CoupledLinesSpec, InverterChainSpec,
    PowerGridSpec, RcLadderSpec,
};
use exi_netlist::Circuit;
use exi_sim::{Method, Simulator, TransientOptions, TransientResult};

/// One golden case: a generator circuit plus the options and probes every
/// method replays with.
struct GoldenCase {
    name: &'static str,
    circuit: Circuit,
    options: TransientOptions,
    probes: Vec<&'static str>,
}

/// The four generator workloads, sized so each fixture stays compact
/// (tens of points) while exercising the full solver stack.
fn golden_cases() -> Vec<GoldenCase> {
    vec![
        GoldenCase {
            name: "rc_ladder",
            circuit: rc_ladder(&RcLadderSpec {
                segments: 4,
                resistance: 200.0,
                capacitance: 2e-13,
                ..RcLadderSpec::default()
            })
            .expect("rc_ladder builds"),
            options: TransientOptions {
                t_stop: 5e-10,
                h_init: 1e-12,
                h_max: 2e-11,
                error_budget: 1e-3,
                ..TransientOptions::default()
            },
            probes: vec!["n2", "n4"],
        },
        GoldenCase {
            name: "inverter_chain",
            circuit: inverter_chain(&InverterChainSpec {
                stages: 2,
                ..InverterChainSpec::default()
            })
            .expect("inverter_chain builds"),
            options: TransientOptions {
                t_stop: 3e-10,
                h_init: 1e-12,
                h_max: 5e-12,
                error_budget: 5e-3,
                ..TransientOptions::default()
            },
            probes: vec!["s1", "s2"],
        },
        GoldenCase {
            name: "power_grid",
            circuit: power_grid(&PowerGridSpec {
                rows: 3,
                cols: 3,
                num_sinks: 2,
                ..PowerGridSpec::default()
            })
            .expect("power_grid builds"),
            options: TransientOptions {
                t_stop: 5e-10,
                h_init: 1e-12,
                h_max: 2e-11,
                error_budget: 1e-3,
                ..TransientOptions::default()
            },
            probes: vec!["g_1_1", "g_2_2"],
        },
        GoldenCase {
            name: "coupled_lines",
            circuit: coupled_lines(&CoupledLinesSpec {
                lines: 2,
                segments: 4,
                random_couplings: 3,
                ..CoupledLinesSpec::default()
            })
            .expect("coupled_lines builds"),
            options: TransientOptions {
                t_stop: 2e-10,
                h_init: 1e-12,
                h_max: 1e-11,
                error_budget: 1e-2,
                ..TransientOptions::default()
            },
            probes: vec!["l0_3", "l1_3"],
        },
    ]
}

/// File-name tag for a method.
fn method_tag(method: Method) -> &'static str {
    match method {
        Method::BackwardEuler => "benr",
        Method::Trapezoidal => "trnr",
        Method::ExponentialRosenbrock => "er",
        Method::ExponentialRosenbrockCorrected => "erc",
    }
}

fn golden_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; fixtures live at the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn fixture_path(case: &str, method: Method) -> PathBuf {
    golden_dir().join(format!("{case}__{}.txt", method_tag(method)))
}

/// Serializes a result as a fixture. 18 significant digits round-trip every
/// finite `f64` exactly, so parse-then-compare is a bit-level check.
fn fixture_text(case: &GoldenCase, method: Method, result: &TransientResult) -> String {
    let mut out = String::new();
    writeln!(out, "# golden waveform fixture - do not edit by hand").unwrap();
    writeln!(
        out,
        "# case: {}  method: {}  probes: {}",
        case.name,
        method.label(),
        case.probes.join(",")
    )
    .unwrap();
    writeln!(
        out,
        "# regenerate: UPDATE_GOLDEN=1 cargo test --test integration_golden"
    )
    .unwrap();
    for (k, &t) in result.times.iter().enumerate() {
        write!(out, "{t:.17e}").unwrap();
        for v in &result.samples[k] {
            write!(out, " {v:.17e}").unwrap();
        }
        out.push('\n');
    }
    out
}

/// Parses a fixture back into rows of `f64`.
fn parse_fixture(text: &str) -> Vec<Vec<f64>> {
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| {
            l.split_whitespace()
                .map(|tok| tok.parse::<f64>().expect("fixture holds valid f64 values"))
                .collect()
        })
        .collect()
}

fn run_case(case: &GoldenCase, method: Method) -> TransientResult {
    // A fresh session per run: fixtures pin the canonical sequential
    // single-run behavior (what `BatchRunner` jobs must also reproduce).
    Simulator::new(&case.circuit)
        .transient(method, &case.options, &case.probes)
        .unwrap_or_else(|e| panic!("{} / {} failed: {e}", case.name, method.label()))
}

fn check_case(case: &GoldenCase) {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    for method in Method::all() {
        let result = run_case(case, method);
        assert!(
            result.len() > 5,
            "{} / {}: suspiciously short run ({} points)",
            case.name,
            method.label(),
            result.len()
        );
        let path = fixture_path(case.name, method);
        let text = fixture_text(case, method, &result);
        if update {
            std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
            std::fs::write(&path, &text).expect("write fixture");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {path:?} ({e}); \
                 generate it with UPDATE_GOLDEN=1 cargo test --test integration_golden"
            )
        });
        let expected = parse_fixture(&golden);
        let got = parse_fixture(&text);
        assert_eq!(
            expected.len(),
            got.len(),
            "{} / {}: accepted-point count changed ({} -> {}); if intentional, \
             regenerate with UPDATE_GOLDEN=1 and review the diff",
            case.name,
            method.label(),
            expected.len(),
            got.len()
        );
        for (row, (want, have)) in expected.iter().zip(got.iter()).enumerate() {
            assert_eq!(
                want.len(),
                have.len(),
                "{} / {} row {row}: column count changed",
                case.name,
                method.label()
            );
            for (col, (w, h)) in want.iter().zip(have.iter()).enumerate() {
                assert!(
                    w.to_bits() == h.to_bits(),
                    "{} / {} row {row} col {col}: {w:.17e} != {h:.17e} \
                     (bit-level waveform drift; if intentional, regenerate with \
                     UPDATE_GOLDEN=1 cargo test --test integration_golden and review)",
                    case.name,
                    method.label()
                );
            }
        }
    }
}

#[test]
fn golden_rc_ladder_all_methods() {
    check_case(&golden_cases()[0]);
}

#[test]
fn golden_inverter_chain_all_methods() {
    check_case(&golden_cases()[1]);
}

#[test]
fn golden_power_grid_all_methods() {
    check_case(&golden_cases()[2]);
}

#[test]
fn golden_coupled_lines_all_methods() {
    check_case(&golden_cases()[3]);
}

/// The recovery contract on healthy runs: with `RecoveryPolicy::standard()`
/// installed, all 16 (case × method) fixtures are reproduced bit for bit
/// and no recovery counter moves — the ladder only engages after a failure,
/// and a healthy run's instruction stream is untouched.
#[test]
fn recovery_policy_on_is_bit_identical_on_healthy_fixtures() {
    for case in golden_cases() {
        for method in Method::all() {
            let mut sim = Simulator::new(&case.circuit)
                .with_recovery_policy(exi_sim::RecoveryPolicy::standard());
            let result = sim
                .transient(method, &case.options, &case.probes)
                .unwrap_or_else(|e| panic!("{} / {} failed: {e}", case.name, method.label()));
            assert_eq!(sim.session_stats().recovery_attempts, 0);
            assert_eq!(sim.session_stats().gmin_steps, 0);
            assert_eq!(sim.session_stats().method_fallbacks, 0);
            let path = fixture_path(case.name, method);
            let golden = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden fixture {path:?} ({e})"));
            let expected = parse_fixture(&golden);
            let got = parse_fixture(&fixture_text(&case, method, &result));
            assert_eq!(
                expected,
                got,
                "{} / {}: recovery-on waveform drifted from the fixture",
                case.name,
                method.label()
            );
        }
    }
}

#[test]
fn fixture_codec_round_trips_exact_bits() {
    // The serialize/parse pair must preserve every f64 bit pattern,
    // including subnormals and negative zero.
    let values = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        1e-300,
        -3.123456789012345e-7,
        f64::MIN_POSITIVE,
        std::f64::consts::PI,
        6.02214076e23,
    ];
    for v in values {
        let text = format!("{v:.17e}");
        let back: f64 = text.parse().unwrap();
        assert_eq!(
            v.to_bits(),
            back.to_bits(),
            "{v:e} did not round-trip via {text}"
        );
    }
}
