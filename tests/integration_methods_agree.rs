//! Integration tests checking that the exponential methods agree with the
//! implicit baselines on nonlinear circuits, and that the paper's qualitative
//! claims about work counters hold.

use exi_netlist::generators::{inverter_chain, InverterChainSpec};
use exi_sim::{Method, Simulator, TransientOptions};

fn chain(stages: usize) -> exi_netlist::Circuit {
    inverter_chain(&InverterChainSpec {
        stages,
        ..InverterChainSpec::default()
    })
    .unwrap()
}

#[test]
fn er_and_erc_track_benr_on_a_switching_inverter_chain() {
    let stages = 3;
    let ckt = chain(stages);
    let observed = format!("s{stages}");
    let probes = [observed.as_str()];
    let options = TransientOptions {
        t_stop: 6e-10,
        h_init: 1e-12,
        h_max: 4e-12,
        error_budget: 5e-3,
        ..TransientOptions::default()
    };
    let mut sim = Simulator::new(&ckt);
    let benr = sim
        .transient(Method::BackwardEuler, &options, &probes)
        .unwrap();
    let p = benr.probe_index(&observed).unwrap();
    for method in [
        Method::ExponentialRosenbrock,
        Method::ExponentialRosenbrockCorrected,
    ] {
        let result = sim.transient(method, &options, &probes).unwrap();
        let err = result.max_error_vs(&benr, p);
        assert!(err < 0.15, "{method} deviates from BENR by {err} V");
        // The output must stay within (slightly padded) supply rails.
        for (_, v) in result.waveform(p) {
            assert!(v > -0.3 && v < 1.3, "{method}: unphysical voltage {v}");
        }
    }
}

#[test]
fn er_does_not_factorize_the_benr_matrix() {
    // The structural claim of the paper: BENR performs at least one LU of
    // C/h + G per Newton iteration, ER exactly one LU of G per accepted step
    // (plus the shared DC solve).
    let ckt = chain(2);
    let options = TransientOptions {
        t_stop: 3e-10,
        h_init: 2e-12,
        h_max: 4e-12,
        error_budget: 5e-3,
        ..TransientOptions::default()
    };
    // Separate sessions so each method's counters include its own DC share
    // (the structural claim is about per-run factorization counts).
    let benr = Simulator::new(&ckt)
        .transient(Method::BackwardEuler, &options, &[])
        .unwrap();
    let er = Simulator::new(&ckt)
        .transient(Method::ExponentialRosenbrock, &options, &[])
        .unwrap();

    // BENR: more LU factorizations than accepted steps (NR iterations).
    assert!(benr.stats.lu_factorizations >= benr.stats.accepted_steps);
    assert!(benr.stats.avg_newton_iterations() >= 1.0);
    // ER: one LU per accepted step (+ DC Newton iterations), no transient NR.
    let dc_lus = er.stats.newton_iterations; // only the DC solve contributes
    assert!(
        er.stats.lu_factorizations <= er.stats.accepted_steps + dc_lus + 1,
        "ER performed {} LUs for {} steps",
        er.stats.lu_factorizations,
        er.stats.accepted_steps
    );
    // ER builds Krylov subspaces instead.
    assert!(er.stats.avg_krylov_dimension() > 1.0);
}

#[test]
fn erc_with_larger_steps_is_competitive_with_er() {
    // The paper's Fig. 2 claim: ER-C at 2x the step size still maintains
    // accuracy comparable to ER.
    let ckt = chain(2);
    let observed = "s2";
    let probes = [observed];
    let mut sim = Simulator::new(&ckt);
    let reference = sim
        .transient(
            Method::BackwardEuler,
            &TransientOptions {
                t_stop: 4e-10,
                h_init: 1e-13,
                h_max: 1e-13,
                error_budget: 1.0,
                ..TransientOptions::default()
            },
            &probes,
        )
        .unwrap();
    let p = reference.probe_index(observed).unwrap();

    let er_options = TransientOptions {
        t_stop: 4e-10,
        h_init: 2e-12,
        h_max: 2e-12,
        error_budget: 5e-2,
        ..TransientOptions::default()
    };
    let erc_options = TransientOptions {
        h_init: 4e-12,
        h_max: 4e-12,
        ..er_options.clone()
    };
    let er = sim
        .transient(Method::ExponentialRosenbrock, &er_options, &probes)
        .unwrap();
    let erc = sim
        .transient(
            Method::ExponentialRosenbrockCorrected,
            &erc_options,
            &probes,
        )
        .unwrap();
    let er_err = er.rms_error_vs(&reference, p);
    let erc_err = erc.rms_error_vs(&reference, p);
    assert!(er_err < 0.12, "er rms {er_err}");
    assert!(erc_err < 0.15, "erc rms {erc_err} (at twice the step size)");
    assert!(erc.stats.accepted_steps < er.stats.accepted_steps);
}
