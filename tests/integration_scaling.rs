//! Batch-parallelism scaling regression tests at the ISSUE's 10⁴-unknown
//! floor: two workers must genuinely beat one on same-pattern job fleets,
//! and the output must stay bit-identical to sequential execution at every
//! worker count.
//!
//! These tests factorize 10 000-unknown meshes repeatedly and are `#[ignore]`
//! by default; CI's batch job runs them with `--release -- --ignored` on a
//! multi-core runner. On a single-core host the speedup test skips itself
//! (wall-clock parallel speedup is unmeasurable there) while the bit-identity
//! test still runs to completion.

use std::time::Instant;

use exi_netlist::generators::{rc_mesh, RcMeshSpec};
use exi_sim::{BatchJob, BatchPlan, BatchRunner, Method, Simulator, TransientOptions};

/// ≥ 10⁴ unknowns: a 100 × 100 RC mesh has 10 000 mesh nodes plus the
/// driver node and one source branch current.
fn mesh_circuit() -> exi_netlist::Circuit {
    rc_mesh(&RcMeshSpec {
        rows: 100,
        cols: 100,
        ..RcMeshSpec::default()
    })
    .expect("mesh builds")
}

fn mesh_options(k: usize) -> TransientOptions {
    // Distinct step-control corners on one topology (and one DC start), so
    // the whole fleet shares a single symbolic analysis.
    TransientOptions {
        t_stop: 3e-10 + k as f64 * 2e-11,
        h_init: 1e-12,
        h_max: 2e-11,
        error_budget: 1e-3 / (1.0 + k as f64 * 0.2),
        ..TransientOptions::default()
    }
}

fn mesh_plan(jobs: usize) -> BatchPlan {
    let mut plan = BatchPlan::new();
    for k in 0..jobs {
        plan.push(
            BatchJob::new(
                format!("corner{k}"),
                mesh_circuit(),
                Method::ExponentialRosenbrock,
                mesh_options(k),
            )
            .probe("m_99_99"),
        );
    }
    plan
}

/// The tentpole acceptance criterion: 8 same-pattern jobs at 10⁴+ unknowns
/// must run ≥ 1.3× faster on 2 workers than on 1. With every symbolic
/// analysis pre-published before workers start, no job serializes behind a
/// pilot and no warm lookup takes a blocking lock on the step hot path —
/// the two failure modes that used to cap the speedup below 1.
#[test]
#[ignore = "wall-clock benchmark; run explicitly (CI batch job) on a multi-core host"]
fn two_workers_beat_one_at_ten_thousand_unknowns() {
    const JOBS: usize = 8;
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if host_parallelism < 2 {
        eprintln!(
            "skipping speedup assertion: host offers {host_parallelism} hardware thread(s); \
             parallel wall-clock speedup is unmeasurable here"
        );
        return;
    }

    let n = mesh_circuit().num_unknowns();
    assert!(n >= 10_000, "mesh too small: {n} unknowns");

    // Warm-up run so one-time costs (allocator growth, page faults) don't
    // pollute the timed comparison.
    let warmup = BatchRunner::new().worker_threads(1).run(&mesh_plan(1));
    assert!(warmup.all_ok());

    let started = Instant::now();
    let sequential = BatchRunner::new().worker_threads(1).run(&mesh_plan(JOBS));
    let wall_1 = started.elapsed().as_secs_f64();
    assert!(sequential.all_ok());

    let started = Instant::now();
    let parallel = BatchRunner::new().worker_threads(2).run(&mesh_plan(JOBS));
    let wall_2 = started.elapsed().as_secs_f64();
    assert!(parallel.all_ok());

    // One pre-published analysis, every job a shared hit, zero blocking
    // waits — at both worker counts.
    for result in [&sequential, &parallel] {
        assert_eq!(result.stats.symbolic_analyses, 1, "{:?}", result.stats);
        assert_eq!(result.stats.shared_symbolic_hits, JOBS);
        assert_eq!(result.stats.shared_symbolic_wait_events, 0);
    }

    let speedup = wall_1 / wall_2;
    assert!(
        speedup >= 1.3,
        "2 workers must beat 1 by >= 1.3x at {n} unknowns: \
         wall_1 = {wall_1:.3}s, wall_2 = {wall_2:.3}s, speedup = {speedup:.2}x"
    );
}

/// Bit-identity at the 10⁴-unknown scale: batch output must match isolated
/// sequential sessions exactly and be invariant across 1, 2 and 8 workers.
#[test]
#[ignore = "factorizes a 10^4-unknown mesh repeatedly; run explicitly (CI batch job)"]
fn batch_is_bit_identical_across_worker_counts_at_ten_thousand_unknowns() {
    const JOBS: usize = 3;
    let reference: Vec<_> = (0..JOBS)
        .map(|k| {
            let circuit = mesh_circuit();
            let r = Simulator::new(&circuit)
                .transient(
                    Method::ExponentialRosenbrock,
                    &mesh_options(k),
                    &["m_99_99"],
                )
                .expect("sequential run");
            (r.times, r.samples, r.final_state)
        })
        .collect();
    let mut per_thread = Vec::new();
    for threads in [1usize, 2, 8] {
        let result = BatchRunner::new()
            .worker_threads(threads)
            .run(&mesh_plan(JOBS));
        assert!(result.all_ok(), "threads={threads}");
        assert_eq!(result.stats.shared_symbolic_wait_events, 0);
        let waves: Vec<_> = result
            .jobs
            .iter()
            .map(|j| {
                let r = j.recorded().expect("recorded output");
                (r.times.clone(), r.samples.clone(), r.final_state.clone())
            })
            .collect();
        per_thread.push(waves);
    }
    assert_eq!(per_thread[0], per_thread[1]);
    assert_eq!(per_thread[0], per_thread[2]);
    assert_eq!(per_thread[0], reference);
}
