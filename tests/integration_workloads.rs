//! Integration tests over the synthetic benchmark workloads: the Table-I
//! analogue circuits and the structural claims behind Fig. 1.

use exi_netlist::generators::{coupled_lines, power_grid, CoupledLinesSpec, PowerGridSpec};
use exi_sim::{Method, SimError, Simulator, TransientOptions};
use exi_sparse::{factor_fill, CsrMatrix, OrderingMethod, SparseError};

fn quick_options(t_stop: f64) -> TransientOptions {
    TransientOptions {
        t_stop,
        h_init: 1e-12,
        h_max: 2e-11,
        error_budget: 2e-3,
        ..TransientOptions::default()
    }
}

/// Fig. 1 structural claim: on a densely coupled circuit, the LU factors of
/// `C/h + G` carry far more fill than the LU factors of `G`.
#[test]
fn benr_matrix_fill_exceeds_g_fill_on_coupled_circuits() {
    let ckt = coupled_lines(&CoupledLinesSpec {
        lines: 6,
        segments: 15,
        random_couplings: 800,
        mosfet_drivers: false,
        ..CoupledLinesSpec::default()
    })
    .unwrap();
    let x = vec![0.0; ckt.num_unknowns()];
    let eval = ckt.compile_plan().unwrap().evaluate(&x).unwrap();
    let benr_matrix = CsrMatrix::linear_combination(1e12, &eval.c, 1.0, &eval.g).unwrap();
    let (gl, gu) = factor_fill(&eval.g, OrderingMethod::Rcm).unwrap();
    let (bl, bu) = factor_fill(&benr_matrix, OrderingMethod::Rcm).unwrap();
    assert!(
        bl + bu > (gl + gu) * 3 / 2,
        "expected C/h+G fill ({}) to clearly exceed G fill ({})",
        bl + bu,
        gl + gu
    );
    // And nnz(C) itself exceeds nnz(G) in this post-layout-style structure.
    assert!(eval.c.nnz() > eval.g.nnz());
}

/// Table-I capability claim: with a bounded factor fill (the memory-budget
/// analogue) BENR fails on a densely coupled circuit while ER completes.
#[test]
fn er_completes_where_budgeted_benr_cannot() {
    let ckt = coupled_lines(&CoupledLinesSpec {
        lines: 6,
        segments: 12,
        random_couplings: 700,
        mosfet_drivers: true,
        ..CoupledLinesSpec::default()
    })
    .unwrap();
    let n = ckt.num_unknowns();
    let mut options = quick_options(4e-10);
    options.fill_budget = Some(12 * n);
    let benr = Simulator::new(&ckt).transient(Method::BackwardEuler, &options, &[]);
    assert!(
        matches!(
            benr,
            Err(SimError::Sparse(SparseError::FillBudgetExceeded { .. }))
        ),
        "budgeted BENR should fail on the coupled case, got {benr:?}"
    );
    // ER with the same budget succeeds because it only factorizes G.
    let er = Simulator::new(&ckt)
        .transient(Method::ExponentialRosenbrock, &options, &[])
        .unwrap();
    assert!(er.stats.accepted_steps > 5);
    assert!(er.final_state.iter().all(|v| v.is_finite()));
}

/// A power-grid workload runs with both methods and keeps the rail voltage
/// physical (between 0 and vdd plus a small overshoot margin).
#[test]
fn power_grid_transient_is_physical() {
    let spec = PowerGridSpec {
        rows: 6,
        cols: 6,
        num_sinks: 6,
        ..PowerGridSpec::default()
    };
    let ckt = power_grid(&spec).unwrap();
    let observed = "g_3_3";
    let mut sim = Simulator::new(&ckt);
    for method in [Method::BackwardEuler, Method::ExponentialRosenbrock] {
        let result = sim
            .transient(method, &quick_options(2e-9), &[observed])
            .unwrap();
        let p = result.probe_index(observed).unwrap();
        for (t, v) in result.waveform(p) {
            assert!(
                v > 0.5 * spec.vdd && v < 1.2 * spec.vdd,
                "{method} at t = {t:.2e}: unphysical rail voltage {v}"
            );
        }
    }
}

/// Symbolic-reuse claim: over a whole power-grid transient the ER engine
/// performs exactly one symbolic LU analysis (seeded by the DC solve); every
/// later factorization of `G` is a numeric-only refactorization.
#[test]
fn er_power_grid_run_reuses_a_single_symbolic_analysis() {
    let spec = PowerGridSpec {
        rows: 8,
        cols: 8,
        num_sinks: 8,
        ..PowerGridSpec::default()
    };
    let ckt = power_grid(&spec).unwrap();
    let result = Simulator::new(&ckt)
        .transient(
            Method::ExponentialRosenbrock,
            &quick_options(2e-9),
            &["g_4_4"],
        )
        .unwrap();
    let s = &result.stats;
    assert!(s.accepted_steps > 5);
    assert_eq!(s.symbolic_analyses, 1, "{s:?}");
    assert_eq!(s.lu_refactorizations, s.lu_factorizations - 1, "{s:?}");
    assert!(s.lu_refactorizations >= s.accepted_steps, "{s:?}");
    // The Krylov workspace reaches a steady state: the number of fresh
    // circuit-sized allocations is bounded by the deepest subspace plus the
    // handful of vectors alive at once — not by the number of steps.
    assert!(
        s.krylov_workspace_allocations < 4 * (s.peak_krylov_dimension + 4),
        "{s:?}"
    );
    // Waveform is still the physical one (cross-check against BENR).
    let benr = Simulator::new(&ckt)
        .transient(Method::BackwardEuler, &quick_options(2e-9), &["g_4_4"])
        .unwrap();
    let p = result.probe_index("g_4_4").unwrap();
    let err = result.rms_error_vs(&benr, p);
    assert!(err < 1e-3, "ER vs BENR rms error {err}");
}

/// Determinism: the same seeded workload produces the same simulation result.
#[test]
fn seeded_workloads_are_reproducible() {
    let spec = CoupledLinesSpec {
        lines: 4,
        segments: 8,
        random_couplings: 50,
        ..CoupledLinesSpec::default()
    };
    let run = || {
        let ckt = coupled_lines(&spec).unwrap();
        let node = "l0_7";
        let r = Simulator::new(&ckt)
            .transient(
                Method::ExponentialRosenbrock,
                &quick_options(3e-10),
                &[node],
            )
            .unwrap();
        r.final_state
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert!((x - y).abs() < 1e-12);
    }
}
