//! Fault-injection acceptance tests (feature `fault-injection`).
//!
//! The ISSUE's acceptance scenario: a batch of 8 jobs with 2 fault-injected
//! members — one deliberate panic, one genuinely singular system — must
//! complete the other 6 bit-identically to an uninjected batch, with the
//! failures attributed to the injected faults (panic message / named
//! circuit node). Plus: NaN injection is rescued by the recovery ladder,
//! and Krylov breakdowns surface as typed, non-retryable errors.
//!
//! Labels are unique per test, and each test arms its faults through a
//! scoped [`fault::FaultGuard`]: the armed-fault map is process-global and
//! tests run concurrently, so a guard that disarms only its own labels on
//! drop (never `fault::clear_all`) keeps them independent.

use exi_netlist::generators::{rc_ladder, RcLadderSpec};
use exi_netlist::Circuit;
use exi_sim::{
    fault, BatchJob, BatchPlan, BatchRunner, JobError, Method, RecoveryPolicy, SimError, Simulator,
    TransientOptions,
};

fn ladder() -> Circuit {
    rc_ladder(&RcLadderSpec {
        segments: 4,
        ..RcLadderSpec::default()
    })
    .expect("ladder builds")
}

fn options() -> TransientOptions {
    TransientOptions {
        t_stop: 5e-10,
        h_init: 1e-12,
        h_max: 2e-11,
        error_budget: 1e-3,
        ..TransientOptions::default()
    }
}

type Wave = (Vec<f64>, Vec<Vec<f64>>, Vec<f64>);

fn recorded_wave(outcome: &exi_sim::JobOutcome) -> Wave {
    let r = outcome.recorded().expect("recorded output");
    (r.times.clone(), r.samples.clone(), r.final_state.clone())
}

fn plan_with_labels(prefix: &str, jobs: usize) -> BatchPlan {
    let mut plan = BatchPlan::new();
    for k in 0..jobs {
        plan.push(
            BatchJob::new(
                format!("{prefix}{k}"),
                ladder(),
                Method::ExponentialRosenbrock,
                options(),
            )
            .probe("n2")
            .probe("n4"),
        );
    }
    plan
}

/// The acceptance scenario, at 1 and at 8 worker threads: jobs 3 (panic at
/// accepted step 3) and 5 (row/col of unknown 2 — node `n2` — zeroed at the
/// first device evaluation) fail with attributed diagnostics; the other 6
/// jobs are bit-identical to a batch with no faults armed.
#[test]
fn injected_panic_and_singularity_leave_six_jobs_bit_identical() {
    // A reference batch whose labels have no faults armed.
    let clean = BatchRunner::new()
        .worker_threads(2)
        .run(&plan_with_labels("iso-clean-", 8));
    assert!(clean.all_ok(), "{:?}", clean.stats);
    let clean_waves: Vec<Wave> = clean.jobs.iter().map(recorded_wave).collect();

    let _faults = fault::FaultGuard::arm(
        "iso-3",
        fault::FaultSpec {
            panic_at_step: Some(3),
            ..fault::FaultSpec::default()
        },
    )
    .also(
        "iso-5",
        fault::FaultSpec {
            // First DC evaluation: G loses row+col 2, i.e. node 'n2'.
            singular_unknown: Some((1, 2)),
            ..fault::FaultSpec::default()
        },
    );

    for threads in [1usize, 8] {
        let result = BatchRunner::new()
            .worker_threads(threads)
            .run(&plan_with_labels("iso-", 8));
        assert_eq!(result.len(), 8);
        assert_eq!(result.succeeded(), 6, "threads={threads}");
        assert_eq!(result.failed(), 2, "threads={threads}");
        assert_eq!(result.cancelled(), 0, "threads={threads}");

        // The panicking job is contained and names the injected panic.
        let panicked = result.jobs[3].error().expect("job 3 panics");
        assert!(
            matches!(panicked, JobError::Panicked { .. }),
            "threads={threads}: {panicked:?}"
        );
        assert!(
            panicked.to_string().contains("fault injection"),
            "threads={threads}: {panicked}"
        );

        // The singular job names the corrupted circuit node.
        let singular = result.jobs[5].error().expect("job 5 is singular");
        match singular {
            JobError::Sim(SimError::SingularSystem { label, .. }) => {
                assert_eq!(label.as_deref(), Some("node 'n2'"), "threads={threads}");
            }
            other => panic!("threads={threads}: expected SingularSystem, got {other:?}"),
        }
        assert!(
            singular.to_string().contains("node 'n2'"),
            "threads={threads}: {singular}"
        );

        // The six untouched jobs match the clean batch bit for bit.
        for k in [0usize, 1, 2, 4, 6, 7] {
            assert_eq!(
                recorded_wave(&result.jobs[k]),
                clean_waves[k],
                "threads={threads}, job {k}"
            );
        }
    }
}

/// A NaN stamped mid-transient fails the run with `NonFinite` at the stamp
/// boundary — and because the injection counter is past its trigger on the
/// retry, the recovery ladder's first rung completes the run, counting the
/// escalation.
#[test]
fn nan_injection_is_rescued_by_the_recovery_ladder() {
    let _faults = fault::FaultGuard::arm(
        "nan-solo",
        fault::FaultSpec {
            // Device evaluation 10 is mid-transient for these options.
            nan_f: Some((10, 1)),
            ..fault::FaultSpec::default()
        },
    );

    // Without a policy: the NaN surfaces as a typed NonFinite error.
    fault::install("nan-solo");
    let circuit = ladder();
    let err = Simulator::new(&circuit)
        .transient(Method::ExponentialRosenbrock, &options(), &["n2"])
        .unwrap_err();
    assert!(
        matches!(err, SimError::NonFinite { time, .. } if time > 0.0),
        "got {err:?}"
    );

    // With the standard policy: rung 1 reruns past the (spent) trigger.
    fault::install("nan-solo"); // reset the eval counter
    let mut sim = Simulator::new(&circuit).with_recovery_policy(RecoveryPolicy::standard());
    let result = sim
        .transient(Method::ExponentialRosenbrock, &options(), &["n2"])
        .expect("the ladder rescues the injected NaN");
    assert!(result.times.len() > 2);
    assert!(sim.session_stats().recovery_attempts >= 1);
}

/// An injected Krylov basis breakdown surfaces as a typed kernel error —
/// and is *not* retryable: the ladder must not mask kernel bugs.
#[test]
fn krylov_breakdown_is_typed_and_not_retried() {
    let _faults = fault::FaultGuard::arm(
        "kry-solo",
        fault::FaultSpec {
            krylov_breakdown: Some(2),
            ..fault::FaultSpec::default()
        },
    );
    fault::install("kry-solo");
    let circuit = ladder();
    let mut sim = Simulator::new(&circuit).with_recovery_policy(RecoveryPolicy::standard());
    let err = sim
        .transient(Method::ExponentialRosenbrock, &options(), &["n2"])
        .unwrap_err();
    assert!(matches!(err, SimError::Krylov(_)), "got {err:?}");
    assert_eq!(
        sim.session_stats().method_fallbacks,
        0,
        "kernel errors must not be retried"
    );
}

/// Arming a label affects only jobs carrying that label — a batch whose
/// labels never match runs clean even with faults armed process-wide.
#[test]
fn unmatched_labels_are_unaffected_by_armed_faults() {
    let _faults = fault::FaultGuard::arm(
        "never-installed",
        fault::FaultSpec {
            panic_at_step: Some(1),
            ..fault::FaultSpec::default()
        },
    );
    let result = BatchRunner::new()
        .worker_threads(2)
        .run(&plan_with_labels("unmatched-", 3));
    assert!(result.all_ok(), "{:?}", result.stats);
}
