//! Property-based determinism tests for the batch subsystem: on randomly
//! generated fixed-topology circuits and per-job option corners, a
//! [`BatchRunner`] reproduces isolated sequential [`Simulator`] runs **bit
//! for bit**, is invariant across worker-thread counts, and performs exactly
//! one symbolic analysis per distinct matrix pattern.

use exi_netlist::{Circuit, Waveform};
use exi_sim::{BatchJob, BatchPlan, BatchRunner, Method, RunStats, Simulator, TransientOptions};
use proptest::prelude::*;

/// Builds an RC ladder `in -R- n1 -R- … -R- out` with a capacitor to ground
/// at every internal node, driven by a fast PWL ramp.
fn rc_ladder(resistors: &[f64], caps: &[f64]) -> Circuit {
    let mut ckt = Circuit::new();
    let gnd = ckt.node("0");
    let vin = ckt.node("in");
    ckt.add_voltage_source(
        "V1",
        vin,
        gnd,
        Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]),
    )
    .unwrap();
    let mut prev = vin;
    for (k, (&r, &c)) in resistors.iter().zip(caps.iter()).enumerate() {
        let name = if k + 1 == resistors.len() {
            "out".to_string()
        } else {
            format!("n{k}")
        };
        let node = ckt.node(&name);
        ckt.add_resistor(&format!("R{k}"), prev, node, r).unwrap();
        ckt.add_capacitor(&format!("C{k}"), node, gnd, c).unwrap();
        prev = node;
    }
    ckt
}

/// Two ladder topologies with **distinct** lengths (hence distinct matrix
/// patterns) plus per-job option corners. Same-pattern jobs share identical
/// circuits — the regime where batch execution is bit-identical to isolated
/// sequential runs (see the `exi_sim::batch` module docs for why different
/// same-pattern values relax the guarantee to determinism).
#[allow(clippy::type_complexity)]
fn sweep_inputs() -> impl Strategy<
    Value = (
        (Vec<f64>, Vec<f64>),
        (Vec<f64>, Vec<f64>),
        Vec<(f64, f64)>, // (t_stop scale, error budget) corners
    ),
> {
    (2usize..5, 1usize..4).prop_flat_map(|(n1, delta)| {
        let n2 = n1 + delta;
        (
            (
                proptest::collection::vec(100.0f64..10_000.0, n1),
                proptest::collection::vec(1e-13f64..1e-12, n1),
            ),
            (
                proptest::collection::vec(100.0f64..10_000.0, n2),
                proptest::collection::vec(1e-13f64..1e-12, n2),
            ),
            proptest::collection::vec((0.5f64..2.0, 1e-4f64..1e-2), 2..4),
        )
    })
}

fn job_options(t_scale: f64, budget: f64) -> TransientOptions {
    TransientOptions {
        t_stop: 6e-10 * t_scale,
        h_init: 1e-12,
        h_max: 5e-11,
        error_budget: budget,
        ..TransientOptions::default()
    }
}

/// The methods assigned round-robin to the option corners of topology A.
/// `BackwardEuler` exercises the second (implicit-Jacobian) pattern; every
/// job keeps the same `h_init` and waveform, so within a topology the first
/// factorized matrix values are identical across jobs — the bit-identity
/// regime.
const METHODS: [Method; 3] = [
    Method::ExponentialRosenbrock,
    Method::ExponentialRosenbrockCorrected,
    Method::BackwardEuler,
];

fn build_plan(
    ladder_a: &Circuit,
    ladder_b: &Circuit,
    corners: &[(f64, f64)],
) -> (BatchPlan, Vec<(Method, TransientOptions)>) {
    let mut plan = BatchPlan::new();
    let mut specs = Vec::new();
    for (k, &(t_scale, budget)) in corners.iter().enumerate() {
        let method = METHODS[k % METHODS.len()];
        let options = job_options(t_scale, budget);
        plan.push(
            BatchJob::new(format!("a{k}"), ladder_a.clone(), method, options.clone()).probe("out"),
        );
        specs.push((method, options));
    }
    // Topology B: a single ER job — a second distinct pattern in the fleet.
    let b_options = job_options(1.0, 1e-3);
    plan.push(
        BatchJob::new(
            "b0",
            ladder_b.clone(),
            Method::ExponentialRosenbrock,
            b_options.clone(),
        )
        .probe("out"),
    );
    specs.push((Method::ExponentialRosenbrock, b_options));
    (plan, specs)
}

fn strip_timing(stats: &RunStats) -> RunStats {
    RunStats {
        runtime: std::time::Duration::ZERO,
        cache_wait: std::time::Duration::ZERO,
        worker_threads: 0,
        ..stats.clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batch output is bit-identical to isolated sequential `Simulator` runs
    /// and invariant across worker-thread counts (1, 2, 8); the shared
    /// symbolic cache performs exactly one analysis per distinct pattern.
    #[test]
    fn batch_matches_sequential_bit_for_bit_at_any_thread_count(
        (ladder1, ladder2, corners) in sweep_inputs()
    ) {
        let ladder_a = rc_ladder(&ladder1.0, &ladder1.1);
        let ladder_b = rc_ladder(&ladder2.0, &ladder2.1);
        let (plan, specs) = build_plan(&ladder_a, &ladder_b, &corners);

        // Isolated sequential reference, one fresh unshared session per job.
        let circuits: Vec<&Circuit> = corners
            .iter()
            .map(|_| &ladder_a)
            .chain(std::iter::once(&ladder_b))
            .collect();
        let reference: Vec<_> = circuits
            .iter()
            .zip(specs.iter())
            .map(|(ckt, (method, options))| {
                let r = Simulator::new(ckt)
                    .transient(*method, options, &["out"])
                    .expect("sequential run");
                (r.times, r.samples, r.final_state)
            })
            .collect();

        let mut per_thread_waves = Vec::new();
        let mut per_thread_stats = Vec::new();
        for threads in [1usize, 2, 8] {
            let result = BatchRunner::new().worker_threads(threads).run(&plan);
            prop_assert!(result.all_ok());
            prop_assert_eq!(result.stats.batch_jobs, plan.len());
            let waves: Vec<_> = result
                .jobs
                .iter()
                .map(|j| {
                    let r = j.recorded().expect("recorded output");
                    (r.times.clone(), r.samples.clone(), r.final_state.clone())
                })
                .collect();
            per_thread_waves.push(waves);
            per_thread_stats.push(strip_timing(&result.stats));
        }

        // Invariant across worker-thread counts…
        prop_assert_eq!(&per_thread_waves[0], &per_thread_waves[1]);
        prop_assert_eq!(&per_thread_waves[0], &per_thread_waves[2]);
        prop_assert_eq!(&per_thread_stats[0], &per_thread_stats[1]);
        prop_assert_eq!(&per_thread_stats[0], &per_thread_stats[2]);
        // …and bit-identical to the isolated sequential runs.
        prop_assert_eq!(&per_thread_waves[0], &reference);

        // Exactly one symbolic analysis per distinct pattern. On an RC
        // ladder every capacitor is node-to-ground, so the implicit Jacobian
        // C/h + θG has exactly G's pattern — each topology contributes ONE
        // pattern, and BackwardEuler corners hit it for both matrix roles.
        prop_assert_eq!(
            per_thread_stats[0].symbolic_analyses,
            2,
            "{:?}", per_thread_stats[0]
        );
        // Both analyses are pre-published by the runner, so every pattern
        // use came from the shared cache: each job (topology A's
        // `corners.len()` plus topology B's one) seeds its G slot once, and
        // each BackwardEuler job additionally seeds its Jacobian slot once.
        let jac_users = corners.iter().enumerate()
            .filter(|(k, _)| METHODS[k % METHODS.len()] == Method::BackwardEuler)
            .count();
        prop_assert_eq!(
            per_thread_stats[0].shared_symbolic_hits,
            corners.len() + 1 + jac_users,
            "{:?}", per_thread_stats[0]
        );
        // And with every analysis published before workers start, no job
        // ever blocked on an in-flight cache slot.
        prop_assert_eq!(per_thread_stats[0].shared_symbolic_wait_events, 0);
    }
}
