//! Property-based tests for the `Simulator` session API: on any randomly
//! generated fixed-topology circuit, consecutive runs share exactly one
//! symbolic LU analysis and cache reuse never changes the waveform.

use exi_netlist::{Circuit, Waveform};
use exi_sim::{Method, Simulator, TransientOptions};
use proptest::prelude::*;

/// Builds an RC ladder `in -R- n1 -R- … -R- out` with a capacitor to ground
/// at every internal node, driven by a fast PWL ramp.
fn rc_ladder(resistors: &[f64], caps: &[f64]) -> Circuit {
    let mut ckt = Circuit::new();
    let gnd = ckt.node("0");
    let vin = ckt.node("in");
    ckt.add_voltage_source(
        "V1",
        vin,
        gnd,
        Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]),
    )
    .unwrap();
    let mut prev = vin;
    for (k, (&r, &c)) in resistors.iter().zip(caps.iter()).enumerate() {
        let name = if k + 1 == resistors.len() {
            "out".to_string()
        } else {
            format!("n{k}")
        };
        let node = ckt.node(&name);
        ckt.add_resistor(&format!("R{k}"), prev, node, r).unwrap();
        ckt.add_capacitor(&format!("C{k}"), node, gnd, c).unwrap();
        prev = node;
    }
    ckt
}

/// Strategy: ladder length plus per-segment resistor and capacitor values.
fn ladder_values() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (2usize..6).prop_flat_map(|n| {
        (
            proptest::collection::vec(100.0f64..10_000.0, n),
            proptest::collection::vec(1e-13f64..1e-12, n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite acceptance property: `Simulator::transient` run twice on the
    /// same topology reports exactly one symbolic analysis for the whole
    /// session, and the cached second run reproduces the first bit-for-bit.
    #[test]
    fn two_session_runs_share_one_symbolic_analysis((rs, cs) in ladder_values()) {
        let ckt = rc_ladder(&rs, &cs);
        let options = TransientOptions {
            t_stop: 1e-9,
            h_init: 1e-12,
            h_max: 5e-11,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        let mut sim = Simulator::new(&ckt);
        let first = sim
            .transient(Method::ExponentialRosenbrock, &options, &["out"])
            .unwrap();
        let second = sim
            .transient(Method::ExponentialRosenbrock, &options, &["out"])
            .unwrap();
        // One symbolic analysis for the whole session: the first run pays it
        // (seeded by the DC solve), the second reuses it.
        prop_assert_eq!(first.stats.symbolic_analyses, 1);
        prop_assert_eq!(second.stats.symbolic_analyses, 0);
        prop_assert_eq!(sim.session_stats().symbolic_analyses, 1);
        prop_assert!(second.stats.lu_refactorizations >= second.stats.accepted_steps);
        // Cache reuse is invisible in the numbers.
        prop_assert_eq!(&first.times, &second.times);
        prop_assert_eq!(&first.samples, &second.samples);
        prop_assert_eq!(&first.final_state, &second.final_state);
    }

    /// The implicit baseline amortizes the same way: its `C/h + G` symbolic
    /// analysis survives across runs, so a second BENR run adds none.
    #[test]
    fn benr_session_runs_reuse_the_jacobian_analysis((rs, cs) in ladder_values()) {
        let ckt = rc_ladder(&rs, &cs);
        let options = TransientOptions {
            t_stop: 4e-10,
            h_init: 1e-12,
            h_max: 5e-11,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        let mut sim = Simulator::new(&ckt);
        let first = sim
            .transient(Method::BackwardEuler, &options, &["out"])
            .unwrap();
        let second = sim
            .transient(Method::BackwardEuler, &options, &["out"])
            .unwrap();
        // First run: one analysis of G (DC) plus one of C/h + G.
        prop_assert!(first.stats.symbolic_analyses <= 2);
        prop_assert_eq!(second.stats.symbolic_analyses, 0);
        prop_assert_eq!(&first.times, &second.times);
        prop_assert_eq!(&first.samples, &second.samples);
    }
}
