//! Differential lane-test harness: the batched value-lane engine
//! ([`LaneRunner`]) against isolated scalar [`Simulator`] runs.
//!
//! Every generator workload sweeps K waveform-only corner variants — one
//! circuit fingerprint, different source drives, exactly what a supply- or
//! input-corner sweep produces — through DC, BENR and ER lane batches at
//! K ∈ {1, 2, 4, 8}. The contract under test:
//!
//! * **Bit-identity**: every lane's solution equals the isolated scalar
//!   run of the same circuit, bit for bit — lanes change throughput, never
//!   waveforms. Lanes that leave lockstep are re-run on the scalar path,
//!   so the guarantee holds detaches included.
//! * **Amortization**: a K-lane batch compiles exactly one evaluation plan
//!   and performs no more symbolic analyses than ONE scalar run of the
//!   same workload (one per distinct matrix pattern).
//! * **Single claimant**: lane groups coalesced by a [`BatchRunner`] claim
//!   each matrix pattern once, so a warmed batch never blocks on an
//!   in-flight shared-cache slot at any worker count.

use std::sync::Arc;

use exi_netlist::generators::{
    coupled_lines, inverter_chain, power_grid, rc_ladder, CoupledLinesSpec, InverterChainSpec,
    PowerGridSpec, RcLadderSpec,
};
use exi_netlist::{Circuit, Waveform};
use exi_sim::{
    BatchJob, BatchPlan, BatchRunner, DcOptions, LanePolicy, LaneRunner, Method, PlanCache,
    Simulator, TransientOptions, TransientResult,
};
use exi_sparse::SymbolicCache;

/// One lane workload: a corner-variant builder plus the options and probes
/// every method replays with (sized like the golden fixtures — tens of
/// accepted points each).
struct LaneCase {
    name: &'static str,
    build: fn(usize) -> Vec<Circuit>,
    options: TransientOptions,
    probes: &'static [&'static str],
}

/// RC ladder input-offset corners: `single_pulse(offset, offset + 1, …)`
/// shifts the whole drive, which cancels from the linear dynamics — the
/// lockstep-friendly sweep shape.
fn rc_ladder_corners(k: usize) -> Vec<Circuit> {
    (0..k)
        .map(|i| {
            let offset = 0.05 * i as f64;
            rc_ladder(&RcLadderSpec {
                segments: 4,
                resistance: 200.0,
                capacitance: 2e-13,
                input: Waveform::single_pulse(offset, offset + 1.0, 0.0, 1e-11, 1e-11, 1e-8),
            })
            .expect("rc_ladder builds")
        })
        .collect()
}

/// Inverter-chain gate-drive offsets (small, so every corner's DC input
/// stays in the same MOSFET operating region).
fn inverter_chain_corners(k: usize) -> Vec<Circuit> {
    (0..k)
        .map(|i| {
            let offset = 0.02 * i as f64;
            inverter_chain(&InverterChainSpec {
                stages: 2,
                input: Waveform::single_pulse(offset, offset + 1.0, 1e-10, 2e-11, 2e-11, 2e-9),
                ..InverterChainSpec::default()
            })
            .expect("inverter_chain builds")
        })
        .collect()
}

/// Power-grid supply corners: `vdd` only enters the pad sources'
/// `Waveform::Dc`, so every corner shares one circuit fingerprint.
fn power_grid_corners(k: usize) -> Vec<Circuit> {
    (0..k)
        .map(|i| {
            power_grid(&PowerGridSpec {
                rows: 3,
                cols: 3,
                num_sinks: 2,
                vdd: 1.0 + 0.05 * i as f64,
                ..PowerGridSpec::default()
            })
            .expect("power_grid builds")
        })
        .collect()
}

/// Coupled-lines supply corners: `vdd` drives the rail source and the
/// per-line pulse amplitudes — waveforms only, one fingerprint.
fn coupled_lines_corners(k: usize) -> Vec<Circuit> {
    (0..k)
        .map(|i| {
            coupled_lines(&CoupledLinesSpec {
                lines: 2,
                segments: 4,
                random_couplings: 3,
                vdd: 1.0 + 0.05 * i as f64,
                ..CoupledLinesSpec::default()
            })
            .expect("coupled_lines builds")
        })
        .collect()
}

fn cases() -> Vec<LaneCase> {
    vec![
        LaneCase {
            name: "rc_ladder",
            build: rc_ladder_corners,
            options: TransientOptions {
                t_stop: 5e-10,
                h_init: 1e-12,
                h_max: 2e-11,
                error_budget: 1e-3,
                ..TransientOptions::default()
            },
            probes: &["n2", "n4"],
        },
        LaneCase {
            name: "inverter_chain",
            build: inverter_chain_corners,
            options: TransientOptions {
                t_stop: 3e-10,
                h_init: 1e-12,
                h_max: 5e-12,
                error_budget: 5e-3,
                ..TransientOptions::default()
            },
            probes: &["s1", "s2"],
        },
        LaneCase {
            name: "power_grid",
            build: power_grid_corners,
            options: TransientOptions {
                t_stop: 5e-10,
                h_init: 1e-12,
                h_max: 2e-11,
                error_budget: 1e-3,
                ..TransientOptions::default()
            },
            probes: &["g_1_1", "g_2_2"],
        },
        LaneCase {
            name: "coupled_lines",
            build: coupled_lines_corners,
            options: TransientOptions {
                t_stop: 2e-10,
                h_init: 1e-12,
                h_max: 1e-11,
                error_budget: 1e-2,
                ..TransientOptions::default()
            },
            probes: &["l0_3", "l1_3"],
        },
    ]
}

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Runs every corner circuit through an isolated scalar `Simulator` wired
/// to ONE shared fresh symbolic cache and plan cache, and returns the total
/// number of symbolic analyses performed — i.e. the number of DISTINCT
/// matrix patterns the whole sweep traverses. A lane batch must match this
/// count exactly: analyzing each pattern once for all K lanes.
fn shared_scalar_symbolic_count(
    circuits: &[Circuit],
    mut run: impl FnMut(&mut Simulator) -> Result<(), exi_sim::SimError>,
) -> usize {
    let shared = Arc::new(SymbolicCache::new());
    let plans = Arc::new(PlanCache::new());
    let mut total = 0;
    for ckt in circuits {
        let mut sim = Simulator::with_shared_symbolic(ckt, Arc::clone(&shared))
            .with_plan_cache(Arc::clone(&plans));
        run(&mut sim).expect("shared-cache scalar run");
        total += sim.session_stats().symbolic_analyses;
    }
    total
}

fn assert_transient_bits(
    case: &str,
    k: usize,
    lane: usize,
    got: &TransientResult,
    want: &TransientResult,
) {
    let tag = format!("{case} K={k} lane {lane}");
    assert_eq!(
        got.times.len(),
        want.times.len(),
        "{tag}: step counts differ"
    );
    for (i, (a, b)) in got.times.iter().zip(&want.times).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{tag}: time {i} differs");
    }
    assert_eq!(
        got.samples.len(),
        want.samples.len(),
        "{tag}: sample rows differ"
    );
    for (i, (ra, rb)) in got.samples.iter().zip(&want.samples).enumerate() {
        for (j, (a, b)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{tag}: sample ({i},{j}) differs");
        }
    }
    for (i, (a, b)) in got.final_state.iter().zip(&want.final_state).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{tag}: final state {i} differs");
    }
}

#[test]
fn lane_dc_matches_isolated_scalar_at_every_width() {
    let options = DcOptions::default();
    for case in cases() {
        for k in WIDTHS {
            let circuits = (case.build)(k);
            let refs: Vec<&Circuit> = circuits.iter().collect();
            let batch = LaneRunner::new(&refs)
                .expect("same fingerprint")
                .dc(&options);
            assert_eq!(batch.lanes.len(), k);
            assert_eq!(batch.stats.lane_batches, 1);
            // One plan for the whole batch, and one symbolic analysis per
            // DISTINCT pattern across all K lanes: exactly 1 for linear
            // circuits; nonlinear DC may traverse extra damped-Newton
            // patterns per lane, so the baseline is K scalar runs through
            // ONE shared fresh cache (each distinct pattern analyzed once).
            assert_eq!(batch.stats.plan_compilations, 1, "{} K={k}", case.name);
            let expected_symbolic =
                shared_scalar_symbolic_count(&circuits, |sim| sim.dc_with(&options).map(|_| ()));
            assert_eq!(
                batch.stats.symbolic_analyses, expected_symbolic,
                "{} K={k}: lane batch re-analyzed a pattern",
                case.name
            );
            if matches!(case.name, "rc_ladder" | "power_grid") {
                assert_eq!(
                    expected_symbolic, 1,
                    "{}: linear DC has one pattern",
                    case.name
                );
            }
            for (lane, ckt) in circuits.iter().enumerate() {
                let want = Simulator::new(ckt).dc_with(&options).expect("scalar DC");
                let got = batch.lanes[lane]
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{} K={k} lane {lane}: {e}", case.name));
                assert_eq!(
                    got.iterations, want.iterations,
                    "{} K={k} lane {lane}",
                    case.name
                );
                assert_eq!(
                    got.residual.to_bits(),
                    want.residual.to_bits(),
                    "{} K={k} lane {lane}",
                    case.name
                );
                for (i, (a, b)) in got.state.iter().zip(&want.state).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{} K={k} lane {lane}: unknown {i}",
                        case.name
                    );
                }
            }
        }
    }
}

fn check_transient_method(method: Method) {
    for case in cases() {
        for k in WIDTHS {
            let circuits = (case.build)(k);
            let refs: Vec<&Circuit> = circuits.iter().collect();
            let batch = LaneRunner::new(&refs).expect("same fingerprint").transient(
                method,
                &case.options,
                case.probes,
            );
            assert_eq!(batch.lanes.len(), k);
            assert_eq!(batch.stats.lane_batches, 1);
            assert_eq!(batch.stats.plan_compilations, 1, "{} K={k}", case.name);
            // One symbolic analysis per distinct matrix pattern across all
            // K lanes — the count K scalar runs report through ONE shared
            // fresh cache (1 for most workloads; more only when a lane's
            // implicit-Jacobian or damped pattern differs from G's).
            let expected_symbolic = shared_scalar_symbolic_count(&circuits, |sim| {
                sim.transient(method, &case.options, case.probes)
                    .map(|_| ())
            });
            assert_eq!(
                batch.stats.symbolic_analyses, expected_symbolic,
                "{} K={k}: lane batch re-analyzed a pattern",
                case.name
            );
            for (lane, ckt) in circuits.iter().enumerate() {
                let want = Simulator::new(ckt)
                    .transient(method, &case.options, case.probes)
                    .expect("scalar run");
                let got = batch.lanes[lane]
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{} K={k} lane {lane}: {e}", case.name));
                assert_transient_bits(case.name, k, lane, got, &want);
            }
        }
    }
}

#[test]
fn lane_benr_matches_isolated_scalar_at_every_width() {
    check_transient_method(Method::BackwardEuler);
}

#[test]
fn lane_er_matches_isolated_scalar_at_every_width() {
    check_transient_method(Method::ExponentialRosenbrock);
}

/// The single-claimant regression: lane-coalesced jobs enter the batch
/// runner's pattern-claim bookkeeping as ONE claimant (the group leader),
/// not K — so on a warmed shared cache no job, at any worker count, ever
/// blocks on an in-flight symbolic-cache slot or repeats an analysis.
#[test]
fn warmed_lane_batches_never_wait_on_the_shared_cache() {
    let mut plan = BatchPlan::new();
    let grid_options = TransientOptions {
        t_stop: 5e-10,
        h_init: 1e-12,
        h_max: 2e-11,
        error_budget: 1e-3,
        ..TransientOptions::default()
    };
    for (i, ckt) in power_grid_corners(8).into_iter().enumerate() {
        plan.push(
            BatchJob::new(
                format!("vdd{i}"),
                ckt,
                Method::BackwardEuler,
                grid_options.clone(),
            )
            .probe("g_1_1"),
        );
    }
    for (i, ckt) in rc_ladder_corners(8).into_iter().enumerate() {
        plan.push(
            BatchJob::new(
                format!("offset{i}"),
                ckt,
                Method::BackwardEuler,
                TransientOptions {
                    t_stop: 5e-10,
                    h_init: 1e-12,
                    h_max: 2e-11,
                    error_budget: 1e-3,
                    ..TransientOptions::default()
                },
            )
            .probe("n2"),
        );
    }

    // Warm the shared caches once; the lane groups publish each of their
    // patterns exactly once while doing so.
    let shared = Arc::new(SymbolicCache::new());
    let plans = Arc::new(PlanCache::new());
    let warmup = BatchRunner::new()
        .worker_threads(2)
        .lane_policy(LanePolicy::Fixed(8))
        .shared_cache(Arc::clone(&shared))
        .shared_plan_cache(Arc::clone(&plans))
        .run(&plan);
    assert!(warmup.all_ok());
    assert_eq!(warmup.stats.lane_batches, 2);

    let mut waves_per_threads = Vec::new();
    for threads in [1usize, 2, 8] {
        let result = BatchRunner::new()
            .worker_threads(threads)
            .lane_policy(LanePolicy::Fixed(8))
            .shared_cache(Arc::clone(&shared))
            .shared_plan_cache(Arc::clone(&plans))
            .run(&plan);
        assert!(result.all_ok());
        assert_eq!(result.stats.lane_batches, 2);
        // Warmed: nothing re-analyzed, nothing recompiled, nobody waited.
        assert_eq!(result.stats.symbolic_analyses, 0, "threads={threads}");
        assert_eq!(result.stats.plan_compilations, 0, "threads={threads}");
        assert_eq!(
            result.stats.shared_symbolic_wait_events, 0,
            "threads={threads}: a lane group must claim each pattern once"
        );
        let waves: Vec<Vec<Vec<f64>>> = result
            .jobs
            .iter()
            .map(|j| j.recorded().expect("recorded").samples.clone())
            .collect();
        waves_per_threads.push(waves);
    }
    // And the output is invariant across worker-thread counts.
    assert_eq!(waves_per_threads[0], waves_per_threads[1]);
    assert_eq!(waves_per_threads[0], waves_per_threads[2]);
}
