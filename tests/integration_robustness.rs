//! Robustness regression suite (PR 6).
//!
//! Pathological circuits and decks must fail with *named*, non-panicking
//! diagnostics; cancellable batch jobs must stop at a step boundary with a
//! bit-exact partial prefix; a panicking `BatchObserver` must not take the
//! batch down with it; and the transient recovery ladder must rescue what
//! it can while counting every escalation honestly.

use std::time::Duration;

use exi_netlist::generators::{inverter_chain, rc_ladder, InverterChainSpec, RcLadderSpec};
use exi_netlist::{parse_deck, Circuit, NetlistError, Waveform};
use exi_sim::{
    BatchJob, BatchObserver, BatchPlan, BatchRunner, CancelReason, CancelToken, Engine, JobError,
    JobOutcome, JobOutput, Method, Observer, RecordingObserver, RecoveryEvent, RecoveryPolicy,
    SimError, Simulator, StepOutcome, TransientOptions,
};

fn short_options() -> TransientOptions {
    TransientOptions {
        t_stop: 2e-10,
        h_init: 1e-12,
        h_max: 1e-11,
        error_budget: 1e-3,
        ..TransientOptions::default()
    }
}

// ---------------------------------------------------------------------------
// Pathological circuits: named diagnostics, never a panic.
// ---------------------------------------------------------------------------

/// A node reachable only through a capacitor has an all-zero row in `G`;
/// both the DC solve and a transient run must name that node, not a
/// factorization column.
#[test]
fn floating_node_is_attributed_to_its_node_name() {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    let gnd = ckt.node("0");
    let float = ckt.node("float");
    ckt.add_voltage_source("V1", vin, gnd, Waveform::Dc(1.0))
        .unwrap();
    ckt.add_resistor("R1", vin, out, 1e3).unwrap();
    ckt.add_capacitor("C1", out, gnd, 1e-12).unwrap();
    ckt.add_capacitor("Cf", float, gnd, 1e-12).unwrap();

    let err = Simulator::new(&ckt).dc().unwrap_err();
    assert!(
        matches!(err, SimError::SingularSystem { .. }),
        "expected SingularSystem, got {err:?}"
    );
    assert!(err.to_string().contains("node 'float'"), "{err}");

    let err = Simulator::new(&ckt)
        .transient(Method::ExponentialRosenbrock, &short_options(), &["out"])
        .unwrap_err();
    assert!(err.to_string().contains("node 'float'"), "{err}");
}

/// Two ideal voltage sources fighting over the same node pair make the MNA
/// system rank-deficient; the error must point at a branch current, not
/// panic inside the factorization.
#[test]
fn voltage_source_loop_is_reported_as_singular() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let gnd = ckt.node("0");
    ckt.add_voltage_source("V1", a, gnd, Waveform::Dc(1.0))
        .unwrap();
    ckt.add_voltage_source("V2", a, gnd, Waveform::Dc(2.0))
        .unwrap();
    ckt.add_resistor("R1", a, gnd, 1e3).unwrap();

    let err = Simulator::new(&ckt).dc().unwrap_err();
    assert!(
        matches!(err, SimError::SingularSystem { .. }),
        "expected SingularSystem, got {err:?}"
    );
    assert!(err.to_string().contains("branch current of 'V"), "{err}");
}

/// Nonsense element values are rejected at construction, naming the device
/// and the parameter — long before any solver can trip over them.
#[test]
fn invalid_parameters_name_the_device() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let gnd = ckt.node("0");
    for (value, what) in [(0.0, "zero"), (-1e3, "negative"), (f64::NAN, "NaN")] {
        let err = ckt.add_resistor("Rbad", a, gnd, value).unwrap_err();
        assert!(
            matches!(err, NetlistError::InvalidParameter { .. }),
            "{what} resistance: got {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("Rbad"), "{what} resistance: {msg}");
        assert!(msg.contains("resistance"), "{what} resistance: {msg}");
    }
    let err = ckt.add_capacitor("Cbad", a, gnd, f64::NAN).unwrap_err();
    assert!(err.to_string().contains("Cbad"), "{err}");
}

/// Pathological decks end in a named error — never a panic, never a bogus
/// waveform. Construction-time defects fail in the parser; topological
/// defects parse fine and fail in the solver with circuit-level names.
#[test]
fn pathological_decks_yield_named_errors() {
    // Defective at parse/construction time.
    let parse_cases: &[(&str, &str, &str)] = &[
        ("zero resistance", "V1 in 0 DC 1\nR1 in 0 0\n.end\n", "R1"),
        (
            "negative capacitance",
            "V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 -1p\n.end\n",
            "C1",
        ),
    ];
    for (what, text, needle) in parse_cases {
        let err = parse_deck(text).expect_err(what);
        assert!(err.to_string().contains(needle), "{what}: {err}");
    }

    // Parse fine, fail in the solver with a named unknown.
    let solver_cases: &[(&str, &str, &str)] = &[
        (
            "floating node",
            "V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1p\nCf float 0 1p\n.end\n",
            "node 'float'",
        ),
        (
            "voltage source loop",
            "V1 a 0 DC 1\nV2 a 0 DC 2\nR1 a 0 1k\n.end\n",
            "branch current of 'V",
        ),
    ];
    for (what, text, needle) in solver_cases {
        let deck = parse_deck(text).expect(what);
        let err = Simulator::new(&deck.circuit)
            .transient(Method::ExponentialRosenbrock, &short_options(), &[])
            .expect_err(what);
        assert!(err.to_string().contains(needle), "{what}: {err}");
    }
}

// ---------------------------------------------------------------------------
// Cancellation: deterministic step boundaries, bit-exact partial prefixes.
// ---------------------------------------------------------------------------

fn ladder_circuit() -> Circuit {
    rc_ladder(&RcLadderSpec {
        segments: 4,
        ..RcLadderSpec::default()
    })
    .expect("ladder builds")
}

/// A token cancelled before the batch even starts stops the job right after
/// the DC point: `Cancelled { reason: Token, at_time: 0.0 }` with a partial
/// waveform holding exactly the DC sample.
#[test]
fn precancelled_token_stops_at_the_dc_point() {
    let token = CancelToken::new();
    token.cancel();
    let mut plan = BatchPlan::new();
    plan.push(
        BatchJob::new(
            "precancelled",
            ladder_circuit(),
            Method::ExponentialRosenbrock,
            short_options(),
        )
        .probe("n2")
        .cancel_token(token),
    );
    let result = BatchRunner::new().worker_threads(1).run(&plan);
    assert_eq!(result.succeeded(), 0);
    assert_eq!(result.cancelled(), 1);
    assert_eq!(result.failed(), 1, "cancelled counts as not-completed");
    let outcome = &result.jobs[0];
    assert!(outcome.is_cancelled());
    match outcome.error() {
        Some(JobError::Cancelled {
            reason: CancelReason::Token,
            at_time,
            partial: Some(JobOutput::Recorded(r)),
        }) => {
            assert_eq!(*at_time, 0.0);
            assert_eq!(r.times, vec![0.0], "partial is exactly the DC sample");
        }
        other => panic!("expected token cancellation with a partial, got {other:?}"),
    }
}

/// The deadline contract: a job over budget stops at the next step
/// boundary, reports the simulation time it reached, and its partial
/// waveform is a bit-exact prefix of the uncancelled run — reproduced here
/// by manually driving a fresh stepper the same number of accepted steps.
#[test]
fn deadline_cancellation_is_a_bit_exact_prefix() {
    // A run that cannot finish inside the deadline: ~10^8 bounded steps.
    let options = TransientOptions {
        t_stop: 1e-3,
        h_init: 1e-12,
        h_max: 1e-11,
        error_budget: 1e-3,
        ..TransientOptions::default()
    };
    let mut plan = BatchPlan::new();
    plan.push(
        BatchJob::new(
            "over-budget",
            ladder_circuit(),
            Method::ExponentialRosenbrock,
            options.clone(),
        )
        .probe("n2")
        .probe("n4")
        .deadline(Duration::from_millis(100)),
    );
    let result = BatchRunner::new().worker_threads(1).run(&plan);
    assert_eq!(result.cancelled(), 1);
    let outcome = &result.jobs[0];
    let (at_time, partial) = match outcome.error() {
        Some(JobError::Cancelled {
            reason: CancelReason::Deadline,
            at_time,
            partial: Some(JobOutput::Recorded(r)),
        }) => (*at_time, r),
        other => panic!("expected deadline cancellation with a partial, got {other:?}"),
    };
    assert!(at_time > 0.0, "the job did real work before the deadline");
    assert!(partial.times.len() > 1, "partial holds accepted steps");
    assert_eq!(*partial.times.last().unwrap(), at_time);
    // Cancelled partial work still shows up in the job's statistics.
    assert!(outcome.stats.accepted_steps > 0);
    assert_eq!(outcome.stats.accepted_steps + 1, partial.times.len());

    // Reference: a fresh session stepped exactly as many accepted steps.
    let circuit = ladder_circuit();
    let mut sim = Simulator::new(&circuit);
    let mut observer = RecordingObserver::new(
        exi_sim::resolve_probes(&circuit, &["n2", "n4"]).unwrap(),
        false,
    );
    let mut stepper = sim
        .stepper(Method::ExponentialRosenbrock, &options)
        .unwrap();
    for _ in 1..partial.times.len() {
        let outcome = stepper.advance(&mut observer).expect("reference advances");
        assert_ne!(
            outcome,
            StepOutcome::Finished,
            "reference finished before the prefix ended"
        );
    }
    stepper.finish(&mut observer);
    let reference = observer.into_result();
    assert_eq!(partial.times, reference.times, "bit-exact prefix times");
    assert_eq!(
        partial.samples, reference.samples,
        "bit-exact prefix samples"
    );
    assert_eq!(partial.final_state, reference.final_state);
}

// ---------------------------------------------------------------------------
// Worker/observer panic isolation.
// ---------------------------------------------------------------------------

struct PanicOnIndex(usize);

impl BatchObserver for PanicOnIndex {
    fn on_job_started(&self, index: usize, _label: &str) {
        if index == self.0 {
            panic!("deliberate BatchObserver panic for job {index}");
        }
    }
    fn on_job_finished(&self, _index: usize, _outcome: &JobOutcome) {}
}

/// A panicking `BatchObserver` callback kills its worker thread (observer
/// callbacks run outside the per-job shield by design), but the batch
/// itself survives: workers report each outcome as it completes, so the
/// dead worker's already-finished jobs keep their results, every slot it
/// never reported is backfilled as `Panicked`, and `run_observed` returns
/// normally.
#[test]
fn batch_observer_panics_leave_the_batch_standing() {
    let mut plan = BatchPlan::new();
    for k in 0..4 {
        plan.push(
            BatchJob::new(
                format!("obs{k}"),
                ladder_circuit(),
                Method::ExponentialRosenbrock,
                short_options(),
            )
            .probe("n2"),
        );
    }
    // One worker runs all four jobs in submission order (the G analysis is
    // pre-published, so there are no pilot waves); it completes and reports
    // job 0, then dies starting job 1 — taking jobs 1..3 with it.
    let result = BatchRunner::new()
        .worker_threads(1)
        .run_observed(&plan, &PanicOnIndex(1));
    assert_eq!(result.len(), 4);
    assert!(
        result.jobs[0].is_ok(),
        "job 0 was reported before the worker died"
    );
    for k in 1..4 {
        let err = result.jobs[k].error().expect("lost to the dead worker");
        assert!(
            matches!(err, JobError::Panicked { .. }),
            "job {k}: got {err:?}"
        );
        assert!(err.to_string().contains("worker thread"), "job {k}: {err}");
    }
    assert_eq!(result.succeeded(), 1);
    assert_eq!(result.cancelled(), 0);
    assert_eq!(result.failed(), 3);
}

// ---------------------------------------------------------------------------
// The transient recovery ladder.
// ---------------------------------------------------------------------------

/// Observer that records the live recovery escalations.
#[derive(Default)]
struct EventLog(Vec<RecoveryEvent>);

impl Observer for EventLog {
    fn on_recovery(&mut self, event: &RecoveryEvent) {
        self.0.push(event.clone());
    }
}

fn stiff_chain() -> Circuit {
    inverter_chain(&InverterChainSpec {
        stages: 2,
        ..InverterChainSpec::default()
    })
    .expect("chain builds")
}

/// Options ER cannot satisfy: a fixed step with an unreachable error
/// budget. ER rejects the nonlinear error estimate and underflows the step
/// floor; BENR accepts at the floor (its LTE guard yields at `2·h_min`).
fn impossible_for_er() -> TransientOptions {
    TransientOptions {
        t_stop: 5e-11,
        h_init: 2e-11,
        h_min: 2e-11,
        h_max: 2e-11,
        error_budget: 1e-30,
        ..TransientOptions::default()
    }
}

/// With recovery off the failure surfaces untouched and no recovery
/// counter moves — the exact pre-PR behavior.
#[test]
fn recovery_off_surfaces_the_original_error() {
    let circuit = stiff_chain();
    let mut sim = Simulator::new(&circuit);
    let err = sim
        .transient(Method::ExponentialRosenbrock, &impossible_for_er(), &["s1"])
        .unwrap_err();
    assert!(
        matches!(err, SimError::StepSizeUnderflow { .. }),
        "got {err:?}"
    );
    assert_eq!(sim.session_stats().recovery_attempts, 0);
    assert_eq!(sim.session_stats().method_fallbacks, 0);
}

/// The cutback rung rescues an ER underflow: with the step floor cut back
/// three decades, the nonlinear error estimate drops under the budget and
/// the retry completes. The escalation streams live, the counters record
/// exactly one attempt, and the waveform the caller receives is the
/// *replayed successful attempt only* — bit-identical to a plain ER run
/// under the cutback rung's options.
#[test]
fn recovery_ladder_rescues_er_underflow_at_the_cutback_rung() {
    let circuit = stiff_chain();
    let options = impossible_for_er();

    let mut sim = Simulator::new(&circuit).with_recovery_policy(RecoveryPolicy::standard());
    let mut events = EventLog::default();
    let probes = exi_sim::resolve_probes(&circuit, &["s1", "s2"]).unwrap();
    let mut recording = RecordingObserver::new(probes, false);
    // Compose: record the waveform AND log recovery events.
    struct Tee<'a>(&'a mut RecordingObserver, &'a mut EventLog);
    impl Observer for Tee<'_> {
        fn on_dc(&mut self, t0: f64, x0: &[f64]) {
            self.0.on_dc(t0, x0);
        }
        fn on_step_accepted(&mut self, t: f64, x: &[f64]) {
            self.0.on_step_accepted(t, x);
        }
        fn on_step_rejected(&mut self, t: f64, h: f64) {
            self.0.on_step_rejected(t, h);
        }
        fn on_finish(&mut self, final_state: &[f64], stats: &exi_sim::RunStats) {
            self.0.on_finish(final_state, stats);
        }
        fn on_recovery(&mut self, event: &RecoveryEvent) {
            self.1.on_recovery(event);
        }
    }
    let stats = sim
        .transient_observed(
            Method::ExponentialRosenbrock,
            &options,
            &mut Tee(&mut recording, &mut events),
        )
        .expect("the ladder rescues the run");
    let rescued = recording.into_result();

    // Exactly one escalation — the step cutback — delivered live.
    let policy = RecoveryPolicy::standard();
    assert_eq!(events.0.len(), 1, "{:?}", events.0);
    assert!(
        matches!(events.0[0], RecoveryEvent::StepCutback { h_min, time }
            if h_min == options.h_min * policy.step_cutback && time > 0.0),
        "{:?}",
        events.0[0]
    );
    assert_eq!(stats.recovery_attempts, 1);
    assert_eq!(stats.method_fallbacks, 0);
    assert_eq!(sim.session_stats().recovery_attempts, 1);

    // The caller's waveform is exactly the successful (cutback) attempt:
    // a plain ER run under the rung-1 options, bit for bit — the failed
    // first attempt's buffered events never reached the observer.
    let mut rung1 = options.clone();
    rung1.h_min = options.h_min * policy.step_cutback;
    rung1.h_init = (options.h_init * policy.step_cutback).max(rung1.h_min);
    let reference = Simulator::new(&circuit)
        .transient(Method::ExponentialRosenbrock, &rung1, &["s1", "s2"])
        .expect("plain ER run under the rung-1 options");
    assert_eq!(rescued.times, reference.times);
    assert_eq!(rescued.samples, reference.samples);
    assert_eq!(rescued.final_state, reference.final_state);
}

/// A failure no rung can fix — an unreachable Newton tolerance poisons the
/// original method, the cutback retry, the tightened retry, AND the BENR
/// fallback (it runs the same Newton). The ladder runs all three rungs, the
/// escalations stream in order, and the original error class surfaces.
#[test]
fn recovery_ladder_exhausts_into_the_original_error() {
    let circuit = stiff_chain();
    let options = TransientOptions {
        newton_tolerance: 0.0, // no finite residual can satisfy this
        newton_max_iterations: 2,
        ..short_options()
    };
    let mut sim = Simulator::new(&circuit).with_recovery_policy(RecoveryPolicy::standard());
    let mut events = EventLog::default();
    let err = sim
        .transient_observed(Method::Trapezoidal, &options, &mut events)
        .unwrap_err();
    assert!(
        matches!(err, SimError::NewtonDidNotConverge { .. }),
        "got {err:?}"
    );
    let policy = RecoveryPolicy::standard();
    assert_eq!(events.0.len(), 3, "{:?}", events.0);
    assert!(matches!(events.0[0], RecoveryEvent::StepCutback { .. }));
    assert!(
        matches!(events.0[1], RecoveryEvent::NewtonTightened { max_iterations }
            if max_iterations == options.newton_max_iterations * policy.newton_budget_factor),
        "{:?}",
        events.0[1]
    );
    assert!(
        matches!(
            events.0[2],
            RecoveryEvent::MethodFallback {
                from: Method::Trapezoidal,
                to: Method::BackwardEuler,
            }
        ),
        "{:?}",
        events.0[2]
    );
    assert_eq!(sim.session_stats().recovery_attempts, 3);
    assert_eq!(sim.session_stats().method_fallbacks, 1);
}

/// Non-retryable failures (a singular system) bypass the ladder entirely,
/// even with the policy enabled: the diagnosis is structural, and retrying
/// would only repeat it.
#[test]
fn recovery_ladder_skips_non_retryable_errors() {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let gnd = ckt.node("0");
    let float = ckt.node("float");
    ckt.add_voltage_source("V1", vin, gnd, Waveform::Dc(1.0))
        .unwrap();
    ckt.add_resistor("R1", vin, gnd, 1e3).unwrap();
    ckt.add_capacitor("Cf", float, gnd, 1e-12).unwrap();
    let mut sim = Simulator::new(&ckt).with_recovery_policy(RecoveryPolicy::standard());
    let err = sim
        .transient(Method::ExponentialRosenbrock, &short_options(), &[])
        .unwrap_err();
    assert!(err.to_string().contains("node 'float'"), "{err}");
    assert_eq!(
        sim.session_stats().method_fallbacks,
        0,
        "no transient ladder for a structural failure"
    );
}
