* template deck for `exi-cli sweep`: rload is overridden per sweep member
* (exi-cli sweep tests/decks/sweep_rc.sp --param rload=1k,2k,5k)
.param rload=1k
Vin in 0 PULSE(0 1 0 10p 10p 200p)
R1 in out {rload}
C1 out 0 1f
.tran 1p 400p
.print v(out)
.end
