//! Cross-crate integration tests: netlist parsing → MNA assembly → DC and
//! transient analysis, checked against analytic solutions.

use exi_netlist::{parse_netlist, Circuit, Waveform};
use exi_sim::{dc_operating_point, DcOptions, Method, Simulator, TransientOptions};

/// RC charging through a ramp source, compared with the analytic response at
/// the accepted time points of each method.
#[test]
fn rc_charging_matches_analytic_solution_for_all_methods() {
    let (r, c, v) = (2e3, 5e-13, 1.2);
    let tau = r * c;
    let ramp = tau / 200.0;
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let out = ckt.node("out");
    let gnd = ckt.node("0");
    ckt.add_voltage_source("V1", vin, gnd, Waveform::Pwl(vec![(0.0, 0.0), (ramp, v)]))
        .unwrap();
    ckt.add_resistor("R1", vin, out, r).unwrap();
    ckt.add_capacitor("C1", out, gnd, c).unwrap();

    let options = TransientOptions {
        t_stop: 4.0 * tau,
        h_init: tau / 100.0,
        h_max: tau / 10.0,
        error_budget: 1e-3,
        ..TransientOptions::default()
    };
    let mut sim = Simulator::new(&ckt);
    for method in Method::all() {
        let result = sim.transient(method, &options, &["out"]).unwrap();
        let p = result.probe_index("out").unwrap();
        let mut worst = 0.0_f64;
        for (t, got) in result.waveform(p) {
            if t < 5.0 * ramp {
                continue;
            }
            let expected = v * (1.0 - (-(t - ramp) / tau).exp());
            worst = worst.max((got - expected).abs());
        }
        assert!(worst < 0.02, "{method}: worst error {worst}");
    }
}

/// The parser, stamping and simulator cooperate end to end on a textual netlist.
#[test]
fn parsed_netlist_simulates_end_to_end() {
    let ckt = parse_netlist(
        "* parsed rc ladder\n\
         Vin in 0 PULSE(0 1 0.1n 0.05n 0.05n 2n 10n)\n\
         R1 in n1 500\n\
         C1 n1 0 0.2p\n\
         R2 n1 n2 500\n\
         C2 n2 0 0.2p\n\
         R3 n2 out 500\n\
         C3 out 0 0.2p\n\
         .end\n",
    )
    .unwrap();
    let options = TransientOptions {
        t_stop: 2e-9,
        h_init: 1e-12,
        h_max: 5e-11,
        error_budget: 1e-4,
        ..TransientOptions::default()
    };
    let mut sim = Simulator::new(&ckt);
    let er = sim
        .transient(Method::ExponentialRosenbrock, &options, &["out"])
        .unwrap();
    let benr = sim
        .transient(Method::BackwardEuler, &options, &["out"])
        .unwrap();
    let p = er.probe_index("out").unwrap();
    // Output follows the input pulse towards 1 V and the two methods agree.
    assert!(er.sample_at(p, 2e-9) > 0.9);
    assert!(er.max_error_vs(&benr, p) < 0.05);
}

/// DC operating point of a diode-loaded divider feeds a consistent transient
/// start (no initial transient when the input is constant).
#[test]
fn dc_point_is_a_transient_fixed_point() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let d = ckt.node("d");
    let gnd = ckt.node("0");
    ckt.add_voltage_source("V1", a, gnd, Waveform::Dc(1.5))
        .unwrap();
    ckt.add_resistor("R1", a, d, 1e3).unwrap();
    ckt.add_diode("D1", d, gnd, exi_netlist::DiodeModel::default())
        .unwrap();
    ckt.add_capacitor("C1", d, gnd, 1e-13).unwrap();

    let dc = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
    let options = TransientOptions {
        t_stop: 1e-9,
        h_init: 1e-12,
        h_max: 1e-11,
        error_budget: 1e-4,
        ..TransientOptions::default()
    };
    let result = Simulator::new(&ckt)
        .transient(Method::ExponentialRosenbrock, &options, &["d"])
        .unwrap();
    let p = result.probe_index("d").unwrap();
    let v0 = dc.state[ckt.unknown_of("d").unwrap()];
    for (_, v) in result.waveform(p) {
        assert!(
            (v - v0).abs() < 1e-3,
            "transient drifted from the DC point: {v} vs {v0}"
        );
    }
}
