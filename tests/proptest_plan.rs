//! Property-based bit-compatibility tests for the stamping-plan path: on any
//! randomly generated circuit (all device types, random terminals and
//! parameters, `gmin` corners) and any random state vector,
//! `EvalPlan::evaluate_into` must reproduce the legacy COO path
//! (`Circuit::evaluate_reference`) **bit for bit** — pattern, values, `f`
//! and `q` alike — including the value-dependent pattern shrinkage of
//! MOSFETs in cut-off.

use exi_netlist::{Circuit, DiodeModel, Evaluation, MosfetModel, Waveform};
use proptest::prelude::*;

/// One randomized device descriptor: `(kind, node a, node b, node c,
/// parameter scale)`. Node index 0 is ground.
type DeviceSpec = (usize, usize, usize, usize, f64);

fn device_specs() -> impl Strategy<Value = (usize, Vec<DeviceSpec>, Vec<f64>)> {
    (3usize..8).prop_flat_map(|nodes| {
        (
            Just(nodes),
            proptest::collection::vec(
                (
                    0usize..7,
                    0..nodes + 1,
                    0..nodes + 1,
                    0..nodes + 1,
                    0.0f64..1.0,
                ),
                4..24,
            ),
            // Generous length; sliced to the circuit's unknown count. The
            // range crosses MOSFET cut-off/triode/saturation boundaries.
            proptest::collection::vec(-1.5f64..1.5, 64),
        )
    })
}

/// Materializes a random circuit. Returns `None` only for degenerate specs
/// (no non-ground unknowns).
fn build_circuit(nodes: usize, specs: &[DeviceSpec], gmin: f64) -> Option<Circuit> {
    let mut ckt = Circuit::new();
    ckt.set_gmin(gmin);
    let ids: Vec<_> = (0..=nodes)
        .map(|k| {
            if k == 0 {
                ckt.node("0")
            } else {
                ckt.node(&format!("n{k}"))
            }
        })
        .collect();
    // Anchor: guarantees at least one unknown and a well-formed circuit.
    ckt.add_resistor("Ranchor", ids[1], ids[0], 1e4).unwrap();
    for (k, &(kind, a, b, c, p)) in specs.iter().enumerate() {
        let (na, nb, nc) = (ids[a], ids[b], ids[c]);
        let name = format!("D{k}");
        let r = match kind {
            0 => ckt.add_resistor(&name, na, nb, 10.0 + 1e4 * p),
            1 => ckt.add_capacitor(&name, na, nb, 1e-15 + 1e-12 * p),
            2 => ckt.add_inductor(&name, na, nb, 1e-10 + 1e-8 * p),
            3 => ckt.add_voltage_source(&name, na, nb, Waveform::Dc(2.0 * p - 1.0)),
            4 => ckt.add_current_source(&name, na, nb, Waveform::Dc(1e-3 * p)),
            5 => ckt.add_diode(
                &name,
                na,
                nb,
                DiodeModel {
                    saturation_current: 1e-15 + 1e-14 * p,
                    junction_capacitance: if p > 0.5 { 1e-15 * p } else { 0.0 },
                    ..DiodeModel::default()
                },
            ),
            _ => {
                let model = if p > 0.5 {
                    MosfetModel::nmos().scaled_width(0.5 + p)
                } else {
                    MosfetModel::pmos().scaled_width(0.5 + p)
                };
                ckt.add_mosfet(&name, na, nb, nc, model)
            }
        };
        r.unwrap();
    }
    if ckt.num_unknowns() == 0 {
        None
    } else {
        Some(ckt)
    }
}

fn assert_bits_equal(planned: &Evaluation, legacy: &Evaluation) {
    assert_eq!(planned.g.indptr(), legacy.g.indptr(), "G indptr");
    assert_eq!(planned.g.indices(), legacy.g.indices(), "G indices");
    assert_eq!(planned.c.indptr(), legacy.c.indptr(), "C indptr");
    assert_eq!(planned.c.indices(), legacy.c.indices(), "C indices");
    for (k, (a, b)) in planned.g.values().iter().zip(legacy.g.values()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "G value {k}: {a:e} vs {b:e}");
    }
    for (k, (a, b)) in planned.c.values().iter().zip(legacy.c.values()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "C value {k}: {a:e} vs {b:e}");
    }
    for (k, (a, b)) in planned.f.iter().zip(&legacy.f).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "f[{k}]: {a:e} vs {b:e}");
    }
    for (k, (a, b)) in planned.q.iter().zip(&legacy.q).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "q[{k}]: {a:e} vs {b:e}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite acceptance property: the plan path is bit-identical to the
    /// legacy COO path on randomized circuits and states, with full buffer
    /// reuse across evaluations at different states.
    #[test]
    fn evaluate_into_is_bit_identical_to_legacy_coo(
        (nodes, specs, xs) in device_specs(),
        gmin_scale in 0.0f64..1.0,
    ) {
        let gmin = if gmin_scale < 0.2 { 0.0 } else { 1e-12 * gmin_scale };
        let Some(ckt) = build_circuit(nodes, &specs, gmin) else { return };
        let n = ckt.num_unknowns();
        let plan = ckt.compile_plan().unwrap();
        prop_assert_eq!(plan.num_unknowns(), n);
        let mut ws = plan.new_workspace();
        let mut ev = plan.new_evaluation();
        // Three states through the same buffers: stale-state bugs in the
        // reuse path would show up as a mismatch on the 2nd/3rd pass.
        for shift in 0..3usize {
            let x: Vec<f64> = (0..n).map(|i| xs[(i + 17 * shift) % xs.len()]).collect();
            let restamped = plan.evaluate_into(&x, &mut ws, &mut ev).unwrap();
            prop_assert_eq!(restamped, plan.nonlinear_stamp_count());
            let legacy = ckt.evaluate_reference(&x).unwrap();
            assert_bits_equal(&ev, &legacy);
        }
        // Pre-sized buffers: the whole exercise allocated nothing.
        prop_assert_eq!(ws.allocations(), 0);
        // The constant input matrix matches the legacy stamping pass.
        prop_assert_eq!(plan.input_matrix(), &ckt.input_matrix_reference().unwrap());
    }

    /// Repeated restamps at one state are deterministic (same bits), and a
    /// plan compiled twice behaves identically.
    #[test]
    fn restamping_is_deterministic((nodes, specs, xs) in device_specs()) {
        let Some(ckt) = build_circuit(nodes, &specs, 1e-12) else { return };
        let n = ckt.num_unknowns();
        let x: Vec<f64> = (0..n).map(|i| xs[i % xs.len()]).collect();
        let plan_a = ckt.compile_plan().unwrap();
        let plan_b = ckt.compile_plan().unwrap();
        let mut ws = plan_a.new_workspace();
        let mut ev = plan_a.new_evaluation();
        plan_a.evaluate_into(&x, &mut ws, &mut ev).unwrap();
        let first = ev.clone();
        plan_a.evaluate_into(&x, &mut ws, &mut ev).unwrap();
        assert_bits_equal(&ev, &first);
        let other = plan_b.evaluate(&x).unwrap();
        assert_bits_equal(&other, &first);
    }
}
