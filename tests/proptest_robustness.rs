//! Property-based robustness: no matter which device lines a deck loses, the
//! pipeline (parse → build → DC → transient) either produces a waveform or a
//! clean, typed error. A mutilated deck may leave nodes floating, sources
//! unpaired, or the whole circuit empty — none of that may panic.

use exi_netlist::parse_deck;
use exi_sim::{Method, RecoveryPolicy, Simulator, TransientOptions};
use proptest::prelude::*;

/// Device lines of a healthy mixed deck: sources, a resistive ladder, caps
/// to ground, a bridging resistor. Deleting arbitrary subsets produces the
/// full bestiary of pathologies (floating nodes, dangling branches, empty
/// circuits).
const DEVICE_LINES: [&str; 9] = [
    "V1 in 0 DC 1",
    "V2 aux 0 PULSE(0 1 0 10p 10p 100p)",
    "R1 in n1 1k",
    "C1 n1 0 1p",
    "R2 n1 n2 2k",
    "C2 n2 0 2p",
    "R3 n2 0 5k",
    "R4 aux n2 3k",
    "C3 aux 0 1p",
];

fn deck_without(dropped: &[usize]) -> String {
    let mut text = String::from(".title deletion torture\n");
    for (k, line) in DEVICE_LINES.iter().enumerate() {
        if !dropped.contains(&k) {
            text.push_str(line);
            text.push('\n');
        }
    }
    text.push_str(".tran 1p 50p\n.end\n");
    text
}

fn options() -> TransientOptions {
    TransientOptions {
        t_stop: 5e-11,
        h_init: 1e-12,
        h_max: 5e-12,
        error_budget: 1e-3,
        ..TransientOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Deleting any single device line never panics: every outcome is
    /// `Ok(waveform)` or a typed `NetlistError` / `SimError`.
    #[test]
    fn single_device_deletion_never_panics(k in 0usize..DEVICE_LINES.len()) {
        let text = deck_without(&[k]);
        if let Ok(deck) = parse_deck(&text) {
            for method in [Method::ExponentialRosenbrock, Method::BackwardEuler] {
                // A panic anywhere in here fails the test; Err is a fine answer.
                let _ = Simulator::new(&deck.circuit).transient(method, &options(), &[]);
            }
        }
    }

    /// Deleting any pair of device lines never panics either — including
    /// with the recovery ladder switched on, whose homotopy stages must
    /// fail just as cleanly on structurally broken circuits.
    #[test]
    fn double_device_deletion_never_panics(
        a in 0usize..DEVICE_LINES.len(),
        b in 0usize..DEVICE_LINES.len(),
    ) {
        let text = deck_without(&[a, b]);
        if let Ok(deck) = parse_deck(&text) {
            let _ = Simulator::new(&deck.circuit)
                .transient(Method::ExponentialRosenbrock, &options(), &[]);
            let _ = Simulator::new(&deck.circuit)
                .with_recovery_policy(RecoveryPolicy::standard())
                .transient(Method::BackwardEuler, &options(), &[]);
        }
    }
}
