//! Property-based tests for the value-lane engine: on randomly generated
//! RC ladders with per-lane waveform perturbations, a [`LaneRunner`] batch
//! reproduces isolated scalar [`Simulator`] runs **bit for bit** — at every
//! lane width, including width 1, and including lanes that leave lockstep
//! and are re-run on the scalar detach path.

use std::sync::Arc;

use exi_netlist::{Circuit, Waveform};
use exi_sim::{LaneRunner, Method, PlanCache, Simulator, TransientOptions, TransientResult};
use exi_sparse::SymbolicCache;
use proptest::prelude::*;

/// Builds an RC ladder `in -R- n0 -R- … -R- out` with a capacitor to ground
/// at every internal node, driven by a fast PWL ramp from `base` to
/// `base + swing`.
fn rc_ladder(resistors: &[f64], caps: &[f64], base: f64, swing: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let gnd = ckt.node("0");
    let vin = ckt.node("in");
    ckt.add_voltage_source(
        "V1",
        vin,
        gnd,
        Waveform::Pwl(vec![(0.0, base), (1e-11, base + swing)]),
    )
    .unwrap();
    let mut prev = vin;
    for (k, (&r, &c)) in resistors.iter().zip(caps.iter()).enumerate() {
        let name = if k + 1 == resistors.len() {
            "out".to_string()
        } else {
            format!("n{k}")
        };
        let node = ckt.node(&name);
        ckt.add_resistor(&format!("R{k}"), prev, node, r).unwrap();
        ckt.add_capacitor(&format!("C{k}"), node, gnd, c).unwrap();
        prev = node;
    }
    ckt
}

fn options(budget: f64) -> TransientOptions {
    TransientOptions {
        t_stop: 6e-10,
        h_init: 1e-12,
        h_max: 5e-11,
        error_budget: budget,
        ..TransientOptions::default()
    }
}

const METHODS: [Method; 3] = [
    Method::BackwardEuler,
    Method::ExponentialRosenbrock,
    Method::ExponentialRosenbrockCorrected,
];

/// A random ladder topology, a per-lane list of drive offsets (offsets move
/// the whole waveform without changing its shape — the lockstep-friendly
/// sweep), an error-budget corner, and a method index.
#[allow(clippy::type_complexity)]
fn lane_inputs() -> impl Strategy<Value = ((Vec<f64>, Vec<f64>), Vec<f64>, f64, usize)> {
    (2usize..5).prop_flat_map(|n| {
        (
            (
                proptest::collection::vec(100.0f64..10_000.0, n),
                proptest::collection::vec(1e-13f64..1e-12, n),
            ),
            proptest::collection::vec(-0.5f64..0.5, 1..8),
            1e-4f64..1e-2,
            0usize..METHODS.len(),
        )
    })
}

fn scalar_reference(ckt: &Circuit, method: Method, opts: &TransientOptions) -> TransientResult {
    Simulator::new(ckt)
        .transient(method, opts, &["out"])
        .expect("scalar run")
}

/// Number of DISTINCT matrix patterns the sweep traverses: the total
/// symbolic analyses K isolated scalar runs perform through ONE shared
/// fresh cache. The lane batch must match it exactly.
fn shared_scalar_symbolic_count(
    circuits: &[Circuit],
    method: Method,
    opts: &TransientOptions,
) -> usize {
    let shared = Arc::new(SymbolicCache::new());
    let plans = Arc::new(PlanCache::new());
    let mut total = 0;
    for ckt in circuits {
        let mut sim = Simulator::with_shared_symbolic(ckt, Arc::clone(&shared))
            .with_plan_cache(Arc::clone(&plans));
        sim.transient(method, opts, &["out"])
            .expect("shared-cache scalar run");
        total += sim.session_stats().symbolic_analyses;
    }
    total
}

/// Panics (the vendored `prop_assert!` is panic-based) unless `got` and
/// `want` agree bit for bit on times, samples and final state.
fn assert_bits_equal(got: &TransientResult, want: &TransientResult, tag: &str) {
    assert_eq!(got.times.len(), want.times.len(), "{tag}: step counts");
    for (a, b) in got.times.iter().zip(&want.times) {
        assert_eq!(a.to_bits(), b.to_bits(), "{tag}: times");
    }
    assert_eq!(got.samples.len(), want.samples.len(), "{tag}: rows");
    for (ra, rb) in got.samples.iter().zip(&want.samples) {
        for (a, b) in ra.iter().zip(rb) {
            assert_eq!(a.to_bits(), b.to_bits(), "{tag}: samples");
        }
    }
    for (a, b) in got.final_state.iter().zip(&want.final_state) {
        assert_eq!(a.to_bits(), b.to_bits(), "{tag}: final state");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Offset-style per-lane perturbations: every lane of the batch is
    /// bit-identical to its isolated scalar run, the batch compiles one
    /// plan and analyzes no more patterns than one scalar run does, and a
    /// width-1 batch is the scalar run.
    #[test]
    fn lanes_match_isolated_scalar_bit_for_bit(
        ((resistors, caps), offsets, budget, method_ix) in lane_inputs()
    ) {
        let method = METHODS[method_ix];
        let opts = options(budget);
        let circuits: Vec<Circuit> = offsets
            .iter()
            .map(|&off| rc_ladder(&resistors, &caps, off, 1.0))
            .collect();
        let refs: Vec<&Circuit> = circuits.iter().collect();

        let batch = LaneRunner::new(&refs)
            .expect("same-fingerprint corners")
            .transient(method, &opts, &["out"]);
        prop_assert_eq!(batch.lanes.len(), circuits.len());
        prop_assert_eq!(batch.stats.lane_batches, 1);
        prop_assert_eq!(batch.stats.plan_compilations, 1);

        prop_assert_eq!(
            batch.stats.symbolic_analyses,
            shared_scalar_symbolic_count(&circuits, method, &opts),
            "lane batch re-analyzed a pattern: {:?}", batch.stats
        );

        let want0 = scalar_reference(&circuits[0], method, &opts);
        for (lane, ckt) in circuits.iter().enumerate() {
            let want = if lane == 0 {
                want0.clone()
            } else {
                scalar_reference(ckt, method, &opts)
            };
            let got = batch.lanes[lane].as_ref().expect("lane result");
            assert_bits_equal(got, &want, &format!("lane {lane}"));
        }

        // A width-1 batch IS the scalar run — no consensus partner, no
        // detach possible.
        let solo = LaneRunner::new(&refs[..1])
            .expect("single lane")
            .transient(method, &opts, &["out"]);
        prop_assert_eq!(solo.stats.lane_detaches, 0);
        assert_bits_equal(solo.lanes[0].as_ref().expect("solo lane"), &want0, "solo");
    }

    /// Forced divergence: an amplitude outlier 100× the leader's swing has
    /// ~100× the leader's truncation error, so once the leader's step-size
    /// controller parks near its own budget the outlier must disagree with
    /// a consensus verdict and detach. The detached lane is re-run on the
    /// scalar path — so it is STILL bit-identical to its isolated run, and
    /// so is every lane that stayed in lockstep.
    #[test]
    fn detached_lanes_stay_bit_identical_and_are_counted(
        ((resistors, caps), _, budget, _) in lane_inputs(),
        outlier_scale in 100.0f64..400.0,
    ) {
        // Lockstep lanes use unit swing; the last lane is the outlier.
        let swings = [1.0, 1.0, outlier_scale];
        let method = Method::BackwardEuler;
        let opts = options(budget);
        let circuits: Vec<Circuit> = swings
            .iter()
            .map(|&s| rc_ladder(&resistors, &caps, 0.0, s))
            .collect();
        let refs: Vec<&Circuit> = circuits.iter().collect();

        let batch = LaneRunner::new(&refs)
            .expect("same-fingerprint corners")
            .transient(method, &opts, &["out"]);
        prop_assert!(
            batch.stats.lane_detaches >= 1,
            "a 100×-amplitude outlier must leave lockstep: {:?}", batch.stats
        );

        for (lane, ckt) in circuits.iter().enumerate() {
            let want = scalar_reference(ckt, method, &opts);
            let got = batch.lanes[lane].as_ref().expect("lane result");
            assert_bits_equal(got, &want, &format!("lane {lane}"));
        }
    }
}
