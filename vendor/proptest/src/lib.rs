//! Minimal offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! Implements the subset this workspace's tests use: the [`proptest!`] macro
//! with `#![proptest_config(..)]`, range / tuple / [`strategy::Just`] /
//! [`collection::vec`] strategies, `prop_map` / `prop_flat_map` combinators
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Cases are generated from a deterministic per-test seed; there is **no
//! shrinking** — a failing case panics with the case index so it can be
//! replayed by re-running the test.

pub mod strategy;

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name and case index.
        pub fn deterministic(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64) << 32 | 0x9E37_79B9),
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[low, high)`.
        pub fn usize_in(&mut self, low: usize, high: usize) -> usize {
            assert!(low < high, "empty usize range");
            low + (self.next_u64() % (high - low) as u64) as usize
        }
    }
}

pub mod collection {
    //! Strategies producing collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        low: usize,
        high: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                low: n,
                high: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                low: r.start,
                high: r.end,
            }
        }
    }

    /// Strategy generating a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.low + 1 == self.size.high {
                self.size.low
            } else {
                rng.usize_in(self.size.low, self.size.high)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests.
///
/// Each function body runs `config.cases` times with fresh random inputs
/// bound to the `pattern in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    // The closure turns `prop_assume!` rejections into an
                    // early return that skips just this case. Whether it
                    // needs `FnMut` depends on the property body, hence the
                    // allow.
                    #[allow(unused_mut)]
                    let mut case_fn = move || $body;
                    case_fn();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 2usize..10, x in -1.5f64..2.5) {
            prop_assert!((2..10).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x), "x = {x}");
        }

        #[test]
        fn vec_and_flat_map_compose(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn map_and_just((a, b) in (Just(3usize), (0usize..4).prop_map(|x| x * 2))) {
            prop_assert_eq!(a, 3);
            prop_assert!(b % 2 == 0 && b < 8);
        }
    }
}
