//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.start, self.end)
    }
}

impl Strategy for Range<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.usize_in(self.start as usize, self.end as usize) as u32
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
