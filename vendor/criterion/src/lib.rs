//! Minimal offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset this workspace's benches use: `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, [`Bencher::iter`] and [`black_box`]. Each benchmark is
//! timed with `std::time::Instant` over `sample_size` batches after a short
//! warm-up, and the mean/min per-iteration times are printed to stdout. No
//! statistics, baselines or HTML reports.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one("", id.as_ref(), sample_size, f);
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, id.as_ref(), self.sample_size, f);
        self
    }

    /// Ends the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Timer handle passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, recording one sample per batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F>(group: &str, id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };

    // Warm-up run that also calibrates the batch size towards ~20 ms.
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    let warmup = bencher.samples.first().copied().unwrap_or_default();
    let iters_per_sample = if warmup.as_nanos() == 0 {
        1000
    } else {
        ((20_000_000 / warmup.as_nanos().max(1)) as u64).clamp(1, 10_000)
    };

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }

    if bencher.samples.is_empty() {
        println!("bench {label:<40} (no samples — closure never called iter)");
        return;
    }
    let per_iter = |d: &Duration| d.as_secs_f64() / iters_per_sample as f64;
    let mean = bencher.samples.iter().map(per_iter).sum::<f64>() / bencher.samples.len() as f64;
    let min = bencher
        .samples
        .iter()
        .map(per_iter)
        .fold(f64::INFINITY, f64::min);
    println!(
        "bench {label:<40} mean {:>12} min {:>12} ({} samples x {} iters)",
        format_time(mean),
        format_time(min),
        bencher.samples.len(),
        iters_per_sample
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2e-6).ends_with("us"));
        assert!(format_time(2e-9).ends_with("ns"));
    }
}
