//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API surface used by this workspace).
//!
//! Provides `rngs::StdRng`, [`SeedableRng`], and the [`Rng`] extension trait
//! with `gen`, `gen_range` and `gen_bool`. The generator is SplitMix64 —
//! deterministic, fast and statistically adequate for workload synthesis and
//! test-vector generation (not for cryptography).

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the unit interval / full range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws one value from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for usize {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let span = (high - low) as u64;
        low + (rng.next_u64() % span) as usize
    }
}

impl SampleUniform for u64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + rng.next_u64() % (high - low)
    }
}

impl SampleUniform for i64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let span = (high - low) as u64;
        low + (rng.next_u64() % span) as i64
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample_standard(rng) * (high - low)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range: empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(-2.0f64..1.5);
            assert!((-2.0..1.5).contains(&f));
            let unit = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }
}
