//! Drive a SPICE deck — subcircuits, parameters and analysis cards — through
//! the deck front-end and the CLI's run path.
//!
//! ```text
//! cargo run --release -p exi-cli --example run_deck
//! ```
//!
//! The deck below models a three-stage RC transmission line built from a
//! `.subckt`, swept by re-parsing the same text with different `.param`
//! overrides — exactly what `exi-cli sweep` does with a deck file.

use exi_cli::{run_deck, RunConfig};
use exi_netlist::parse_deck_with_params;

const DECK: &str = "\
.title three-segment rc line from a subcircuit
.param rseg=250
.param cseg=20f
.subckt seg a b
R1 a mid {rseg}
C1 mid 0 {cseg}
R2 mid b {rseg}
.ends
Vin in 0 PWL(0 0 40p 1)
X1 in m1 seg
X2 m1 m2 seg
X3 m2 out seg
.options reltol=1e-3
.tran 1p 1n 20p
.print v(in) v(out)
.end
";

fn main() -> Result<(), exi_cli::CliError> {
    for rseg in ["100", "250", "1k"] {
        let overrides = [("rseg".to_string(), rseg.to_string())];
        let deck = parse_deck_with_params(DECK, &overrides)?;
        println!(
            "rseg={rseg}: {} devices, {} unknowns, internal node X2.mid -> unknown {:?}",
            deck.circuit.num_devices(),
            deck.circuit.num_unknowns(),
            deck.circuit.unknown_of("X2.mid"),
        );
        let mut csv = Vec::new();
        let summary = run_deck(&deck, &RunConfig::default(), &mut csv)?;
        let text = String::from_utf8(csv).expect("utf-8 csv");
        let last = text.lines().last().expect("at least one row");
        println!(
            "  {} accepted steps, {} symbolic LU analyses, final row: {last}",
            summary.stats.accepted_steps, summary.stats.symbolic_analyses,
        );
    }
    Ok(())
}
