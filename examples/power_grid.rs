//! Domain example: power-distribution-network transient analysis — the
//! application domain of the invert/rational Krylov MEVP work the paper
//! builds on (MATEX). Reports the worst IR-drop seen at the observed grid
//! node for BENR and ER.
//!
//! Run with: `cargo run --release -p exi-sim --example power_grid`

use exi_netlist::generators::{power_grid, PowerGridSpec};
use exi_sim::{Method, SimError, Simulator, TransientOptions};

fn main() -> Result<(), SimError> {
    let spec = PowerGridSpec {
        rows: 10,
        cols: 10,
        num_sinks: 12,
        ..PowerGridSpec::default()
    };
    let circuit = power_grid(&spec)?;
    // Observe the grid node farthest from all four supply pads.
    let observed = format!("g_{}_{}", spec.rows / 2, spec.cols / 2);
    let probes = [observed.as_str()];
    let options = TransientOptions {
        t_stop: 4e-9,
        h_init: 2e-12,
        h_max: 5e-11,
        error_budget: 1e-4,
        ..TransientOptions::default()
    };

    println!(
        "power grid: {} x {} mesh, {} unknowns, {} current sinks",
        spec.rows,
        spec.cols,
        circuit.num_unknowns(),
        spec.num_sinks
    );
    // One session runs both methods: the DC solve happens once and the ER
    // engine reuses its symbolic LU analysis.
    let mut sim = Simulator::new(&circuit);
    for method in [Method::BackwardEuler, Method::ExponentialRosenbrock] {
        let result = sim.transient(method, &options, &probes)?;
        let p = result.probe_index(&observed).expect("probe");
        let worst = result
            .waveform(p)
            .into_iter()
            .fold(spec.vdd, |acc, (_, v)| acc.min(v));
        println!(
            "{:<5}: {} steps, {} LU factorizations ({} symbolic, {} numeric-only), worst voltage at {} = {:.4} V (IR drop {:.1} mV)",
            method.label(),
            result.stats.accepted_steps,
            result.stats.lu_factorizations,
            result.stats.symbolic_analyses,
            result.stats.lu_refactorizations,
            observed,
            worst,
            (spec.vdd - worst) * 1e3
        );
    }
    println!(
        "session: {} runs, {} symbolic LU analyses total, {:.1}% of factorizations numeric-only",
        sim.completed_runs(),
        sim.session_stats().symbolic_analyses,
        100.0 * sim.session_stats().refactorization_ratio(),
    );
    Ok(())
}
