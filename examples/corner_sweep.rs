//! Monte-Carlo corner sweep of a power-distribution grid through the batch
//! subsystem.
//!
//! Eighteen corners of the same 12×12 grid (supply voltage ±10 %, sink
//! current ±50 %, randomized sink placement) run concurrently over a worker
//! pool. Every corner shares one topology, so the whole fleet performs
//! exactly **one** symbolic LU analysis — the batch-level extension of the
//! paper's per-run amortization — while each corner reports its own worst
//! IR drop.
//!
//! Run with: `cargo run --release -p exi-sim --example corner_sweep`

use exi_netlist::generators::{power_grid, PowerGridSpec};
use exi_sim::{BatchJob, BatchPlan, BatchProgress, BatchRunner, Method, TransientOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut plan = BatchPlan::new();
    let mut corner = 0usize;
    for vdd_scale in [0.9, 1.0, 1.1] {
        for sink_scale in [0.5, 1.0, 1.5] {
            for seed in [7, 8] {
                let spec = PowerGridSpec {
                    rows: 12,
                    cols: 12,
                    vdd: 1.0 * vdd_scale,
                    sink_current: 5e-3 * sink_scale,
                    num_sinks: 24,
                    seed,
                    ..PowerGridSpec::default()
                };
                let circuit = power_grid(&spec)?;
                let options = TransientOptions {
                    t_stop: 2e-9,
                    h_init: 1e-12,
                    h_max: 2e-11,
                    error_budget: 1e-3,
                    ..TransientOptions::default()
                };
                plan.push(
                    BatchJob::new(
                        format!(
                            "vdd={:.2} isink={:.1}mA seed={seed}",
                            spec.vdd,
                            spec.sink_current * 1e3
                        ),
                        circuit,
                        Method::ExponentialRosenbrock,
                        options,
                    )
                    .probe("g_5_5")
                    .probe("g_6_6"),
                );
                corner += 1;
            }
        }
    }
    println!("corner sweep: {corner} jobs on one 12x12 grid topology\n");

    let progress = BatchProgress::new();
    let runner = BatchRunner::new();
    let threads = runner.effective_worker_threads();
    let result = runner.run_observed(&plan, &progress);

    println!(
        "{:<32} {:>8} {:>12} {:>12}",
        "corner", "steps", "v(g_5_5)", "droop"
    );
    for (job, outcome) in plan.jobs().iter().zip(result.jobs.iter()) {
        match outcome.recorded() {
            Some(waveform) => {
                let p = waveform.probe_index("g_5_5").expect("probe recorded");
                let vdd_nominal = waveform.samples[0][p];
                let v_min = waveform
                    .samples
                    .iter()
                    .map(|row| row[p])
                    .fold(f64::INFINITY, f64::min);
                println!(
                    "{:<32} {:>8} {:>11.4}V {:>11.2}mV",
                    job.label,
                    waveform.stats.accepted_steps,
                    v_min,
                    (vdd_nominal - v_min) * 1e3
                );
            }
            None => println!(
                "{:<32} failed: {}",
                job.label,
                outcome
                    .result
                    .as_ref()
                    .err()
                    .map_or_else(|| "unknown".to_string(), std::string::ToString::to_string)
            ),
        }
    }

    let stats = &result.stats;
    println!(
        "\nbatch totals ({} workers, {} finished):",
        threads,
        progress.finished()
    );
    println!(
        "  wall time           : {:.3} s",
        result.wall_time.as_secs_f64()
    );
    println!(
        "  active solver time  : {:.3} s (sum over workers)",
        stats.runtime_seconds()
    );
    println!("  accepted steps      : {}", stats.accepted_steps);
    println!("  LU factorizations   : {}", stats.lu_factorizations);
    println!(
        "  symbolic analyses   : {}  <- one for the whole fleet",
        stats.symbolic_analyses
    );
    println!("  shared-cache hits   : {}", stats.shared_symbolic_hits);
    println!(
        "  throughput          : {:.1} jobs/s",
        stats.batch_jobs as f64 / result.wall_time.as_secs_f64().max(1e-9)
    );
    Ok(())
}
