//! Quickstart: build a small RC circuit, open a `Simulator` session, run a
//! transient analysis with the exponential Rosenbrock–Euler method and print
//! the output waveform — then run BENR on the same session, reusing the DC
//! solution and the cached symbolic LU analysis.
//!
//! Run with: `cargo run -p exi-sim --example quickstart`

use exi_netlist::{Circuit, Waveform};
use exi_sim::{Method, SimError, Simulator, TransientOptions};

fn main() -> Result<(), SimError> {
    // A 1 kΩ / 1 pF low-pass filter driven by a 1 V pulse.
    let mut circuit = Circuit::new();
    let vin = circuit.node("in");
    let out = circuit.node("out");
    let gnd = circuit.node("0");
    circuit.add_voltage_source(
        "Vin",
        vin,
        gnd,
        Waveform::single_pulse(0.0, 1.0, 1e-10, 5e-11, 5e-11, 3e-9),
    )?;
    circuit.add_resistor("R1", vin, out, 1e3)?;
    circuit.add_capacitor("C1", out, gnd, 1e-12)?;

    // A session owns all reusable solver state: the DC operating point, the
    // symbolic LU analyses and the Krylov workspace arena. Every run on this
    // circuit shares them.
    let mut sim = Simulator::new(&circuit);

    // Simulate 5 ns with the ER method and probe the output node.
    let options = TransientOptions {
        t_stop: 5e-9,
        h_init: 1e-12,
        h_max: 2e-10,
        error_budget: 1e-4,
        ..TransientOptions::default()
    };
    let result = sim.transient(Method::ExponentialRosenbrock, &options, &["out"])?;

    println!(
        "# ER transient of an RC low-pass ({} accepted steps)",
        result.stats.accepted_steps
    );
    println!("# LU factorizations: {}", result.stats.lu_factorizations);
    println!(
        "# average Krylov dimension: {:.1}",
        result.stats.avg_krylov_dimension()
    );
    println!("# time(s)      v(out)(V)");
    let p = result.probe_index("out").expect("probe");
    for (t, v) in result.waveform(p) {
        println!("{t:.4e}  {v:.6}");
    }

    // A second run on the same session — here with the BENR baseline — skips
    // the DC solve entirely and reuses every cache the first run built.
    let benr = sim.transient(Method::BackwardEuler, &options, &["out"])?;
    println!(
        "# BENR cross-check: {} steps, max deviation {:.2e} V",
        benr.stats.accepted_steps,
        benr.max_error_vs(&result, p)
    );
    println!(
        "# session totals: {} runs, {} symbolic LU analyses",
        sim.completed_runs(),
        sim.session_stats().symbolic_analyses
    );
    Ok(())
}
