//! Domain example: stiff nonlinear CMOS inverter chain (the paper's Fig. 2
//! demonstration circuit). Compares BENR, ER and ER-C against a fine-step
//! reference and prints their accuracy and work counters.
//!
//! Run with: `cargo run --release -p exi-sim --example inverter_chain`

use exi_netlist::generators::{inverter_chain, InverterChainSpec};
use exi_sim::{Method, SimError, Simulator, TransientOptions};

fn main() -> Result<(), SimError> {
    let stages = 5;
    let circuit = inverter_chain(&InverterChainSpec {
        stages,
        ..InverterChainSpec::default()
    })?;
    let observed = format!("s{stages}");
    let probes = [observed.as_str()];
    let t_stop = 1e-9;

    // One session for the reference and all four compared methods.
    let mut sim = Simulator::new(&circuit);

    // Reference solution: backward Euler with a very small fixed step.
    let reference = sim.transient(
        Method::BackwardEuler,
        &TransientOptions {
            t_stop,
            h_init: 2e-13,
            h_max: 2e-13,
            error_budget: 1.0,
            ..TransientOptions::default()
        },
        &probes,
    )?;
    let p = reference.probe_index(&observed).expect("probe");

    let compared = TransientOptions {
        t_stop,
        h_init: 2e-12,
        h_max: 4e-12,
        error_budget: 1e-2,
        ..TransientOptions::default()
    };
    println!("{stages}-stage CMOS inverter chain, observed node {observed}");
    println!("method  steps  LUs   avgNR  avgKrylov  maxErr(V)  rmsErr(V)");
    for method in [
        Method::BackwardEuler,
        Method::Trapezoidal,
        Method::ExponentialRosenbrock,
        Method::ExponentialRosenbrockCorrected,
    ] {
        let result = sim.transient(method, &compared, &probes)?;
        println!(
            "{:<6}  {:<5}  {:<4}  {:<5.1}  {:<9.1}  {:<9.4}  {:<9.4}",
            method.label(),
            result.stats.accepted_steps,
            result.stats.lu_factorizations,
            result.stats.avg_newton_iterations(),
            result.stats.avg_krylov_dimension(),
            result.max_error_vs(&reference, p),
            result.rms_error_vs(&reference, p),
        );
    }
    Ok(())
}
