//! Domain example: post-layout coupled interconnect — the workload class the
//! paper's Table I is about. Sweeps the parasitic coupling density and shows
//! how the BENR factor fill grows with nnz(C) while the ER factor fill (only
//! `G`) stays flat, together with the resulting runtimes.
//!
//! Run with: `cargo run --release -p exi-sim --example post_layout_coupling`

use exi_netlist::generators::{coupled_lines, CoupledLinesSpec};
use exi_sim::{Method, SimError, Simulator, TransientOptions};
use exi_sparse::{factor_fill, CsrMatrix, OrderingMethod};

fn main() -> Result<(), SimError> {
    println!("coupling sweep on an 8-line, 20-segment interconnect bundle");
    println!("extra_couplings  nnz(C)  nnz(G)  fill(C/h+G)  fill(G)  BENR RT(s)  ER RT(s)");
    for extra in [0usize, 200, 800, 2000] {
        let spec = CoupledLinesSpec {
            lines: 8,
            segments: 20,
            random_couplings: extra,
            mosfet_drivers: true,
            ..CoupledLinesSpec::default()
        };
        let circuit = coupled_lines(&spec)?;
        let n = circuit.num_unknowns();
        let x = vec![0.0; n];
        let eval = circuit.compile_plan()?.evaluate(&x)?;
        let h = 1e-12;
        let benr_matrix = CsrMatrix::linear_combination(1.0 / h, &eval.c, 1.0, &eval.g)?;
        let benr_fill = factor_fill(&benr_matrix, OrderingMethod::Rcm).map(|(l, u)| l + u);
        let g_fill = factor_fill(&eval.g, OrderingMethod::Rcm).map(|(l, u)| l + u)?;

        let options = TransientOptions {
            t_stop: 1e-9,
            h_init: 1e-12,
            h_max: 2e-11,
            error_budget: 2e-3,
            ..TransientOptions::default()
        };
        // Both methods share one session per sweep point (one DC solve).
        let mut sim = Simulator::new(&circuit);
        let benr = sim.transient(Method::BackwardEuler, &options, &[])?;
        let er = sim.transient(Method::ExponentialRosenbrock, &options, &[])?;
        println!(
            "{:<15}  {:<6}  {:<6}  {:<11}  {:<7}  {:<10.2}  {:<8.2}",
            extra,
            eval.c.nnz(),
            eval.g.nnz(),
            benr_fill
                .map(|f| f.to_string())
                .unwrap_or_else(|_| "-".into()),
            g_fill,
            benr.stats.runtime_seconds(),
            er.stats.runtime_seconds(),
        );
    }
    println!();
    println!("Expected shape: nnz(C) and fill(C/h+G) grow with the coupling density while");
    println!("fill(G) stays constant; the BENR runtime grows accordingly and ER's does not.");
    Ok(())
}
