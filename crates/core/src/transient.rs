//! The [`Method`] selector and the deprecated one-shot [`run_transient`]
//! entry point (use [`crate::Simulator`] instead).

use exi_netlist::Circuit;

use crate::error::SimResult;
use crate::options::TransientOptions;
use crate::output::TransientResult;
use crate::session::Simulator;

/// The time-integration method used for a transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Backward Euler with Newton–Raphson iterations (the paper's BENR baseline).
    BackwardEuler,
    /// Trapezoidal rule with Newton–Raphson iterations.
    Trapezoidal,
    /// Exponential Rosenbrock–Euler with invert-Krylov MEVP (paper's ER).
    #[default]
    ExponentialRosenbrock,
    /// ER with the φ₂ correction term (paper's ER-C).
    ExponentialRosenbrockCorrected,
}

impl Method {
    /// Short display name matching the paper's terminology.
    pub fn label(&self) -> &'static str {
        match self {
            Method::BackwardEuler => "BENR",
            Method::Trapezoidal => "TRNR",
            Method::ExponentialRosenbrock => "ER",
            Method::ExponentialRosenbrockCorrected => "ER-C",
        }
    }

    /// All methods, in the order the paper's tables list them.
    pub fn all() -> [Method; 4] {
        [
            Method::BackwardEuler,
            Method::Trapezoidal,
            Method::ExponentialRosenbrock,
            Method::ExponentialRosenbrockCorrected,
        ]
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Runs a one-shot transient analysis of `circuit` over `[0, options.t_stop]`.
///
/// `probe_names` selects the node voltages to record; unknown names are an
/// error, ground is silently skipped.
///
/// This is a thin wrapper that creates a throwaway [`Simulator`] session and
/// runs [`Simulator::transient`] once — waveforms are bit-identical to the
/// session API. Prefer a [`Simulator`] directly: a session keeps the symbolic
/// LU analyses, Krylov workspaces and DC solution alive across runs, which
/// this wrapper rebuilds (and discards) on every call.
///
/// # Errors
///
/// Propagates option-validation, DC, Newton, step-control and kernel errors
/// from the selected engine (see [`crate::SimError`]).
///
/// # Examples
///
/// ```
/// use exi_netlist::{Circuit, Waveform};
/// use exi_sim::{Method, Simulator, TransientOptions};
///
/// # fn main() -> Result<(), exi_sim::SimError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// let gnd = ckt.node("0");
/// ckt.add_voltage_source("Vin", vin, gnd, Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]))?;
/// ckt.add_resistor("R1", vin, out, 1e3)?;
/// ckt.add_capacitor("C1", out, gnd, 1e-13)?;
/// let options = TransientOptions::new(1e-9, 1e-12);
/// let result = Simulator::new(&ckt).transient(Method::ExponentialRosenbrock, &options, &["out"])?;
/// assert!(result.len() > 1);
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.2.0",
    note = "create a `Simulator` session and call `transient` on it — consecutive runs then share \
            one symbolic LU analysis, the Krylov workspace arena and the DC solution"
)]
pub fn run_transient(
    circuit: &Circuit,
    method: Method,
    options: &TransientOptions,
    probe_names: &[&str],
) -> SimResult<TransientResult> {
    Simulator::new(circuit).transient(method, options, probe_names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_netlist::Waveform;

    #[test]
    fn method_labels_match_paper() {
        assert_eq!(Method::BackwardEuler.label(), "BENR");
        assert_eq!(Method::ExponentialRosenbrock.label(), "ER");
        assert_eq!(Method::ExponentialRosenbrockCorrected.to_string(), "ER-C");
        assert_eq!(Method::all().len(), 4);
        assert_eq!(Method::default(), Method::ExponentialRosenbrock);
    }

    #[test]
    fn all_methods_run_on_a_small_rc_circuit() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source(
            "Vin",
            vin,
            gnd,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]),
        )
        .unwrap();
        ckt.add_resistor("R1", vin, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, gnd, 1e-13).unwrap();
        let options = TransientOptions {
            t_stop: 5e-10,
            h_init: 1e-12,
            h_max: 1e-11,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        // One session runs all four methods, sharing the DC solution.
        let mut sim = Simulator::new(&ckt);
        for method in Method::all() {
            let result = sim.transient(method, &options, &["out"]).unwrap();
            assert!(result.len() > 5, "{method} produced too few points");
            let p = result.probe_index("out").unwrap();
            let v_end = result.sample_at(p, 5e-10);
            assert!(v_end > 0.9, "{method}: final value {v_end}");
        }
        assert_eq!(sim.completed_runs(), 4);
    }

    #[test]
    fn deprecated_wrapper_matches_session_run() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source(
            "Vin",
            vin,
            gnd,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]),
        )
        .unwrap();
        ckt.add_resistor("R1", vin, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, gnd, 1e-13).unwrap();
        let options = TransientOptions::new(5e-10, 1e-12);
        for method in Method::all() {
            #[allow(deprecated)]
            let wrapped = run_transient(&ckt, method, &options, &["out"]).unwrap();
            let session = Simulator::new(&ckt)
                .transient(method, &options, &["out"])
                .unwrap();
            assert_eq!(wrapped.times, session.times, "{method}");
            assert_eq!(wrapped.samples, session.samples, "{method}");
            assert_eq!(wrapped.final_state, session.final_state, "{method}");
        }
    }

    #[test]
    fn invalid_probe_name_is_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V", a, gnd, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R", a, gnd, 1.0).unwrap();
        ckt.add_capacitor("C", a, gnd, 1e-12).unwrap();
        let options = TransientOptions::new(1e-10, 1e-12);
        assert!(Simulator::new(&ckt)
            .transient(Method::ExponentialRosenbrock, &options, &["zz"])
            .is_err());
    }
}
