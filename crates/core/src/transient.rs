//! Top-level transient analysis entry point.

use exi_netlist::Circuit;

use crate::engines::er::run_exponential_rosenbrock;
use crate::engines::implicit::{run_implicit, ImplicitScheme};
use crate::error::SimResult;
use crate::options::TransientOptions;
use crate::output::TransientResult;

/// The time-integration method used for a transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Backward Euler with Newton–Raphson iterations (the paper's BENR baseline).
    BackwardEuler,
    /// Trapezoidal rule with Newton–Raphson iterations.
    Trapezoidal,
    /// Exponential Rosenbrock–Euler with invert-Krylov MEVP (paper's ER).
    #[default]
    ExponentialRosenbrock,
    /// ER with the φ₂ correction term (paper's ER-C).
    ExponentialRosenbrockCorrected,
}

impl Method {
    /// Short display name matching the paper's terminology.
    pub fn label(&self) -> &'static str {
        match self {
            Method::BackwardEuler => "BENR",
            Method::Trapezoidal => "TRNR",
            Method::ExponentialRosenbrock => "ER",
            Method::ExponentialRosenbrockCorrected => "ER-C",
        }
    }

    /// All methods, in the order the paper's tables list them.
    pub fn all() -> [Method; 4] {
        [
            Method::BackwardEuler,
            Method::Trapezoidal,
            Method::ExponentialRosenbrock,
            Method::ExponentialRosenbrockCorrected,
        ]
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Runs a transient analysis of `circuit` over `[0, options.t_stop]`.
///
/// `probe_names` selects the node voltages to record; unknown names are an
/// error, ground is silently skipped.
///
/// # Errors
///
/// Propagates option-validation, DC, Newton, step-control and kernel errors
/// from the selected engine (see [`crate::SimError`]).
///
/// # Examples
///
/// ```
/// use exi_netlist::{Circuit, Waveform};
/// use exi_sim::{run_transient, Method, TransientOptions};
///
/// # fn main() -> Result<(), exi_sim::SimError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// let gnd = ckt.node("0");
/// ckt.add_voltage_source("Vin", vin, gnd, Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]))?;
/// ckt.add_resistor("R1", vin, out, 1e3)?;
/// ckt.add_capacitor("C1", out, gnd, 1e-13)?;
/// let options = TransientOptions::new(1e-9, 1e-12);
/// let result = run_transient(&ckt, Method::ExponentialRosenbrock, &options, &["out"])?;
/// assert!(result.len() > 1);
/// # Ok(())
/// # }
/// ```
pub fn run_transient(
    circuit: &Circuit,
    method: Method,
    options: &TransientOptions,
    probe_names: &[&str],
) -> SimResult<TransientResult> {
    match method {
        Method::BackwardEuler => {
            run_implicit(circuit, ImplicitScheme::BackwardEuler, options, probe_names)
        }
        Method::Trapezoidal => {
            run_implicit(circuit, ImplicitScheme::Trapezoidal, options, probe_names)
        }
        Method::ExponentialRosenbrock => {
            run_exponential_rosenbrock(circuit, false, options, probe_names)
        }
        Method::ExponentialRosenbrockCorrected => {
            run_exponential_rosenbrock(circuit, true, options, probe_names)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_netlist::Waveform;

    #[test]
    fn method_labels_match_paper() {
        assert_eq!(Method::BackwardEuler.label(), "BENR");
        assert_eq!(Method::ExponentialRosenbrock.label(), "ER");
        assert_eq!(Method::ExponentialRosenbrockCorrected.to_string(), "ER-C");
        assert_eq!(Method::all().len(), 4);
        assert_eq!(Method::default(), Method::ExponentialRosenbrock);
    }

    #[test]
    fn all_methods_run_on_a_small_rc_circuit() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source(
            "Vin",
            vin,
            gnd,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]),
        )
        .unwrap();
        ckt.add_resistor("R1", vin, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, gnd, 1e-13).unwrap();
        let options = TransientOptions {
            t_stop: 5e-10,
            h_init: 1e-12,
            h_max: 1e-11,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        for method in Method::all() {
            let result = run_transient(&ckt, method, &options, &["out"]).unwrap();
            assert!(result.len() > 5, "{method} produced too few points");
            let p = result.probe_index("out").unwrap();
            let v_end = result.sample_at(p, 5e-10);
            assert!(v_end > 0.9, "{method}: final value {v_end}");
        }
    }

    #[test]
    fn invalid_probe_name_is_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V", a, gnd, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R", a, gnd, 1.0).unwrap();
        ckt.add_capacitor("C", a, gnd, 1e-12).unwrap();
        let options = TransientOptions::new(1e-10, 1e-12);
        assert!(run_transient(&ckt, Method::ExponentialRosenbrock, &options, &["zz"]).is_err());
    }
}
