//! Run statistics collected by the transient engines.
//!
//! These are the per-method columns of the paper's Table I: number of
//! accepted steps, average Newton iterations per step (BENR), average Krylov
//! subspace dimension per step (ER/ER-C), LU factorization count and runtime —
//! plus the symbolic-reuse and allocation counters introduced with the
//! KLU-style refactorization path (see `docs/PERFORMANCE.md`).

use std::time::Duration;

/// Counters accumulated over one transient analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Number of accepted time steps (`#step` in Table I).
    pub accepted_steps: usize,
    /// Number of rejected step attempts.
    pub rejected_steps: usize,
    /// Total Newton–Raphson iterations across all steps.
    pub newton_iterations: usize,
    /// Number of numeric LU factorizations performed, fresh and reused alike
    /// (`lu_factorizations == symbolic_analyses + lu_refactorizations`).
    pub lu_factorizations: usize,
    /// Number of **full** factorizations that had to run the symbolic
    /// analysis (fill-reducing ordering, pivot search, reachability DFS).
    /// With a fixed sparsity pattern an engine needs exactly one of these.
    pub symbolic_analyses: usize,
    /// Number of numeric-only refactorizations that reused a cached symbolic
    /// analysis (values changed, pattern did not).
    pub lu_refactorizations: usize,
    /// Number of sparse triangular solves performed.
    pub linear_solves: usize,
    /// Number of full device evaluations.
    pub device_evaluations: usize,
    /// Number of Krylov subspaces built.
    pub krylov_subspaces: usize,
    /// Sum of the dimensions of all Krylov subspaces built.
    pub krylov_dimension_total: usize,
    /// Largest single Krylov subspace dimension seen.
    pub peak_krylov_dimension: usize,
    /// Circuit-sized heap allocations made by the Krylov workspace because
    /// its recycling pool was empty. In steady state this stops growing; a
    /// value that keeps climbing with the step count indicates a workspace
    /// reuse regression in the hot path.
    pub krylov_workspace_allocations: usize,
    /// Wall-clock time of the analysis.
    pub runtime: Duration,
}

impl RunStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        RunStats::default()
    }

    /// Average Newton iterations per accepted step (`#NRa` in Table I).
    pub fn avg_newton_iterations(&self) -> f64 {
        if self.accepted_steps == 0 {
            0.0
        } else {
            self.newton_iterations as f64 / self.accepted_steps as f64
        }
    }

    /// Average Krylov subspace dimension (`#m_a` in Table I).
    pub fn avg_krylov_dimension(&self) -> f64 {
        if self.krylov_subspaces == 0 {
            0.0
        } else {
            self.krylov_dimension_total as f64 / self.krylov_subspaces as f64
        }
    }

    /// Total step attempts (accepted plus rejected).
    pub fn total_attempts(&self) -> usize {
        self.accepted_steps + self.rejected_steps
    }

    /// Fraction of LU factorizations served by the cheap numeric-only
    /// refactorization path (`0.0` when no factorization happened).
    pub fn refactorization_ratio(&self) -> f64 {
        if self.lu_factorizations == 0 {
            0.0
        } else {
            self.lu_refactorizations as f64 / self.lu_factorizations as f64
        }
    }

    /// Runtime in seconds (`RT(s)` in Table I).
    pub fn runtime_seconds(&self) -> f64 {
        self.runtime.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_zero_counts() {
        let s = RunStats::new();
        assert_eq!(s.avg_newton_iterations(), 0.0);
        assert_eq!(s.avg_krylov_dimension(), 0.0);
        assert_eq!(s.total_attempts(), 0);
        assert_eq!(s.refactorization_ratio(), 0.0);
    }

    #[test]
    fn averages_divide_by_the_right_denominator() {
        let s = RunStats {
            accepted_steps: 10,
            rejected_steps: 2,
            newton_iterations: 28,
            krylov_subspaces: 30,
            krylov_dimension_total: 900,
            ..RunStats::default()
        };
        assert!((s.avg_newton_iterations() - 2.8).abs() < 1e-12);
        assert!((s.avg_krylov_dimension() - 30.0).abs() < 1e-12);
        assert_eq!(s.total_attempts(), 12);
        assert_eq!(s.runtime_seconds(), 0.0);
    }

    #[test]
    fn refactorization_ratio_reflects_symbolic_reuse() {
        let s = RunStats {
            lu_factorizations: 40,
            symbolic_analyses: 1,
            lu_refactorizations: 39,
            ..RunStats::default()
        };
        assert!((s.refactorization_ratio() - 0.975).abs() < 1e-12);
        assert_eq!(
            s.lu_factorizations,
            s.symbolic_analyses + s.lu_refactorizations
        );
    }
}
