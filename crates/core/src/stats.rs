//! Run statistics collected by the transient engines.
//!
//! These are the per-method columns of the paper's Table I: number of
//! accepted steps, average Newton iterations per step (BENR), average Krylov
//! subspace dimension per step (ER/ER-C), LU factorization count and runtime —
//! plus the symbolic-reuse and allocation counters introduced with the
//! KLU-style refactorization path (see `docs/PERFORMANCE.md`).

use std::time::Duration;

/// Counters accumulated over one transient analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Number of accepted time steps (`#step` in Table I).
    pub accepted_steps: usize,
    /// Number of rejected step attempts.
    pub rejected_steps: usize,
    /// Total Newton–Raphson iterations across all steps.
    pub newton_iterations: usize,
    /// Number of numeric LU factorizations performed, fresh and reused alike
    /// (`lu_factorizations == symbolic_analyses + lu_refactorizations`).
    pub lu_factorizations: usize,
    /// Number of **full** factorizations that had to run the symbolic
    /// analysis (fill-reducing ordering, pivot search, reachability DFS).
    /// With a fixed sparsity pattern an engine needs exactly one of these.
    pub symbolic_analyses: usize,
    /// Number of numeric-only refactorizations that reused a cached symbolic
    /// analysis (values changed, pattern did not).
    pub lu_refactorizations: usize,
    /// Number of sparse triangular solves performed.
    pub linear_solves: usize,
    /// Number of full device evaluations.
    pub device_evaluations: usize,
    /// Number of [`exi_netlist::EvalPlan`] compilations performed (the
    /// one-time topology analysis of the stamping-plan path). A run on a
    /// fixed topology needs exactly one — per session, or per distinct
    /// circuit structure when a [`crate::PlanCache`] pools plans across a
    /// batch; a counter that scales with the step or run count means the
    /// plan reuse regressed.
    pub plan_compilations: usize,
    /// Number of times a session obtained its evaluation plan from a shared
    /// [`crate::PlanCache`] instead of compiling it. For an `N`-job
    /// same-structure batch the merged stats show `plan_compilations == 1`
    /// and `shared_plan_hits == N`.
    pub shared_plan_hits: usize,
    /// Total nonlinear matrix entries rewritten by
    /// [`exi_netlist::EvalPlan::evaluate_into`] across all device
    /// evaluations. Per evaluation this is exactly the circuit's nonlinear
    /// stamp count ([`exi_netlist::EvalPlan::nonlinear_stamp_count`]) — the
    /// linear baseline is restored by flat copies and never re-stamped, so
    /// `restamped_entries == device_evaluations × nonlinear_stamp_count`
    /// (zero for linear circuits such as power grids and RC ladders).
    pub restamped_entries: usize,
    /// Number of times the stamping-plan path had to grow an assembly
    /// buffer (`Evaluation` storage or [`exi_netlist::EvalWorkspace`]
    /// scratch). Plans pre-size every buffer, so this stays at zero in
    /// steady state; a climbing counter is a hot-loop allocation
    /// regression.
    pub assembly_workspace_allocations: usize,
    /// Number of Krylov subspaces built.
    pub krylov_subspaces: usize,
    /// Sum of the dimensions of all Krylov subspaces built.
    pub krylov_dimension_total: usize,
    /// Largest single Krylov subspace dimension seen.
    pub peak_krylov_dimension: usize,
    /// Circuit-sized heap allocations made by the Krylov workspace because
    /// its recycling pool was empty. In steady state this stops growing; a
    /// value that keeps climbing with the step count indicates a workspace
    /// reuse regression in the hot path.
    pub krylov_workspace_allocations: usize,
    /// Number of [`Observer`](crate::Observer) callback invocations the
    /// stepper performed (`on_dc` + accepted + rejected + `on_finish`).
    /// Compares recording overhead between observers: a
    /// [`NullObserver`](crate::NullObserver) run pays for the dispatch only.
    pub observer_callbacks: usize,
    /// Number of times a paused stepper was continued via
    /// [`Engine::run_until`](crate::Engine::run_until). Zero for an
    /// uninterrupted run; checkpointed long runs accumulate one per
    /// continuation.
    pub resumed_runs: usize,
    /// Number of batch jobs merged into these statistics by a
    /// [`BatchRunner`](crate::BatchRunner) (zero for a single run; failed
    /// jobs count — they did real work).
    pub batch_jobs: usize,
    /// Number of numeric factorizations seeded from a cross-session
    /// [`SymbolicCache`](exi_sparse::SymbolicCache) hit. Such factorizations
    /// also count into [`RunStats::lu_refactorizations`]; for an `N`-job
    /// same-topology sweep the merged stats show `symbolic_analyses == 1`
    /// (the batch runner's main-thread pre-publication) and
    /// `shared_symbolic_hits == N` — every worker session, the would-be
    /// pilot included, derives its factor from the published analysis.
    pub shared_symbolic_hits: usize,
    /// Number of times a shared-cache lookup **blocked** on another
    /// session's in-flight pilot analysis (the condvar wait in
    /// [`SymbolicCache::factorize`](exi_sparse::SymbolicCache::factorize)).
    /// A fully warmed batch — every pattern published before its workers
    /// start — must show 0 here; a nonzero count means the scheduler
    /// serialized jobs behind a pilot instead of pre-publishing.
    pub shared_symbolic_wait_events: usize,
    /// Worker threads the executing [`BatchRunner`](crate::BatchRunner) used
    /// (zero for a plain run). [`RunStats::absorb`] keeps the maximum — for
    /// merged totals this is the batch's actual concurrency, not a sum.
    pub worker_threads: usize,
    /// Number of value-lane batches executed by the lane engine
    /// ([`crate::lanes`]): groups of same-fingerprint jobs advanced in
    /// lockstep through one shared symbolic analysis and plan. Zero for any
    /// scalar run.
    pub lane_batches: usize,
    /// Number of lanes that **detached** from a lane batch back to the
    /// scalar path — a per-lane refactorization failure or a control-flow
    /// decision (step size, convergence, acceptance) that diverged from the
    /// batch leader's. Detached lanes finish via an ordinary scalar run with
    /// warm caches; the remaining lanes are unaffected.
    pub lane_detaches: usize,
    /// Number of batched numeric refactorization passes the lane engine
    /// performed (each pass walks the shared factor pattern once for all its
    /// lanes). The scalar path would have paid one refactorization *per
    /// lane* here; the amortization ratio is
    /// [`RunStats::lanes_per_refactorization`].
    pub lane_refactorization_passes: usize,
    /// Total lanes *served* across all lane refactorization passes — every
    /// lane whose Newton update rode on a pass's shared factor walk, whether
    /// it owned a distinct factor or shared one through value deduplication
    /// (the distinct factors are counted in
    /// [`RunStats::lu_refactorizations`]). Divided by
    /// [`RunStats::lane_refactorization_passes`] this gives the average
    /// amortization width actually achieved.
    pub lane_refactorization_lanes: usize,
    /// Number of recovery escalations taken by the
    /// [`RecoveryPolicy`](crate::RecoveryPolicy) ladder (DC homotopy stages
    /// and transient retries alike). Zero on every healthy run — the policy
    /// only engages where the run would otherwise error.
    pub recovery_attempts: usize,
    /// Gmin-stepping homotopy solves performed during DC recovery.
    pub gmin_steps: usize,
    /// Source-stepping homotopy solves performed during DC recovery.
    pub source_steps: usize,
    /// Number of times the transient retry ladder fell back to another
    /// integration method (ER → BENR, TRNR → BENR).
    pub method_fallbacks: usize,
    /// Active wall-clock time of the analysis: the DC solve (for the run
    /// that triggered it) plus time spent inside `advance()`. Idle time while
    /// a stepper is paused (checkpointing, co-simulation interleaves) is not
    /// charged. Includes [`RunStats::cache_wait`]; subtract it (or use
    /// [`RunStats::active_solver_seconds`]) for the time actually spent
    /// solving.
    pub runtime: Duration,
    /// Time this run spent **blocked on shared caches** instead of solving:
    /// [`SymbolicCache`](exi_sparse::SymbolicCache) lock acquisitions and
    /// in-flight condvar waits, plus the [`crate::PlanCache`] lock (which is
    /// held across a compile, so a concurrent same-structure fetch waits
    /// here). A subset of [`RunStats::runtime`]; reporting the two
    /// separately is what keeps a contended schedule from masquerading as
    /// solver work ("active_solver_s nearly doubled" under 2 workers was
    /// exactly this misattribution).
    pub cache_wait: Duration,
}

impl RunStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        RunStats::default()
    }

    /// Average Newton iterations per accepted step (`#NRa` in Table I).
    pub fn avg_newton_iterations(&self) -> f64 {
        if self.accepted_steps == 0 {
            0.0
        } else {
            self.newton_iterations as f64 / self.accepted_steps as f64
        }
    }

    /// Average Krylov subspace dimension (`#m_a` in Table I).
    pub fn avg_krylov_dimension(&self) -> f64 {
        if self.krylov_subspaces == 0 {
            0.0
        } else {
            self.krylov_dimension_total as f64 / self.krylov_subspaces as f64
        }
    }

    /// Total step attempts (accepted plus rejected).
    pub fn total_attempts(&self) -> usize {
        self.accepted_steps + self.rejected_steps
    }

    /// Fraction of LU factorizations served by the cheap numeric-only
    /// refactorization path (`0.0` when no factorization happened).
    pub fn refactorization_ratio(&self) -> f64 {
        if self.lu_factorizations == 0 {
            0.0
        } else {
            self.lu_refactorizations as f64 / self.lu_factorizations as f64
        }
    }

    /// Runtime in seconds (`RT(s)` in Table I).
    pub fn runtime_seconds(&self) -> f64 {
        self.runtime.as_secs_f64()
    }

    /// Time blocked on shared caches, in seconds (see
    /// [`RunStats::cache_wait`]).
    pub fn cache_wait_seconds(&self) -> f64 {
        self.cache_wait.as_secs_f64()
    }

    /// Runtime actually spent solving: [`RunStats::runtime`] minus
    /// [`RunStats::cache_wait`] (saturating — the plan fetch of a run whose
    /// DC solve was already cached can wait without accruing runtime).
    pub fn active_solver_seconds(&self) -> f64 {
        self.runtime.saturating_sub(self.cache_wait).as_secs_f64()
    }

    /// Average number of lanes each batched refactorization pass served
    /// (`0.0` when the lane engine never ran). A value near the batch width
    /// `K` means full lane occupancy; lower values reflect detaches
    /// shrinking the group.
    pub fn lanes_per_refactorization(&self) -> f64 {
        if self.lane_refactorization_passes == 0 {
            0.0
        } else {
            self.lane_refactorization_lanes as f64 / self.lane_refactorization_passes as f64
        }
    }

    /// Folds another run's counters into these (session totals): counts add
    /// up, peaks take the maximum, runtimes accumulate.
    pub fn absorb(&mut self, other: &RunStats) {
        self.accepted_steps += other.accepted_steps;
        self.rejected_steps += other.rejected_steps;
        self.newton_iterations += other.newton_iterations;
        self.lu_factorizations += other.lu_factorizations;
        self.symbolic_analyses += other.symbolic_analyses;
        self.lu_refactorizations += other.lu_refactorizations;
        self.linear_solves += other.linear_solves;
        self.device_evaluations += other.device_evaluations;
        self.plan_compilations += other.plan_compilations;
        self.shared_plan_hits += other.shared_plan_hits;
        self.restamped_entries += other.restamped_entries;
        self.assembly_workspace_allocations += other.assembly_workspace_allocations;
        self.krylov_subspaces += other.krylov_subspaces;
        self.krylov_dimension_total += other.krylov_dimension_total;
        self.peak_krylov_dimension = self.peak_krylov_dimension.max(other.peak_krylov_dimension);
        self.krylov_workspace_allocations += other.krylov_workspace_allocations;
        self.observer_callbacks += other.observer_callbacks;
        self.resumed_runs += other.resumed_runs;
        self.batch_jobs += other.batch_jobs;
        self.shared_symbolic_hits += other.shared_symbolic_hits;
        self.shared_symbolic_wait_events += other.shared_symbolic_wait_events;
        self.worker_threads = self.worker_threads.max(other.worker_threads);
        self.lane_batches += other.lane_batches;
        self.lane_detaches += other.lane_detaches;
        self.lane_refactorization_passes += other.lane_refactorization_passes;
        self.lane_refactorization_lanes += other.lane_refactorization_lanes;
        self.recovery_attempts += other.recovery_attempts;
        self.gmin_steps += other.gmin_steps;
        self.source_steps += other.source_steps;
        self.method_fallbacks += other.method_fallbacks;
        self.runtime += other.runtime;
        self.cache_wait += other.cache_wait;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_zero_counts() {
        let s = RunStats::new();
        assert_eq!(s.avg_newton_iterations(), 0.0);
        assert_eq!(s.avg_krylov_dimension(), 0.0);
        assert_eq!(s.total_attempts(), 0);
        assert_eq!(s.refactorization_ratio(), 0.0);
    }

    #[test]
    fn averages_divide_by_the_right_denominator() {
        let s = RunStats {
            accepted_steps: 10,
            rejected_steps: 2,
            newton_iterations: 28,
            krylov_subspaces: 30,
            krylov_dimension_total: 900,
            ..RunStats::default()
        };
        assert!((s.avg_newton_iterations() - 2.8).abs() < 1e-12);
        assert!((s.avg_krylov_dimension() - 30.0).abs() < 1e-12);
        assert_eq!(s.total_attempts(), 12);
        assert_eq!(s.runtime_seconds(), 0.0);
    }

    #[test]
    fn refactorization_ratio_reflects_symbolic_reuse() {
        let s = RunStats {
            lu_factorizations: 40,
            symbolic_analyses: 1,
            lu_refactorizations: 39,
            ..RunStats::default()
        };
        assert!((s.refactorization_ratio() - 0.975).abs() < 1e-12);
        assert_eq!(
            s.lu_factorizations,
            s.symbolic_analyses + s.lu_refactorizations
        );
    }

    #[test]
    fn active_solver_time_excludes_cache_wait() {
        let s = RunStats {
            runtime: Duration::from_millis(250),
            cache_wait: Duration::from_millis(50),
            ..RunStats::default()
        };
        assert!((s.runtime_seconds() - 0.25).abs() < 1e-12);
        assert!((s.cache_wait_seconds() - 0.05).abs() < 1e-12);
        assert!((s.active_solver_seconds() - 0.2).abs() < 1e-12);
        // Wait outside the runtime window saturates instead of underflowing.
        let odd = RunStats {
            runtime: Duration::from_millis(10),
            cache_wait: Duration::from_millis(20),
            ..RunStats::default()
        };
        assert_eq!(odd.active_solver_seconds(), 0.0);
        // Both durations and the wait-event counter are plain sums.
        let mut total = s.clone();
        total.absorb(&RunStats {
            cache_wait: Duration::from_millis(25),
            shared_symbolic_wait_events: 3,
            ..RunStats::default()
        });
        assert!((total.cache_wait_seconds() - 0.075).abs() < 1e-12);
        assert_eq!(total.shared_symbolic_wait_events, 3);
    }

    #[test]
    fn lanes_per_refactorization_reflects_batch_width() {
        let s = RunStats::new();
        assert_eq!(s.lanes_per_refactorization(), 0.0);
        let s = RunStats {
            lane_batches: 2,
            lane_refactorization_passes: 10,
            lane_refactorization_lanes: 65,
            lane_detaches: 1,
            ..RunStats::default()
        };
        assert!((s.lanes_per_refactorization() - 6.5).abs() < 1e-12);
        // Lane counters are plain sums under absorb.
        let mut total = s.clone();
        total.absorb(&s);
        assert_eq!(total.lane_batches, 4);
        assert_eq!(total.lane_detaches, 2);
        assert_eq!(total.lane_refactorization_passes, 20);
        assert_eq!(total.lane_refactorization_lanes, 130);
        assert!((total.lanes_per_refactorization() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_counters_and_maxes_peaks() {
        let a = RunStats {
            accepted_steps: 10,
            symbolic_analyses: 1,
            lu_factorizations: 12,
            lu_refactorizations: 11,
            peak_krylov_dimension: 7,
            observer_callbacks: 13,
            resumed_runs: 2,
            ..RunStats::default()
        };
        let b = RunStats {
            accepted_steps: 5,
            lu_factorizations: 5,
            lu_refactorizations: 5,
            peak_krylov_dimension: 9,
            observer_callbacks: 6,
            batch_jobs: 3,
            shared_symbolic_hits: 4,
            worker_threads: 2,
            ..RunStats::default()
        };
        let mut total = a.clone();
        total.absorb(&b);
        assert_eq!(total.accepted_steps, 15);
        assert_eq!(total.symbolic_analyses, 1);
        assert_eq!(total.peak_krylov_dimension, 9);
        assert_eq!(total.observer_callbacks, 19);
        assert_eq!(total.resumed_runs, 2);
        // Batch counters: jobs and cache hits add up, concurrency maxes.
        assert_eq!(total.batch_jobs, 3);
        assert_eq!(total.shared_symbolic_hits, 4);
        assert_eq!(total.worker_threads, 2);
        let mut wide = total.clone();
        wide.absorb(&RunStats {
            worker_threads: 8,
            ..RunStats::default()
        });
        assert_eq!(wide.worker_threads, 8);
        // Plan-path counters are plain sums.
        let mut planned = RunStats {
            plan_compilations: 1,
            restamped_entries: 40,
            assembly_workspace_allocations: 1,
            ..RunStats::default()
        };
        planned.absorb(&RunStats {
            shared_plan_hits: 3,
            restamped_entries: 2,
            recovery_attempts: 2,
            gmin_steps: 5,
            source_steps: 3,
            method_fallbacks: 1,
            ..RunStats::default()
        });
        assert_eq!(planned.recovery_attempts, 2);
        assert_eq!(planned.gmin_steps, 5);
        assert_eq!(planned.source_steps, 3);
        assert_eq!(planned.method_fallbacks, 1);
        assert_eq!(planned.plan_compilations, 1);
        assert_eq!(planned.shared_plan_hits, 3);
        assert_eq!(planned.restamped_entries, 42);
        assert_eq!(planned.assembly_workspace_allocations, 1);
        assert_eq!(
            total.lu_factorizations,
            a.lu_factorizations + b.lu_factorizations
        );
    }
}
