//! Batched **value-lane** engine: one symbolic analysis, one compiled plan,
//! `K` parameter corners advanced in lockstep.
//!
//! A [`LaneRunner`] takes `K` circuits with the **same**
//! [`circuit_fingerprint`] — identical topology and device values, different
//! source waveforms — and drives all of them through one Newton/step-control
//! state machine. Per iteration it restamps every lane, deduplicates
//! bitwise-identical Jacobians, refactorizes the distinct values in a single
//! pass over the shared factor pattern
//! ([`LaneFactors::refactorize_lanes`](exi_sparse::LaneFactors)), and back-
//! substitutes all `K` right-hand sides while the factor is hot
//! ([`solve_lanes`](exi_sparse::LaneFactors::solve_lanes)).
//!
//! # The bit-identity contract
//!
//! Every lane's waveform is **bit-identical** to the same circuit run through
//! a standalone scalar [`Simulator`]. The drivers below replay the exact
//! floating-point operation sequence of
//! [`dc_operating_point_internal`](crate::dc) and the implicit stepper's
//! `advance_step` — same residual expression, same voltage limiting, same
//! LTE predictor, same step-control arithmetic — so lockstep execution is an
//! *instruction schedule* change, never a numeric one.
//!
//! # The detach contract
//!
//! Lockstep only holds while every lane takes the same control path. The
//! moment a lane disagrees with the batch — its clamped step differs (a
//! private breakpoint), its Newton iteration diverges where the leader's
//! converged (or vice versa), its LTE verdict differs, its Jacobian pattern
//! leaves the shared symbolic analysis, or its frozen-pivot refactorization
//! fails where the scalar ladder would re-pivot — the lane **detaches**: it
//! leaves the lockstep group and is re-run start-to-finish on the scalar
//! path against the batch's shared [`SymbolicCache`] and [`PlanCache`]. The
//! rerun *is* the scalar reference, so a detached lane is still bit-identical
//! to its isolated run; detaching costs time, never correctness. Each detach
//! increments [`RunStats::lane_detaches`].
//!
//! Deterministic failures whose scalar outcome is already decided at the
//! point of disagreement (step-size underflow, Newton exhaustion at `h_min`,
//! a non-finite accepted state) are returned directly as that lane's error —
//! no rerun, and no detach counted.
//!
//! # Statistics
//!
//! The batch-level [`RunStats`] returned in [`LaneBatchResult::stats`] /
//! [`LaneDcResult::stats`] is the authoritative account of all work done,
//! including any detach reruns. Lockstep control decisions (accepted and
//! rejected steps) are counted once per batch, not once per lane; per-lane
//! work (device evaluations, Newton updates, linear solves) is summed over
//! lanes. Per-lane [`TransientResult::stats`] are left empty for lanes that
//! completed in lockstep (the batch figure is not divisible); a detached
//! lane carries its own scalar rerun's statistics.

use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use exi_netlist::{circuit_fingerprint, Circuit, EvalPlan, Evaluation};
use exi_sparse::{
    vector, CsrMatrix, FactorSource, LaneFactors, LaneVec, LaneWorkspace, LuOptions, LuWorkspace,
    SparseError, SymbolicCache, LANE_DETACHED,
};

use crate::dc::DcSolution;
use crate::engines::{clamp_step, prepare, reached_end, resolve_probes};
use crate::error::{SimError, SimResult};
use crate::observer::{Observer, RecordingObserver};
use crate::options::{DcOptions, TransientOptions};
use crate::output::TransientResult;
use crate::session::{PlanCache, Simulator};
use crate::stats::RunStats;
use crate::transient::Method;

/// How a batch scheduler coalesces same-fingerprint jobs into lane batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LanePolicy {
    /// Never form lane batches; every job runs on the scalar path. This is
    /// the default: lane batching changes scheduling (one symbolic claimant
    /// per group, shared stepping), so callers opt in explicitly.
    #[default]
    Off,
    /// Coalesce same-fingerprint jobs into batches of up to
    /// [`LanePolicy::AUTO_WIDTH`] lanes.
    Auto,
    /// Coalesce into batches of exactly this width (the last batch of a
    /// group may be narrower). `Fixed(0)` behaves like [`LanePolicy::Off`];
    /// `Fixed(1)` exercises the lane path with single-lane batches.
    Fixed(usize),
}

impl LanePolicy {
    /// Lane width used by [`LanePolicy::Auto`].
    pub const AUTO_WIDTH: usize = 8;

    /// Maximum lanes per batch under this policy, or `None` when lane
    /// batching is disabled.
    pub fn max_width(self) -> Option<usize> {
        match self {
            LanePolicy::Off | LanePolicy::Fixed(0) => None,
            LanePolicy::Auto => Some(Self::AUTO_WIDTH),
            LanePolicy::Fixed(k) => Some(k),
        }
    }

    /// `true` when this policy never forms lane batches.
    pub fn is_off(self) -> bool {
        self.max_width().is_none()
    }
}

impl FromStr for LanePolicy {
    type Err = String;

    /// Parses the CLI surface: `off`, `auto`, or a lane count.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(LanePolicy::Off),
            "auto" => Ok(LanePolicy::Auto),
            other => other
                .parse::<usize>()
                .map(LanePolicy::Fixed)
                .map_err(|_| format!("expected 'auto', 'off' or a lane count, got '{other}'")),
        }
    }
}

impl std::fmt::Display for LanePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LanePolicy::Off => write!(f, "off"),
            LanePolicy::Auto => write!(f, "auto"),
            LanePolicy::Fixed(k) => write!(f, "{k}"),
        }
    }
}

/// Per-lane DC solutions plus the batch-level statistics.
#[derive(Debug)]
pub struct LaneDcResult {
    /// One result per input circuit, in input order.
    pub lanes: Vec<SimResult<DcSolution>>,
    /// Authoritative statistics for the whole batch (lockstep work plus any
    /// detach reruns).
    pub stats: RunStats,
}

/// Per-lane transient results plus the batch-level statistics.
#[derive(Debug)]
pub struct LaneBatchResult {
    /// One result per input circuit, in input order.
    pub lanes: Vec<SimResult<TransientResult>>,
    /// Authoritative statistics for the whole batch (lockstep work plus any
    /// detach reruns).
    pub stats: RunStats,
}

/// Drives `K` same-fingerprint circuits through one shared solver state
/// machine (see the [module docs](self)).
pub struct LaneRunner<'c> {
    circuits: Vec<&'c Circuit>,
    shared: Arc<SymbolicCache>,
    plans: Arc<PlanCache>,
}

impl<'c> LaneRunner<'c> {
    /// Creates a runner over `circuits`, which must be non-empty and share
    /// one [`circuit_fingerprint`] (same topology and device values; only
    /// source waveforms may differ).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidOptions`] when the batch is empty or fingerprints
    /// disagree.
    pub fn new(circuits: &[&'c Circuit]) -> SimResult<Self> {
        if circuits.is_empty() {
            return Err(SimError::InvalidOptions {
                message: "a lane batch needs at least one circuit".to_string(),
            });
        }
        let fp = circuit_fingerprint(circuits[0]);
        for (lane, ckt) in circuits.iter().enumerate().skip(1) {
            if circuit_fingerprint(ckt) != fp {
                return Err(SimError::InvalidOptions {
                    message: format!(
                        "lane {lane} has a different circuit fingerprint than lane 0; \
                         lane batches require identical topology and device values"
                    ),
                });
            }
        }
        Ok(LaneRunner {
            circuits: circuits.to_vec(),
            shared: Arc::new(SymbolicCache::new()),
            plans: Arc::new(PlanCache::new()),
        })
    }

    /// Uses `shared` for symbolic analyses instead of a private cache, so
    /// the batch's single analysis is pooled with other sessions.
    pub fn with_shared_symbolic(mut self, shared: Arc<SymbolicCache>) -> Self {
        self.shared = shared;
        self
    }

    /// Uses `cache` for compiled evaluation plans instead of a private one.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plans = cache;
        self
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.circuits.len()
    }

    /// Computes every lane's DC operating point in lockstep.
    ///
    /// Lanes that leave lockstep (see the [module docs](self)) are re-run on
    /// the scalar path against the shared caches; their per-lane `Result` is
    /// exactly what an isolated scalar solve would produce.
    pub fn dc(&self, options: &DcOptions) -> LaneDcResult {
        let mut stats = RunStats::new();
        stats.lane_batches += 1;
        let plan = match self.acquire_plan(&mut stats) {
            Ok(plan) => plan,
            Err(e) => return self.dc_all_failed(e, stats),
        };
        let started = Instant::now();
        let include = vec![true; self.circuits.len()];
        let outcomes = dc_lockstep(
            &self.circuits,
            &plan,
            options,
            &self.shared,
            &mut stats,
            &include,
        );
        stats.runtime += started.elapsed();
        let lanes = outcomes
            .into_iter()
            .enumerate()
            .map(|(lane, outcome)| match outcome {
                LaneOutcome::Done(solution) => Ok(solution),
                LaneOutcome::Failed(e) => Err(e.attributed(self.circuits[lane])),
                LaneOutcome::Detached => {
                    let mut sim = Simulator::with_shared_symbolic(
                        self.circuits[lane],
                        Arc::clone(&self.shared),
                    )
                    .with_plan_cache(Arc::clone(&self.plans));
                    let result = sim.dc_with(options);
                    stats.absorb(sim.session_stats());
                    result
                }
                LaneOutcome::Pending => unreachable!("lockstep driver resolved every lane"),
            })
            .collect();
        LaneDcResult { lanes, stats }
    }

    /// Runs every lane's transient analysis.
    ///
    /// The implicit methods ([`Method::BackwardEuler`],
    /// [`Method::Trapezoidal`]) step all lanes in lockstep; the exponential
    /// methods run the lanes sequentially through scalar sessions sharing
    /// this batch's symbolic and plan caches (the Krylov recurrences are
    /// value-dependent, so there is no shared factor pass to batch — the
    /// shared-cache reuse is still worth the grouping).
    pub fn transient(
        &self,
        method: Method,
        options: &TransientOptions,
        probe_names: &[&str],
    ) -> LaneBatchResult {
        let mut stats = RunStats::new();
        stats.lane_batches += 1;
        if let Err(e) = options.validate() {
            return self.transient_all_failed(e, stats);
        }
        let plan = match self.acquire_plan(&mut stats) {
            Ok(plan) => plan,
            Err(e) => return self.transient_all_failed(e, stats),
        };
        let theta = match method {
            Method::BackwardEuler => 1.0,
            Method::Trapezoidal => 0.5,
            Method::ExponentialRosenbrock | Method::ExponentialRosenbrockCorrected => {
                return self.transient_sequential(method, options, probe_names, stats);
            }
        };

        // Scalar sessions resolve probes before anything else; mirror that
        // order so a bad probe name fails a lane without starting its DC.
        let k = self.circuits.len();
        let mut probes = Vec::with_capacity(k);
        let mut include = vec![false; k];
        for (lane, ckt) in self.circuits.iter().enumerate() {
            match resolve_probes(ckt, probe_names) {
                Ok(p) => {
                    include[lane] = true;
                    probes.push(Ok(p));
                }
                Err(e) => probes.push(Err(e)),
            }
        }

        let started = Instant::now();
        let dc_options = DcOptions {
            ordering: options.ordering,
            ..DcOptions::default()
        };
        let dc_outcomes = dc_lockstep(
            &self.circuits,
            &plan,
            &dc_options,
            &self.shared,
            &mut stats,
            &include,
        );

        let mut observers: Vec<RecordingObserver> = Vec::with_capacity(k);
        let mut init: Vec<LaneOutcome<Vec<f64>>> = Vec::with_capacity(k);
        for (lane, outcome) in dc_outcomes.into_iter().enumerate() {
            match &probes[lane] {
                Ok(p) => observers.push(RecordingObserver::new(
                    p.clone(),
                    options.record_full_states,
                )),
                Err(_) => observers.push(RecordingObserver::new(Vec::new(), false)),
            }
            init.push(match probes[lane].as_ref() {
                Err(e) => LaneOutcome::Failed(e.clone()),
                Ok(_) => match outcome {
                    LaneOutcome::Done(solution) => LaneOutcome::Done(solution.state),
                    LaneOutcome::Detached => LaneOutcome::Detached,
                    LaneOutcome::Failed(e) => LaneOutcome::Failed(e),
                    LaneOutcome::Pending => unreachable!("lockstep driver resolved every lane"),
                },
            });
        }

        let outcomes = implicit_lockstep(
            &self.circuits,
            &plan,
            theta,
            options,
            init,
            &mut observers,
            &self.shared,
            &mut stats,
        );
        stats.runtime += started.elapsed();

        let lanes = outcomes
            .into_iter()
            .zip(observers)
            .enumerate()
            .map(|(lane, (outcome, observer))| match outcome {
                LaneOutcome::Done(()) => Ok(observer.into_result()),
                LaneOutcome::Failed(e) => Err(e.attributed(self.circuits[lane])),
                LaneOutcome::Detached => {
                    self.rerun_scalar(lane, method, options, probe_names, &mut stats)
                }
                LaneOutcome::Pending => unreachable!("lockstep driver resolved every lane"),
            })
            .collect();
        LaneBatchResult { lanes, stats }
    }

    /// Scalar rerun of one lane against the batch's shared caches — the
    /// detach path, bit-identical to an isolated run by the pivot-order
    /// stability contract.
    fn rerun_scalar(
        &self,
        lane: usize,
        method: Method,
        options: &TransientOptions,
        probe_names: &[&str],
        stats: &mut RunStats,
    ) -> SimResult<TransientResult> {
        let mut sim =
            Simulator::with_shared_symbolic(self.circuits[lane], Arc::clone(&self.shared))
                .with_plan_cache(Arc::clone(&self.plans));
        let result = sim.transient(method, options, probe_names);
        stats.absorb(sim.session_stats());
        result
    }

    /// ER/ER-C lanes: sequential scalar sessions over the shared caches.
    fn transient_sequential(
        &self,
        method: Method,
        options: &TransientOptions,
        probe_names: &[&str],
        mut stats: RunStats,
    ) -> LaneBatchResult {
        let lanes = (0..self.circuits.len())
            .map(|lane| self.rerun_scalar(lane, method, options, probe_names, &mut stats))
            .collect();
        LaneBatchResult { lanes, stats }
    }

    /// Fetches (or compiles) the one evaluation plan every lane shares,
    /// mirroring the scalar session's cache accounting.
    fn acquire_plan(&self, stats: &mut RunStats) -> SimResult<Arc<EvalPlan>> {
        let (plan, compiled, waited) = self.plans.get_or_compile_timed(self.circuits[0])?;
        stats.cache_wait += waited;
        if compiled {
            stats.plan_compilations += 1;
        } else {
            stats.shared_plan_hits += 1;
        }
        Ok(plan)
    }

    fn dc_all_failed(&self, e: SimError, stats: RunStats) -> LaneDcResult {
        LaneDcResult {
            lanes: self
                .circuits
                .iter()
                .map(|ckt| Err(e.clone().attributed(ckt)))
                .collect(),
            stats,
        }
    }

    fn transient_all_failed(&self, e: SimError, stats: RunStats) -> LaneBatchResult {
        LaneBatchResult {
            lanes: self
                .circuits
                .iter()
                .map(|ckt| Err(e.clone().attributed(ckt)))
                .collect(),
            stats,
        }
    }
}

/// Where a lane stands relative to the lockstep group.
#[derive(Debug)]
enum LaneOutcome<T> {
    /// Still stepping in lockstep.
    Pending,
    /// Finished on the lockstep path.
    Done(T),
    /// Left lockstep; must be re-run on the scalar path.
    Detached,
    /// Failed with an error the scalar path would produce identically.
    Failed(SimError),
}

fn attached_lanes<T>(out: &[LaneOutcome<T>]) -> Vec<usize> {
    out.iter()
        .enumerate()
        .filter(|(_, o)| matches!(o, LaneOutcome::Pending))
        .map(|(lane, _)| lane)
        .collect()
}

fn detach<T>(out: &mut [LaneOutcome<T>], lane: usize, stats: &mut RunStats) {
    out[lane] = LaneOutcome::Detached;
    stats.lane_detaches += 1;
}

/// Bitwise equality of two matrices — pattern and values. `==` on `f64`
/// would conflate `-0.0` with `+0.0` and lose NaN payloads; value
/// deduplication must be exact or "shared factor" silently becomes "wrong
/// factor" for one lane.
fn same_matrix_bits(a: &CsrMatrix, b: &CsrMatrix) -> bool {
    a.rows() == b.rows()
        && a.indptr() == b.indptr()
        && a.indices() == b.indices()
        && a.values()
            .iter()
            .zip(b.values())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Acquires a shared symbolic analysis for `mat` through the pool, mirroring
/// the scalar `refresh_lu` rung-3 statistics, and wraps it in a fresh
/// [`LaneFactors`] sized for `lanes` value lanes.
fn acquire_factors(
    shared: &SymbolicCache,
    mat: &CsrMatrix,
    lu_options: &LuOptions,
    lanes: usize,
    lu_ws: &mut LuWorkspace,
    stats: &mut RunStats,
) -> SimResult<LaneFactors> {
    let (lu, source, wait) = shared.factorize_timed(mat, lu_options, lu_ws)?;
    stats.lu_factorizations += 1;
    stats.cache_wait += wait.blocked;
    stats.shared_symbolic_wait_events += wait.events;
    match source {
        FactorSource::Shared => {
            stats.lu_refactorizations += 1;
            stats.shared_symbolic_hits += 1;
        }
        FactorSource::Analyzed => stats.symbolic_analyses += 1,
    }
    if let Some(budget) = lu_options.fill_budget {
        if lu.fill() > budget {
            return Err(SimError::Sparse(SparseError::FillBudgetExceeded {
                reached: lu.fill(),
                budget,
            }));
        }
    }
    Ok(LaneFactors::new(lu.shared_symbolic(), lanes, lu_options))
}

/// Outcome of one shared refactorize-and-solve round: per-lane Newton
/// updates for every lane that stayed attached through it.
///
/// Deduplicates bitwise-identical matrices to representative lanes, keeps
/// the shared symbolic analysis in sync with the leader's pattern (leader =
/// lowest attached lane), refactorizes each distinct value set in one lane
/// pass and back-substitutes every right-hand side. Lanes whose pattern or
/// values fall outside the shared analysis detach; an unusable leader
/// pattern fails the leader (the scalar path would fail identically) and
/// detaches the rest.
#[allow(clippy::too_many_arguments)]
fn lane_solve_round<T>(
    out: &mut [LaneOutcome<T>],
    round: &[usize],
    round_mats: &[&CsrMatrix],
    round_rhs: &[&[f64]],
    factors: &mut Option<LaneFactors>,
    shared: &SymbolicCache,
    lu_options: &LuOptions,
    lanes_total: usize,
    rhs_lanes: &mut LaneVec,
    delta_lanes: &mut LaneVec,
    lane_ws: &mut LaneWorkspace,
    lu_ws: &mut LuWorkspace,
    stats: &mut RunStats,
) -> Vec<usize> {
    debug_assert_eq!(round.len(), round_mats.len());
    debug_assert_eq!(round.len(), round_rhs.len());
    let mut reps: Vec<usize> = Vec::new();
    let mut lane_map = vec![LANE_DETACHED; lanes_total];
    for (idx, &lane) in round.iter().enumerate() {
        match reps
            .iter()
            .position(|&r| same_matrix_bits(round_mats[r], round_mats[idx]))
        {
            Some(pos) => lane_map[lane] = pos,
            None => {
                lane_map[lane] = reps.len();
                reps.push(idx);
            }
        }
    }
    let leader_mat = round_mats[reps[0]];
    let need = match factors.as_ref() {
        Some(f) => !f.symbolic().matches_pattern(leader_mat),
        None => true,
    };
    if need {
        match acquire_factors(shared, leader_mat, lu_options, lanes_total, lu_ws, stats) {
            Ok(f) => *factors = Some(f),
            Err(e) => {
                let leader = round[reps[0]];
                out[leader] = LaneOutcome::Failed(e);
                for &lane in round {
                    if lane != leader {
                        detach(out, lane, stats);
                    }
                }
                return Vec::new();
            }
        }
    }
    let factors = factors.as_mut().expect("lane factors acquired");
    let rep_mats: Vec<&CsrMatrix> = reps.iter().map(|&r| round_mats[r]).collect();
    let refactor = factors.refactorize_lanes(&rep_mats, lane_ws);
    stats.lane_refactorization_passes += 1;
    stats.lu_factorizations += reps.len();
    stats.lu_refactorizations += reps.len();
    let mut solvable = Vec::with_capacity(round.len());
    for (idx, &lane) in round.iter().enumerate() {
        if refactor[lane_map[lane]].is_ok() {
            rhs_lanes.load_lane(lane, round_rhs[idx]);
            solvable.push(lane);
        } else {
            // The scalar ladder would re-pivot this lane from scratch;
            // lockstep cannot, so the lane leaves the group.
            detach(out, lane, stats);
            lane_map[lane] = LANE_DETACHED;
        }
    }
    if solvable.is_empty() {
        return solvable;
    }
    if factors
        .solve_lanes(rhs_lanes, &lane_map, delta_lanes, lane_ws)
        .is_err()
    {
        for &lane in &solvable {
            detach(out, lane, stats);
        }
        return Vec::new();
    }
    stats.linear_solves += solvable.len();
    stats.lane_refactorization_lanes += solvable.len();
    solvable
}

/// Lockstep mirror of the plain (no-homotopy) path of
/// `dc_operating_point_internal`: same residual, damping-engagement test,
/// voltage limiting and convergence arithmetic per lane. Lanes outside
/// `include` come back [`LaneOutcome::Detached`] without counting a detach
/// (the caller already resolved them).
fn dc_lockstep(
    circuits: &[&Circuit],
    plan: &EvalPlan,
    options: &DcOptions,
    shared: &SymbolicCache,
    stats: &mut RunStats,
    include: &[bool],
) -> Vec<LaneOutcome<DcSolution>> {
    let k = circuits.len();
    let n = circuits[0].num_unknowns();
    let b = plan.input_matrix();
    let lu_options = LuOptions {
        ordering: options.ordering,
        ..LuOptions::default()
    };

    let mut out: Vec<LaneOutcome<DcSolution>> = include
        .iter()
        .map(|&inc| {
            if inc {
                LaneOutcome::Pending
            } else {
                LaneOutcome::Detached
            }
        })
        .collect();

    let bu: Vec<Vec<f64>> = circuits
        .iter()
        .map(|ckt| b.mul_vec(&ckt.input_vector(0.0)))
        .collect();
    let mut x: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
    let mut previous_residual = vec![f64::INFINITY; k];
    let mut residual_norm = vec![0.0_f64; k];
    let mut evals: Vec<Evaluation> = (0..k).map(|_| plan.new_evaluation()).collect();
    let mut eval_ws = plan.new_workspace();
    let mut rhs: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
    let mut delta: Vec<Vec<f64>> = vec![vec![0.0; n]; k];
    let mut rhs_lanes = LaneVec::zeros(n, k);
    let mut delta_lanes = LaneVec::zeros(n, k);
    let mut lane_ws = LaneWorkspace::new();
    let mut lu_ws = LuWorkspace::new();
    let mut factors: Option<LaneFactors> = None;

    for iter in 1..=options.max_iterations {
        let active = attached_lanes(&out);
        if active.is_empty() {
            break;
        }
        let mut round = Vec::with_capacity(active.len());
        for &lane in &active {
            match plan.evaluate_into(&x[lane], &mut eval_ws, &mut evals[lane]) {
                Ok(restamped) => stats.restamped_entries += restamped,
                Err(e) => {
                    out[lane] = LaneOutcome::Failed(e.into());
                    continue;
                }
            }
            stats.device_evaluations += 1;
            for i in 0..n {
                rhs[lane][i] = bu[lane][i] - evals[lane].f[i];
            }
            let norm = vector::norm_inf(&rhs[lane]);
            if !norm.is_finite() || norm > 10.0 * previous_residual[lane] {
                // The scalar solver engages Levenberg damping here, which
                // changes the Jacobian pattern — off the lockstep path.
                detach(&mut out, lane, stats);
                continue;
            }
            previous_residual[lane] = norm.min(previous_residual[lane]);
            residual_norm[lane] = norm;
            round.push(lane);
        }
        if round.is_empty() {
            continue;
        }
        let round_mats: Vec<&CsrMatrix> = round.iter().map(|&lane| &evals[lane].g).collect();
        let round_rhs: Vec<&[f64]> = round.iter().map(|&lane| rhs[lane].as_slice()).collect();
        let solvable = lane_solve_round(
            &mut out,
            &round,
            &round_mats,
            &round_rhs,
            &mut factors,
            shared,
            &lu_options,
            k,
            &mut rhs_lanes,
            &mut delta_lanes,
            &mut lane_ws,
            &mut lu_ws,
            stats,
        );
        for &lane in &solvable {
            delta_lanes.store_lane(lane, &mut delta[lane]);
            for d in delta[lane].iter_mut() {
                if d.abs() > options.max_update {
                    *d = options.max_update * d.signum();
                }
                if !d.is_finite() {
                    *d = 0.0;
                }
            }
            let update_norm = vector::norm_inf(&delta[lane]);
            vector::axpy(1.0, &delta[lane], &mut x[lane]);
            stats.newton_iterations += 1;
            if update_norm < options.tolerance && residual_norm[lane].is_finite() {
                match plan.evaluate_into(&x[lane], &mut eval_ws, &mut evals[lane]) {
                    Ok(restamped) => stats.restamped_entries += restamped,
                    Err(e) => {
                        out[lane] = LaneOutcome::Failed(e.into());
                        continue;
                    }
                }
                stats.device_evaluations += 1;
                let final_residual = vector::norm_inf(&vector::sub(&bu[lane], &evals[lane].f));
                out[lane] = LaneOutcome::Done(DcSolution {
                    state: x[lane].clone(),
                    iterations: iter,
                    residual: final_residual,
                });
            }
        }
    }
    for outcome in out.iter_mut() {
        if matches!(outcome, LaneOutcome::Pending) {
            *outcome = LaneOutcome::Failed(SimError::NewtonDidNotConverge {
                time: 0.0,
                step: 0.0,
                iterations: options.max_iterations,
            });
        }
    }
    out
}

/// Per-lane mutable state of the implicit lockstep driver.
struct TransLane {
    x: Vec<f64>,
    xi: Vec<f64>,
    u_k: Vec<f64>,
    u_next: Vec<f64>,
    bu_k: Vec<f64>,
    bu_next: Vec<f64>,
    residual: Vec<f64>,
    delta: Vec<f64>,
    eval_k: Evaluation,
    eval_i: Evaluation,
    jac: Option<CsrMatrix>,
    prev_derivative: Option<Vec<f64>>,
    breakpoints: Vec<f64>,
    converged: bool,
    broken: bool,
    iters: usize,
    lte: f64,
}

/// Lockstep mirror of `ImplicitStepper::advance_step` over `K` lanes.
///
/// The four consensus points — clamped step size, Newton convergence, LTE
/// verdict, post-accept step growth — compare each lane against the leader
/// (lowest attached lane); disagreeing lanes detach so the group's shared
/// `t`/`h` trajectory always equals what each remaining lane's scalar run
/// would have produced.
#[allow(clippy::too_many_arguments)]
fn implicit_lockstep(
    circuits: &[&Circuit],
    plan: &Arc<EvalPlan>,
    theta: f64,
    options: &TransientOptions,
    init: Vec<LaneOutcome<Vec<f64>>>,
    observers: &mut [RecordingObserver],
    shared: &SymbolicCache,
    stats: &mut RunStats,
) -> Vec<LaneOutcome<()>> {
    let k = circuits.len();
    let n = circuits[0].num_unknowns();
    let b = plan.input_matrix();
    let input_dim = b.cols();
    let lu_options = LuOptions {
        ordering: options.ordering,
        fill_budget: options.fill_budget,
        ..LuOptions::default()
    };

    let mut out: Vec<LaneOutcome<()>> = Vec::with_capacity(k);
    let mut lanes: Vec<TransLane> = Vec::with_capacity(k);
    for (lane, state) in init.into_iter().enumerate() {
        let (outcome, x0) = match state {
            LaneOutcome::Done(x0) => match prepare(circuits[lane], options) {
                Ok(breakpoints) => (LaneOutcome::Pending, Some((x0, breakpoints))),
                Err(e) => (LaneOutcome::Failed(e), None),
            },
            LaneOutcome::Detached => (LaneOutcome::Detached, None),
            LaneOutcome::Failed(e) => (LaneOutcome::Failed(e), None),
            LaneOutcome::Pending => unreachable!("DC driver resolved every lane"),
        };
        out.push(outcome);
        let (x0, breakpoints) = match x0 {
            Some((x0, bps)) => (x0, bps),
            None => (vec![0.0; n], Vec::new()),
        };
        lanes.push(TransLane {
            x: x0,
            xi: vec![0.0; n],
            u_k: vec![0.0; input_dim],
            u_next: vec![0.0; input_dim],
            bu_k: vec![0.0; n],
            bu_next: vec![0.0; n],
            residual: vec![0.0; n],
            delta: vec![0.0; n],
            eval_k: plan.new_evaluation(),
            eval_i: plan.new_evaluation(),
            jac: None,
            prev_derivative: None,
            breakpoints,
            converged: false,
            broken: false,
            iters: 0,
            lte: 0.0,
        });
    }

    let mut eval_ws = plan.new_workspace();
    let mut rhs_lanes = LaneVec::zeros(n, k);
    let mut delta_lanes = LaneVec::zeros(n, k);
    let mut lane_ws = LaneWorkspace::new();
    let mut lu_ws = LuWorkspace::new();
    let mut factors: Option<LaneFactors> = None;

    let mut t = 0.0_f64;
    let mut h = options.h_init;

    for &lane in &attached_lanes(&out) {
        stats.observer_callbacks += 1;
        observers[lane].on_dc(t, &lanes[lane].x);
    }
    if reached_end(t, options.t_stop) {
        for lane in attached_lanes(&out) {
            stats.observer_callbacks += 1;
            observers[lane].on_finish(&lanes[lane].x, &RunStats::new());
            out[lane] = LaneOutcome::Done(());
        }
        return out;
    }

    'outer: loop {
        let attached = attached_lanes(&out);
        if attached.is_empty() {
            break;
        }
        // Step-start evaluation at the accepted state (scalar: top of
        // advance_step, outside the retry loop — retries reuse it).
        for &lane in &attached {
            let l = &mut lanes[lane];
            match plan.evaluate_into(&l.x, &mut eval_ws, &mut l.eval_k) {
                Ok(restamped) => stats.restamped_entries += restamped,
                Err(e) => {
                    out[lane] = LaneOutcome::Failed(e.into());
                    continue;
                }
            }
            stats.device_evaluations += 1;
            circuits[lane].input_vector_into(t, &mut l.u_k);
            b.mul_vec_into(&l.u_k, &mut l.bu_k);
        }

        'retry: loop {
            let attached = attached_lanes(&out);
            if attached.is_empty() {
                break 'outer;
            }
            // Consensus 1: the clamped step. Breakpoints are per-lane
            // (waveform timing differs), so the clamp must agree bitwise.
            let leader = attached[0];
            let h_step = clamp_step(
                t,
                h.min(options.h_max),
                options.t_stop,
                &lanes[leader].breakpoints,
            );
            for &lane in &attached[1..] {
                let h_lane = clamp_step(
                    t,
                    h.min(options.h_max),
                    options.t_stop,
                    &lanes[lane].breakpoints,
                );
                if h_lane.to_bits() != h_step.to_bits() {
                    detach(&mut out, lane, stats);
                }
            }
            let attached = attached_lanes(&out);
            if h_step < options.h_min {
                for &lane in &attached {
                    out[lane] = LaneOutcome::Failed(SimError::StepSizeUnderflow {
                        time: t,
                        step: h_step,
                    });
                }
                break 'outer;
            }
            for &lane in &attached {
                let l = &mut lanes[lane];
                circuits[lane].input_vector_into(t + h_step, &mut l.u_next);
                b.mul_vec_into(&l.u_next, &mut l.bu_next);
                l.xi.copy_from_slice(&l.x);
                l.converged = false;
                l.broken = false;
                l.iters = 0;
            }

            // --- Newton–Raphson in lockstep. ---
            let mut iterations = 0usize;
            while iterations < options.newton_max_iterations {
                let round: Vec<usize> = attached_lanes(&out)
                    .into_iter()
                    .filter(|&lane| !lanes[lane].converged && !lanes[lane].broken)
                    .collect();
                if round.is_empty() {
                    break;
                }
                iterations += 1;
                for &lane in &round {
                    let l = &mut lanes[lane];
                    match plan.evaluate_into(&l.xi, &mut eval_ws, &mut l.eval_i) {
                        Ok(restamped) => stats.restamped_entries += restamped,
                        Err(e) => {
                            out[lane] = LaneOutcome::Failed(e.into());
                            continue;
                        }
                    }
                    stats.device_evaluations += 1;
                    for i in 0..n {
                        l.residual[i] = (l.eval_i.q[i] - l.eval_k.q[i]) / h_step
                            + theta * (l.eval_i.f[i] - l.bu_next[i])
                            + (1.0 - theta) * (l.eval_k.f[i] - l.bu_k[i]);
                    }
                    let combined = match l.jac.as_mut() {
                        Some(jac) => CsrMatrix::linear_combination_into(
                            1.0 / h_step,
                            &l.eval_i.c,
                            theta,
                            &l.eval_i.g,
                            jac,
                        ),
                        None => CsrMatrix::linear_combination(
                            1.0 / h_step,
                            &l.eval_i.c,
                            theta,
                            &l.eval_i.g,
                        )
                        .map(|jac| l.jac = Some(jac)),
                    };
                    if let Err(e) = combined {
                        out[lane] = LaneOutcome::Failed(e.into());
                    }
                }
                let round: Vec<usize> = round
                    .into_iter()
                    .filter(|&lane| matches!(out[lane], LaneOutcome::Pending))
                    .collect();
                if round.is_empty() {
                    break;
                }
                let round_mats: Vec<&CsrMatrix> = round
                    .iter()
                    .map(|&lane| lanes[lane].jac.as_ref().expect("jac combined this round"))
                    .collect();
                let round_rhs: Vec<&[f64]> = round
                    .iter()
                    .map(|&lane| lanes[lane].residual.as_slice())
                    .collect();
                let solvable = lane_solve_round(
                    &mut out,
                    &round,
                    &round_mats,
                    &round_rhs,
                    &mut factors,
                    shared,
                    &lu_options,
                    k,
                    &mut rhs_lanes,
                    &mut delta_lanes,
                    &mut lane_ws,
                    &mut lu_ws,
                    stats,
                );
                for &lane in &solvable {
                    let l = &mut lanes[lane];
                    delta_lanes.store_lane(lane, &mut l.delta);
                    vector::scale(-1.0, &mut l.delta);
                    let update = vector::norm_inf(&l.delta);
                    vector::axpy(1.0, &l.delta, &mut l.xi);
                    stats.newton_iterations += 1;
                    if !update.is_finite() {
                        l.broken = true;
                        continue;
                    }
                    if update < options.newton_tolerance {
                        l.converged = true;
                        l.iters = iterations;
                    }
                }
            }

            // Consensus 2: Newton convergence. The leader's verdict decides
            // whether the batch retries; lanes on the other side detach.
            let attached = attached_lanes(&out);
            if attached.is_empty() {
                break 'outer;
            }
            let leader = attached[0];
            if !lanes[leader].converged {
                for &lane in &attached[1..] {
                    if lanes[lane].converged {
                        detach(&mut out, lane, stats);
                    }
                }
                stats.rejected_steps += 1;
                for &lane in &attached_lanes(&out) {
                    stats.observer_callbacks += 1;
                    observers[lane].on_step_rejected(t, h_step);
                }
                h *= options.shrink_factor;
                if h < options.h_min {
                    for lane in attached_lanes(&out) {
                        out[lane] = LaneOutcome::Failed(SimError::NewtonDidNotConverge {
                            time: t,
                            step: h_step,
                            iterations: options.newton_max_iterations,
                        });
                    }
                    break 'outer;
                }
                continue 'retry;
            }
            for &lane in &attached[1..] {
                if !lanes[lane].converged {
                    detach(&mut out, lane, stats);
                }
            }

            // Consensus 3: the LTE verdict (forward-Euler predictor).
            let attached = attached_lanes(&out);
            if attached.is_empty() {
                break 'outer;
            }
            for &lane in &attached {
                let l = &mut lanes[lane];
                l.lte = match &l.prev_derivative {
                    Some(dxdt) => {
                        let mut err = 0.0_f64;
                        for (i, d) in dxdt.iter().enumerate() {
                            let predicted = l.x[i] + h_step * d;
                            err = err.max((l.xi[i] - predicted).abs());
                        }
                        err * 0.5
                    }
                    None => 0.0,
                };
            }
            let leader = attached[0];
            let reject = |lte: f64| lte > options.error_budget && h_step > 2.0 * options.h_min;
            let leader_rejects = reject(lanes[leader].lte);
            for &lane in &attached[1..] {
                if reject(lanes[lane].lte) != leader_rejects {
                    detach(&mut out, lane, stats);
                }
            }
            if leader_rejects {
                stats.rejected_steps += 1;
                for &lane in &attached_lanes(&out) {
                    stats.observer_callbacks += 1;
                    observers[lane].on_step_rejected(t, h_step);
                }
                h = h_step * options.shrink_factor;
                continue 'retry;
            }

            // Accept the step on every remaining lane.
            let attached = attached_lanes(&out);
            if attached.is_empty() {
                break 'outer;
            }
            for &lane in &attached {
                let l = &mut lanes[lane];
                let mut derivative = l.prev_derivative.take().unwrap_or_else(|| vec![0.0; n]);
                for (i, d) in derivative.iter_mut().enumerate() {
                    *d = (l.xi[i] - l.x[i]) / h_step;
                }
                l.prev_derivative = Some(derivative);
                std::mem::swap(&mut l.x, &mut l.xi);
            }
            t += h_step;
            for &lane in &attached {
                if lanes[lane].x.iter().any(|v| !v.is_finite()) {
                    out[lane] = LaneOutcome::Failed(SimError::NonFinite {
                        time: t,
                        device: None,
                    });
                }
            }
            let attached = attached_lanes(&out);
            stats.accepted_steps += 1;
            for &lane in &attached {
                stats.observer_callbacks += 1;
                observers[lane].on_step_accepted(t, &lanes[lane].x);
            }
            if attached.is_empty() {
                break 'outer;
            }

            // Consensus 4: post-accept step growth (easy-step heuristic uses
            // per-lane Newton counts and LTE).
            let leader = attached[0];
            let grows = |l: &TransLane| {
                l.iters <= options.easy_step_threshold + 1 && l.lte < 0.5 * options.error_budget
            };
            let leader_grows = grows(&lanes[leader]);
            for &lane in &attached[1..] {
                if grows(&lanes[lane]) != leader_grows {
                    detach(&mut out, lane, stats);
                }
            }
            h = if leader_grows {
                (h_step * options.growth_factor).min(options.h_max)
            } else {
                h_step
            };

            if reached_end(t, options.t_stop) {
                for lane in attached_lanes(&out) {
                    stats.observer_callbacks += 1;
                    observers[lane].on_finish(&lanes[lane].x, &RunStats::new());
                    out[lane] = LaneOutcome::Done(());
                }
                break 'outer;
            }
            break 'retry;
        }
    }
    stats.assembly_workspace_allocations += eval_ws.allocations();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_netlist::generators::{rc_ladder, RcLadderSpec};
    use exi_netlist::Waveform;

    fn ladder_with_offset(offset: f64) -> Circuit {
        rc_ladder(&RcLadderSpec {
            segments: 12,
            input: Waveform::single_pulse(offset, offset + 1.0, 0.0, 1e-11, 1e-11, 1e-8),
            ..RcLadderSpec::default()
        })
        .expect("generator builds")
    }

    /// Offset-style corner sweep (e.g. supply-voltage corners): the DC level
    /// varies per lane while the transient swing is shared, so in a linear
    /// circuit the per-lane local-truncation errors agree to rounding and
    /// the lanes genuinely share the step-control trajectory. Amplitude-
    /// *scaled* sweeps scale LTE with the lane and detach at the controller's
    /// growth boundary — by design (their scalar trajectories diverge).
    fn offsets(k: usize) -> Vec<f64> {
        (0..k).map(|i| 0.05 * i as f64).collect()
    }

    #[test]
    fn lane_policy_parses_and_defaults_off() {
        assert_eq!(LanePolicy::default(), LanePolicy::Off);
        assert_eq!("off".parse::<LanePolicy>().unwrap(), LanePolicy::Off);
        assert_eq!("auto".parse::<LanePolicy>().unwrap(), LanePolicy::Auto);
        assert_eq!("4".parse::<LanePolicy>().unwrap(), LanePolicy::Fixed(4));
        assert!("wat".parse::<LanePolicy>().is_err());
        assert!(LanePolicy::Off.is_off());
        assert!(LanePolicy::Fixed(0).is_off());
        assert_eq!(LanePolicy::Auto.max_width(), Some(LanePolicy::AUTO_WIDTH));
        assert_eq!(LanePolicy::Fixed(3).max_width(), Some(3));
        assert_eq!(LanePolicy::Auto.to_string(), "auto");
        assert_eq!(LanePolicy::Fixed(6).to_string(), "6");
    }

    #[test]
    fn mismatched_fingerprints_are_rejected() {
        let a = ladder_with_offset(1.0);
        let b = rc_ladder(&RcLadderSpec {
            segments: 13,
            ..RcLadderSpec::default()
        })
        .unwrap();
        let err = LaneRunner::new(&[&a, &b]).err().expect("must reject");
        assert!(matches!(err, SimError::InvalidOptions { .. }));
        assert!(LaneRunner::new(&[]).is_err());
    }

    #[test]
    fn lane_dc_is_bit_identical_to_isolated_scalar_runs() {
        let circuits: Vec<Circuit> = offsets(4).into_iter().map(ladder_with_offset).collect();
        let refs: Vec<&Circuit> = circuits.iter().collect();
        let runner = LaneRunner::new(&refs).unwrap();
        let options = DcOptions::default();
        let batch = runner.dc(&options);
        assert_eq!(batch.stats.lane_batches, 1);
        assert_eq!(batch.stats.lane_detaches, 0);
        assert_eq!(batch.stats.symbolic_analyses, 1);
        assert_eq!(batch.stats.plan_compilations, 1);
        assert!(batch.stats.lane_refactorization_passes > 0);
        for (lane, ckt) in circuits.iter().enumerate() {
            let scalar = Simulator::new(ckt).dc_with(&options).expect("scalar dc");
            let got = batch.lanes[lane].as_ref().expect("lane dc");
            assert_eq!(got.iterations, scalar.iterations);
            assert_eq!(got.state.len(), scalar.state.len());
            for (a, b) in got.state.iter().zip(&scalar.state) {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {lane} state drifted");
            }
            assert_eq!(got.residual.to_bits(), scalar.residual.to_bits());
        }
    }

    #[test]
    fn lane_transient_is_bit_identical_to_isolated_scalar_runs() {
        let circuits: Vec<Circuit> = offsets(3).into_iter().map(ladder_with_offset).collect();
        let refs: Vec<&Circuit> = circuits.iter().collect();
        let runner = LaneRunner::new(&refs).unwrap();
        let options = TransientOptions::new(2e-10, 1e-12);
        let probes = ["n1", "n12"];
        let batch = runner.transient(Method::BackwardEuler, &options, &probes);
        assert_eq!(
            batch.stats.lane_detaches, 0,
            "uniform batch must not detach"
        );
        assert_eq!(batch.stats.symbolic_analyses, 1);
        assert_eq!(batch.stats.plan_compilations, 1);
        assert!(batch.stats.lane_refactorization_passes > 0);
        assert!(batch.stats.lanes_per_refactorization() > 1.0);
        for (lane, ckt) in circuits.iter().enumerate() {
            let scalar = Simulator::new(ckt)
                .transient(Method::BackwardEuler, &options, &probes)
                .expect("scalar transient");
            let got = batch.lanes[lane].as_ref().expect("lane transient");
            assert_eq!(
                got.times.len(),
                scalar.times.len(),
                "lane {lane} step count"
            );
            for (a, b) in got.times.iter().zip(&scalar.times) {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {lane} time axis drifted");
            }
            for (sa, sb) in got.samples.iter().zip(&scalar.samples) {
                for (a, b) in sa.iter().zip(sb) {
                    assert_eq!(a.to_bits(), b.to_bits(), "lane {lane} waveform drifted");
                }
            }
            for (a, b) in got.final_state.iter().zip(&scalar.final_state) {
                assert_eq!(a.to_bits(), b.to_bits(), "lane {lane} final state drifted");
            }
        }
    }

    #[test]
    fn single_lane_batch_matches_scalar() {
        let ckt = ladder_with_offset(1.0);
        let runner = LaneRunner::new(&[&ckt]).unwrap();
        let options = TransientOptions::new(1e-10, 1e-12);
        let batch = runner.transient(Method::Trapezoidal, &options, &["n12"]);
        let scalar = Simulator::new(&ckt)
            .transient(Method::Trapezoidal, &options, &["n12"])
            .unwrap();
        let got = batch.lanes[0].as_ref().unwrap();
        assert_eq!(got.times.len(), scalar.times.len());
        for (a, b) in got.final_state.iter().zip(&scalar.final_state) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(batch.stats.lane_detaches, 0);
    }

    #[test]
    fn exponential_lanes_share_caches_and_match_scalar() {
        let circuits: Vec<Circuit> = offsets(2).into_iter().map(ladder_with_offset).collect();
        let refs: Vec<&Circuit> = circuits.iter().collect();
        let runner = LaneRunner::new(&refs).unwrap();
        let options = TransientOptions::new(1e-10, 1e-12);
        let batch = runner.transient(Method::ExponentialRosenbrock, &options, &["n12"]);
        assert_eq!(
            batch.stats.plan_compilations, 1,
            "one compile for the batch"
        );
        assert_eq!(
            batch.stats.symbolic_analyses, 1,
            "one analysis for the batch"
        );
        for (lane, ckt) in circuits.iter().enumerate() {
            let scalar = Simulator::new(ckt)
                .transient(Method::ExponentialRosenbrock, &options, &["n12"])
                .unwrap();
            let got = batch.lanes[lane].as_ref().unwrap();
            assert_eq!(got.times.len(), scalar.times.len());
            for (a, b) in got.final_state.iter().zip(&scalar.final_state) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn invalid_options_fail_every_lane() {
        let ckt = ladder_with_offset(1.0);
        let runner = LaneRunner::new(&[&ckt, &ckt]).unwrap();
        let bad = TransientOptions {
            t_stop: 0.0,
            ..TransientOptions::default()
        };
        let batch = runner.transient(Method::BackwardEuler, &bad, &[]);
        assert_eq!(batch.lanes.len(), 2);
        for lane in &batch.lanes {
            assert!(matches!(lane, Err(SimError::InvalidOptions { .. })));
        }
    }

    #[test]
    fn bad_probe_fails_only_that_invocation_path() {
        let ckt = ladder_with_offset(1.0);
        let runner = LaneRunner::new(&[&ckt, &ckt]).unwrap();
        let options = TransientOptions::new(1e-10, 1e-12);
        let batch = runner.transient(Method::BackwardEuler, &options, &["nope"]);
        for lane in &batch.lanes {
            assert!(lane.is_err());
        }
    }
}
