//! # exi-sim
//!
//! SPICE-like transient circuit simulation using **exponential
//! Rosenbrock–Euler integrators** with invert-Krylov matrix-exponential
//! evaluation — a from-scratch Rust reproduction of
//!
//! > H. Zhuang, W. Yu, I. Kang, X. Wang, C.-K. Cheng,
//! > *"An Algorithmic Framework for Efficient Large-Scale Circuit Simulation
//! > Using Exponential Integrators"*, DAC 2015.
//!
//! The crate ties together the three substrates of the workspace:
//! [`exi_sparse`] (sparse LU and dense kernels), [`exi_netlist`] (devices,
//! MNA stamping, workload generators) and [`exi_krylov`] (matrix exponential
//! and Krylov subspaces), and exposes:
//!
//! * [`dc_operating_point`] — damped Newton DC analysis.
//! * [`run_transient`] with a [`Method`] selector:
//!   * [`Method::BackwardEuler`] / [`Method::Trapezoidal`] — the low-order
//!     implicit baselines (the paper's BENR),
//!   * [`Method::ExponentialRosenbrock`] /
//!     [`Method::ExponentialRosenbrockCorrected`] — the paper's ER and ER-C
//!     methods (Algorithm 2), which factorize only the conductance matrix `G`
//!     and adapt the step size without any re-factorization.
//! * [`TransientResult`] with probed waveforms, error metrics against a
//!   reference run, and the Table-I style counters in [`RunStats`].
//!
//! # Examples
//!
//! Simulate an RC low-pass and compare ER against BENR:
//!
//! ```
//! use exi_netlist::{Circuit, Waveform};
//! use exi_sim::{run_transient, Method, TransientOptions};
//!
//! # fn main() -> Result<(), exi_sim::SimError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! let gnd = ckt.node("0");
//! ckt.add_voltage_source("Vin", vin, gnd, Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]))?;
//! ckt.add_resistor("R1", vin, out, 1e3)?;
//! ckt.add_capacitor("C1", out, gnd, 1e-13)?;
//! let options = TransientOptions::new(1e-9, 1e-12);
//! let er = run_transient(&ckt, Method::ExponentialRosenbrock, &options, &["out"])?;
//! let benr = run_transient(&ckt, Method::BackwardEuler, &options, &["out"])?;
//! let p = er.probe_index("out").unwrap();
//! assert!(er.max_error_vs(&benr, p) < 0.05);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod dc;
pub mod engines;
pub mod error;
pub mod options;
pub mod output;
pub mod stats;
pub mod transient;

pub use dc::{dc_operating_point, DcSolution};
pub use engines::er::run_exponential_rosenbrock;
pub use engines::implicit::{run_implicit, ImplicitScheme};
pub use error::{SimError, SimResult};
pub use options::{DcOptions, TransientOptions};
pub use output::{Probe, TransientResult};
pub use stats::RunStats;
pub use transient::{run_transient, Method};
