//! # exi-sim
//!
//! SPICE-like transient circuit simulation using **exponential
//! Rosenbrock–Euler integrators** with invert-Krylov matrix-exponential
//! evaluation — a from-scratch Rust reproduction of
//!
//! > H. Zhuang, W. Yu, I. Kang, X. Wang, C.-K. Cheng,
//! > *"An Algorithmic Framework for Efficient Large-Scale Circuit Simulation
//! > Using Exponential Integrators"*, DAC 2015.
//!
//! The crate ties together the three substrates of the workspace:
//! [`exi_sparse`] (sparse LU and dense kernels), [`exi_netlist`] (devices,
//! MNA stamping, workload generators) and [`exi_krylov`] (matrix exponential
//! and Krylov subspaces).
//!
//! # The session API
//!
//! The central type is the [`Simulator`] — a session bound to one circuit
//! that owns every piece of reusable solver state: the cached symbolic LU
//! analyses, the compiled stamping plan ([`exi_netlist::EvalPlan`], the
//! allocation-free device-restamping path), the Krylov workspace arena and
//! the DC operating point.
//! Consecutive analyses on the same topology (method comparisons, parameter
//! sweeps, resumed runs) therefore perform **exactly one symbolic analysis
//! per matrix pattern** — one for `G`, plus one for `C/h + θ·G` when an
//! implicit method runs — the cross-run extension of the paper's per-run
//! amortization argument.
//!
//! * [`Simulator::dc`] — damped-Newton DC operating point (cached).
//! * [`Simulator::transient`] with a [`Method`] selector — one full run,
//!   returning the buffered [`TransientResult`]:
//!   * [`Method::BackwardEuler`] / [`Method::Trapezoidal`] — the low-order
//!     implicit baselines (the paper's BENR),
//!   * [`Method::ExponentialRosenbrock`] /
//!     [`Method::ExponentialRosenbrockCorrected`] — the paper's ER and ER-C
//!     methods (Algorithm 2), which factorize only the conductance matrix `G`
//!     and adapt the step size without any re-factorization.
//! * [`Simulator::transient_observed`] — the same run streaming through an
//!   [`Observer`] instead of buffering: [`RecordingObserver`] reproduces
//!   [`TransientResult`], [`StreamingObserver`] keeps a fixed-memory
//!   decimated waveform, [`CsvObserver`] writes delimiter-separated rows to
//!   any sink as steps are accepted (the `exi-cli` waveform path), and
//!   [`NullObserver`] measures raw solver throughput.
//! * [`Simulator::stepper`] — an incremental [`Engine`] stepper: advance one
//!   accepted step at a time, pause before `t_stop`, inspect
//!   [`Engine::state`], and resume **bit-identically** — the substrate for
//!   checkpointed long runs and interleaved co-simulation.
//! * [`Simulator::sweep`] — several runs back to back on the shared caches.
//!
//! The free functions [`run_transient`] / [`dc_operating_point`] remain for
//! one-shot use; `run_transient` is deprecated in favor of the session API
//! (its waveforms are bit-identical to [`Simulator::transient`]).
//!
//! # Batch execution
//!
//! One level above sessions, the [`batch`] subsystem runs **fleets** of jobs
//! (parameter sweeps, Monte-Carlo corners, per-user requests) over a pool of
//! worker threads whose sessions share one
//! [`exi_sparse::SymbolicCache`]: describe the jobs with a [`BatchPlan`] and
//! execute with a [`BatchRunner`] — same-topology jobs perform exactly one
//! symbolic LU analysis total, results come back in submission order with
//! per-job error isolation, and output is bit-identical to sequential
//! execution at any worker-thread count:
//!
//! ```
//! use exi_netlist::generators::{power_grid, PowerGridSpec};
//! use exi_sim::{BatchJob, BatchPlan, BatchRunner, Method, TransientOptions};
//!
//! # fn main() -> Result<(), exi_sim::SimError> {
//! let mut plan = BatchPlan::new();
//! for sinks in [4, 8] {
//!     let spec = PowerGridSpec { rows: 4, cols: 4, num_sinks: sinks, ..Default::default() };
//!     plan.push(
//!         BatchJob::new(
//!             format!("sinks={sinks}"),
//!             power_grid(&spec)?,
//!             Method::ExponentialRosenbrock,
//!             TransientOptions::new(5e-10, 1e-12),
//!         )
//!         .probe("g_2_2"),
//!     );
//! }
//! let result = BatchRunner::new().worker_threads(2).run(&plan);
//! assert!(result.all_ok());
//! // Two same-topology corners, one symbolic analysis for the whole fleet
//! // — pre-published by the runner, so both corners count as shared hits.
//! assert_eq!(result.stats.symbolic_analyses, 1);
//! assert_eq!(result.stats.shared_symbolic_hits, 2);
//! # Ok(())
//! # }
//! ```
//!
//! # Examples
//!
//! Simulate an RC low-pass with ER and BENR in one session — the second run
//! reuses the DC solution, and both reuse each other's workspaces:
//!
//! ```
//! use exi_netlist::{Circuit, Waveform};
//! use exi_sim::{Method, Simulator, TransientOptions};
//!
//! # fn main() -> Result<(), exi_sim::SimError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! let gnd = ckt.node("0");
//! ckt.add_voltage_source("Vin", vin, gnd, Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]))?;
//! ckt.add_resistor("R1", vin, out, 1e3)?;
//! ckt.add_capacitor("C1", out, gnd, 1e-13)?;
//! let options = TransientOptions::new(1e-9, 1e-12);
//!
//! let mut sim = Simulator::new(&ckt);
//! let er = sim.transient(Method::ExponentialRosenbrock, &options, &["out"])?;
//! let benr = sim.transient(Method::BackwardEuler, &options, &["out"])?;
//! let p = er.probe_index("out").unwrap();
//! assert!(er.max_error_vs(&benr, p) < 0.05);
//! # Ok(())
//! # }
//! ```
//!
//! Pause a long run, inspect it, and resume bit-identically:
//!
//! ```
//! use exi_netlist::{Circuit, Waveform};
//! use exi_sim::{Engine, Method, RecordingObserver, Simulator, StepOutcome, TransientOptions};
//!
//! # fn main() -> Result<(), exi_sim::SimError> {
//! # let mut ckt = Circuit::new();
//! # let vin = ckt.node("in");
//! # let out = ckt.node("out");
//! # let gnd = ckt.node("0");
//! # ckt.add_voltage_source("Vin", vin, gnd, Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]))?;
//! # ckt.add_resistor("R1", vin, out, 1e3)?;
//! # ckt.add_capacitor("C1", out, gnd, 1e-13)?;
//! let options = TransientOptions::new(1e-9, 1e-12);
//! let mut sim = Simulator::new(&ckt);
//! let mut observer = RecordingObserver::new(Vec::new(), false);
//! let mut stepper = sim.stepper(Method::ExponentialRosenbrock, &options)?;
//! let paused = stepper.run_until(5e-10, &mut observer)?;
//! assert!(matches!(paused, StepOutcome::Paused { .. }));
//! assert!(stepper.state().iter().all(|v| v.is_finite()));
//! stepper.run_until(f64::INFINITY, &mut observer)?; // resume to t_stop
//! let stats = stepper.finish(&mut observer);
//! assert_eq!(stats.resumed_runs, 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod batch;
pub mod dc;
pub mod deck;
pub mod engines;
pub mod error;
pub mod lanes;
pub mod observer;
pub mod options;
pub mod output;
pub mod recovery;
pub mod session;
pub mod stats;
pub mod transient;

#[cfg(feature = "fault-injection")]
pub mod fault;

pub use batch::{
    BatchJob, BatchObserver, BatchPlan, BatchProgress, BatchResult, BatchRunner, CancelReason,
    CancelToken, JobError, JobOutcome, JobOutput, JobSink, NullBatchObserver,
};
pub use dc::{dc_operating_point, DcSolution};
pub use deck::{analysis_options, tran_options};
#[allow(deprecated)]
pub use engines::er::run_exponential_rosenbrock;
#[allow(deprecated)]
pub use engines::implicit::run_implicit;
pub use engines::implicit::ImplicitScheme;
pub use engines::{resolve_probes, Engine, StepOutcome};
pub use error::{SimError, SimResult};
pub use lanes::{LaneBatchResult, LaneDcResult, LanePolicy, LaneRunner};
pub use observer::{
    CsvObserver, DecimatedWaveform, NullObserver, Observer, RecordingObserver, StreamingObserver,
};
pub use options::{DcOptions, TransientOptions};
pub use output::{Probe, TransientResult};
pub use recovery::{RecoveryEvent, RecoveryPolicy};
pub use session::{PlanCache, SessionStepper, Simulator};
pub use stats::RunStats;
#[allow(deprecated)]
pub use transient::run_transient;
pub use transient::Method;
