//! Deterministic, test-only fault injection (feature `fault-injection`).
//!
//! The recovery and isolation paths of this crate exist for failures that
//! healthy fixtures never produce: a numerically singular conductance
//! matrix, a device evaluation that overflows to NaN, a Krylov basis that
//! breaks down, an observer that panics. This module forces each of those
//! at a chosen point so tests can assert the *reaction* — error
//! attribution, batch isolation, exit codes — rather than hope for a
//! naturally occurring failure.
//!
//! # Model
//!
//! Faults are **armed** globally per job label ([`arm`]) and **installed**
//! thread-locally by the executor about to run that job (the
//! [`BatchRunner`](crate::BatchRunner) worker does this automatically,
//! matching on the job's label). The engine hooks consult only the
//! thread-local slot, so parallel jobs never see each other's faults.
//! Trigger points count *device evaluations* (DC Newton iterations and
//! engine linearizations alike) or *accepted steps* on the faulted thread,
//! making every injection deterministic and independent of scheduling.
//!
//! Where possible a fault corrupts real data instead of returning a
//! synthetic error: [`FaultSpec::singular_unknown`] zeroes a row/column
//! pair of the freshly stamped `G`, so the factorization discovers a
//! genuine zero pivot and the ordinary attribution chain
//! ([`SparseError::Singular`](exi_sparse::SparseError) →
//! [`SimError::SingularSystem`](crate::SimError)) names the unknown;
//! [`FaultSpec::nan_f`] writes a NaN into the stamped current vector, so
//! the engine's own non-finite boundary check raises
//! [`SimError::NonFinite`](crate::SimError).
//!
//! Never enable this feature in production builds.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Mutex;

/// What to break, and when (counters are 1-based and per installed thread).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// At device evaluation number `.0`, zero row and column `.1` of the
    /// stamped `G` — the next factorization hits a genuine zero pivot and
    /// reports that unknown as singular.
    pub singular_unknown: Option<(usize, usize)>,
    /// At device evaluation number `.0`, overwrite `f[.1]` with NaN — the
    /// engine's non-finite boundary check reports `SimError::NonFinite`.
    pub nan_f: Option<(usize, usize)>,
    /// At Krylov subspace build number `.0`, force a basis breakdown
    /// (`KrylovError::Breakdown`).
    pub krylov_breakdown: Option<usize>,
    /// Panic (deliberately) just before accepted step number `.0` is
    /// reported to the observer — exercises `catch_unwind` isolation.
    pub panic_at_step: Option<usize>,
}

impl FaultSpec {
    /// `true` when the spec injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultSpec::default()
    }
}

/// Faults armed per job label, waiting for a worker to install them.
static ARMED: Mutex<Option<HashMap<String, FaultSpec>>> = Mutex::new(None);

thread_local! {
    static ACTIVE: RefCell<Option<FaultState>> = const { RefCell::new(None) };
}

#[derive(Debug)]
struct FaultState {
    spec: FaultSpec,
    evals: usize,
    subspaces: usize,
    accepted: usize,
}

fn armed_lock() -> std::sync::MutexGuard<'static, Option<HashMap<String, FaultSpec>>> {
    // A panicking faulted thread is the normal case here; the map itself is
    // never left half-written, so recover the guard.
    ARMED
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Arms `spec` for every future thread that [`install`]s `label`.
pub fn arm(label: &str, spec: FaultSpec) {
    armed_lock()
        .get_or_insert_with(HashMap::new)
        .insert(label.to_string(), spec);
}

/// Disarms every label and uninstalls the calling thread's active fault.
///
/// The armed map is process-global, so calling this from an integration
/// test wipes faults armed by concurrently running tests. Prefer
/// [`FaultGuard`], which removes only its own labels.
pub fn clear_all() {
    *armed_lock() = None;
    uninstall();
}

/// Disarms `label` only, leaving every other armed fault in place.
pub fn disarm(label: &str) {
    if let Some(map) = armed_lock().as_mut() {
        map.remove(label);
    }
}

/// Scoped fault arming: arms labels on construction, disarms exactly those
/// labels (and uninstalls the calling thread's slot) on drop.
///
/// This fixes the [`clear_all`] footgun — the armed map is process-global,
/// so a test that cleared *everything* on exit would race with faults armed
/// by concurrently running tests. A guard only ever touches the labels it
/// armed itself:
///
/// ```
/// # #[cfg(feature = "fault-injection")] {
/// use exi_sim::fault::{FaultGuard, FaultSpec};
/// let _guard = FaultGuard::arm(
///     "job-3",
///     FaultSpec { panic_at_step: Some(2), ..FaultSpec::default() },
/// )
/// .also(
///     "job-5",
///     FaultSpec { singular_unknown: Some((1, 0)), ..FaultSpec::default() },
/// );
/// // faults armed for "job-3" / "job-5" until `_guard` drops
/// # }
/// ```
#[derive(Debug)]
pub struct FaultGuard {
    labels: Vec<String>,
}

impl FaultGuard {
    /// Arms `spec` for `label` and returns a guard that will disarm it.
    #[must_use = "faults disarm when the guard drops"]
    pub fn arm(label: &str, spec: FaultSpec) -> FaultGuard {
        arm(label, spec);
        FaultGuard {
            labels: vec![label.to_string()],
        }
    }

    /// Arms an additional label under the same guard.
    #[must_use = "faults disarm when the guard drops"]
    pub fn also(mut self, label: &str, spec: FaultSpec) -> FaultGuard {
        arm(label, spec);
        self.labels.push(label.to_string());
        self
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        for label in &self.labels {
            disarm(label);
        }
        uninstall();
    }
}

/// Installs the fault armed for `label` (if any) on the calling thread,
/// resetting its trigger counters. Returns `true` when a fault is now
/// active. Batch workers call this with the job label before running a job.
pub fn install(label: &str) -> bool {
    let spec = armed_lock()
        .as_ref()
        .and_then(|map| map.get(label).cloned());
    let installed = spec.is_some();
    ACTIVE.with(|slot| {
        *slot.borrow_mut() = spec.map(|spec| FaultState {
            spec,
            evals: 0,
            subspaces: 0,
            accepted: 0,
        });
    });
    installed
}

/// Removes the calling thread's active fault.
pub fn uninstall() {
    ACTIVE.with(|slot| *slot.borrow_mut() = None);
}

/// Engine hook: a device evaluation just produced `eval`. Applies
/// `singular_unknown` / `nan_f` when their trigger count is reached.
pub(crate) fn on_device_eval(eval: &mut exi_netlist::Evaluation) {
    ACTIVE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(state) = slot.as_mut() else { return };
        state.evals += 1;
        if let Some((at, unknown)) = state.spec.singular_unknown {
            if state.evals == at {
                zero_row_col(&mut eval.g, unknown);
            }
        }
        if let Some((at, index)) = state.spec.nan_f {
            if state.evals == at {
                if let Some(f) = eval.f.get_mut(index) {
                    *f = f64::NAN;
                }
            }
        }
    });
}

/// Engine hook: about to build Krylov subspace number `n` (thread-local
/// count). Returns `true` when the armed fault demands a breakdown.
pub(crate) fn krylov_breakdown_due() -> bool {
    ACTIVE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(state) = slot.as_mut() else {
            return false;
        };
        state.subspaces += 1;
        state.spec.krylov_breakdown == Some(state.subspaces)
    })
}

/// Engine hook: about to report accepted step `n`. Panics when the armed
/// fault says so — the message is stable for assertions.
pub(crate) fn maybe_panic_on_accept() {
    let due = ACTIVE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let state = slot.as_mut()?;
        state.accepted += 1;
        (state.spec.panic_at_step == Some(state.accepted)).then_some(state.accepted)
    });
    if let Some(step) = due {
        panic!("fault injection: observer panic at accepted step {step}");
    }
}

/// Zeroes row `r` and column `r` of `g` (values only — the pattern is
/// locked), leaving the matrix genuinely singular in unknown `r`.
fn zero_row_col(g: &mut exi_sparse::CsrMatrix, r: usize) {
    if r >= g.rows() {
        return;
    }
    let (start, end) = (g.indptr()[r], g.indptr()[r + 1]);
    let indices = g.indices().to_vec();
    let values = g.values_mut();
    for v in &mut values[start..end] {
        *v = 0.0;
    }
    for (k, &col) in indices.iter().enumerate() {
        if col == r {
            values[k] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The armed map is process-global and `clear_all` wipes it; serialize
    // the tests that touch it so they cannot disarm each other mid-flight.
    static MAP_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn install_is_label_keyed_and_thread_local() {
        let _serial = MAP_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        clear_all();
        arm(
            "job-a",
            FaultSpec {
                nan_f: Some((1, 0)),
                ..FaultSpec::default()
            },
        );
        assert!(!install("job-b"));
        assert!(install("job-a"));
        // The other thread sees the armed map but starts with its own slot.
        let handle = std::thread::spawn(|| install("job-a"));
        assert!(handle.join().unwrap());
        clear_all();
        assert!(!install("job-a"));
    }

    #[test]
    fn guard_disarms_only_its_own_labels() {
        let _serial = MAP_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        arm(
            "guard-outside",
            FaultSpec {
                krylov_breakdown: Some(1),
                ..FaultSpec::default()
            },
        );
        {
            let _guard = FaultGuard::arm(
                "guard-a",
                FaultSpec {
                    nan_f: Some((1, 0)),
                    ..FaultSpec::default()
                },
            )
            .also(
                "guard-b",
                FaultSpec {
                    panic_at_step: Some(1),
                    ..FaultSpec::default()
                },
            );
            assert!(install("guard-a"));
            uninstall();
            assert!(install("guard-b"));
            uninstall();
        }
        assert!(!install("guard-a"));
        assert!(!install("guard-b"));
        // A label armed outside the guard survives the guard's drop.
        assert!(install("guard-outside"));
        uninstall();
        disarm("guard-outside");
        assert!(!install("guard-outside"));
    }

    #[test]
    fn zeroing_a_row_col_pair_hits_both_triangles() {
        // 2x2 dense pattern.
        let mut g = exi_sparse::CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 4.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 4.0)],
        );
        zero_row_col(&mut g, 1);
        assert_eq!(g.values(), &[4.0, 0.0, 0.0, 0.0]);
    }
}
