//! The [`Simulator`] session object: circuit binding plus every reusable
//! piece of solver state.
//!
//! The paper's headline win is amortization — one symbolic LU analysis and a
//! reusable Krylov arena serve many exponential-Rosenbrock steps. A
//! `Simulator` extends that amortization **across runs**: the LU caches, the
//! Krylov workspace pool and the DC operating point survive from one
//! transient analysis to the next, so consecutive runs on the same topology
//! (parameter sweeps, method comparisons, resumed long runs) perform exactly
//! one symbolic analysis **per matrix pattern** — one for the conductance
//! matrix `G`, plus one for the denser `C/h + θ·G` if an implicit method is
//! used — no matter how many runs the session performs (see
//! [`Simulator::session_stats`]).
//!
//! ```
//! use exi_netlist::{Circuit, Waveform};
//! use exi_sim::{Method, Simulator, TransientOptions};
//!
//! # fn main() -> Result<(), exi_sim::SimError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! let gnd = ckt.node("0");
//! ckt.add_voltage_source("Vin", vin, gnd, Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]))?;
//! ckt.add_resistor("R1", vin, out, 1e3)?;
//! ckt.add_capacitor("C1", out, gnd, 1e-13)?;
//!
//! let mut sim = Simulator::new(&ckt);
//! let options = TransientOptions::new(1e-9, 1e-12);
//! let first = sim.transient(Method::ExponentialRosenbrock, &options, &["out"])?;
//! let second = sim.transient(Method::ExponentialRosenbrock, &options, &["out"])?;
//! assert_eq!(first.times, second.times);
//! // The whole session paid for one symbolic LU analysis.
//! assert_eq!(sim.session_stats().symbolic_analyses, 1);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use exi_krylov::MevpWorkspace;
use exi_netlist::{circuit_fingerprint, Circuit, EvalPlan, EvalWorkspace};
use exi_sparse::{LuWorkspace, OrderingMethod, SymbolicCache};

use crate::dc::{dc_operating_point_recovering, DcSolution};
use crate::engines::er::ErStepper;
use crate::engines::implicit::{ImplicitScheme, ImplicitStepper};
use crate::engines::{resolve_probes, Engine, LuSlot, RetainedFactors, StepOutcome};
use crate::error::SimResult;
use crate::observer::{Observer, RecordingObserver};
use crate::options::{DcOptions, TransientOptions};
use crate::output::TransientResult;
use crate::recovery::{RecoveryEvent, RecoveryPolicy};
use crate::stats::RunStats;
use crate::transient::Method;

/// Reusable solver state owned by a [`Simulator`] and borrowed by its
/// steppers.
///
/// * `g_lu` — cached factorization of the conductance matrix `G` (the DC
///   Jacobian pattern); seeded by the DC solve, reused by every ER/ER-C step
///   and every later run.
/// * `jac_lu` — cached factorization of the implicit-method Jacobian
///   `C/h + θ·G` (a different, denser pattern), reused across Newton
///   iterations, step sizes and runs.
/// * `retained` — recently displaced factors, keyed by pattern, revived
///   lock-free when a run alternates between patterns (e.g. DC homotopy
///   stages) instead of going back through the shared cache.
/// * `lu_ws` / `mevp_ws` — allocation pools for triangular solves and Krylov
///   subspace builds; pure scratch, shared by every engine.
/// * `dc` — the DC operating point, computed once per topology.
#[derive(Debug, Default)]
pub(crate) struct SessionCaches {
    pub(crate) g_lu: LuSlot,
    pub(crate) jac_lu: LuSlot,
    pub(crate) retained: RetainedFactors,
    pub(crate) lu_ws: LuWorkspace,
    pub(crate) mevp_ws: MevpWorkspace,
    pub(crate) dc: Option<DcSolution>,
    /// The compiled stamping plan: fixed CSR patterns, the linear baseline,
    /// the nonlinear scatter slots and the constant input matrix `B` —
    /// compiled once per topology (or fetched from a shared [`PlanCache`])
    /// and reused by the DC solve and every stepper.
    pub(crate) plan: Option<Arc<EvalPlan>>,
    /// Scratch buffers for plan evaluations, pre-sized by the plan.
    pub(crate) eval_ws: EvalWorkspace,
    /// Fill-reducing ordering the cached factors were built with; a run
    /// requesting a different one drops the caches first.
    pub(crate) ordering: Option<OrderingMethod>,
    /// Cross-session symbolic-analysis pool ([`exi_sparse::SymbolicCache`]).
    /// `None` for a standalone session; a [`crate::BatchRunner`] hands every
    /// worker session a clone of one shared cache so same-pattern jobs on
    /// different threads perform one symbolic analysis total. Survives
    /// [`Simulator::reset_caches`] — it is a handle to fleet-wide state, not
    /// session state.
    pub(crate) shared: Option<Arc<SymbolicCache>>,
    /// Cross-session evaluation-plan pool; fleet-wide state like `shared`,
    /// surviving [`Simulator::reset_caches`].
    pub(crate) shared_plans: Option<Arc<PlanCache>>,
}

/// A thread-shared cache of compiled [`EvalPlan`]s keyed by the circuit's
/// structural+parametric fingerprint
/// ([`exi_netlist::circuit_fingerprint`]) — the stamping-plan analogue of
/// [`exi_sparse::SymbolicCache`].
///
/// A [`crate::BatchRunner`] hands a clone to every worker session, so
/// same-structure jobs (e.g. a corner sweep varying only source waveforms)
/// compile exactly one plan total; the merged statistics expose the effect
/// as `plan_compilations == distinct structures` plus one
/// [`RunStats::shared_plan_hits`] per pooled session.
///
/// Unbounded by default (the one-shot batch case). A resident process — the
/// `exi-serve` daemon keeping its plan pool warm across arbitrary client
/// traffic — should bound it with [`PlanCache::with_capacity`]: the
/// least-recently-used plan is evicted to admit a new structure, and
/// [`PlanCache::stats`] snapshots hit/miss/eviction counters in the same
/// [`exi_sparse::CacheStats`] form the symbolic cache reports.
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: Mutex<PlanCacheState>,
    capacity: Option<usize>,
}

/// One cached plan plus its LRU stamp.
#[derive(Debug)]
struct PlanEntry {
    plan: Arc<EvalPlan>,
    last_used: u64,
}

/// Mutex-guarded interior of a [`PlanCache`]: entries, the LRU clock and the
/// residency counters (under one lock so snapshots are consistent).
#[derive(Debug, Default)]
struct PlanCacheState {
    entries: HashMap<Vec<u8>, PlanEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Creates an empty cache holding at most `capacity` compiled plans
    /// (minimum 1), evicting the least-recently-used plan to admit a new
    /// structure.
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            capacity: Some(capacity.max(1)),
            ..PlanCache::default()
        }
    }

    /// The configured capacity; `None` for an unbounded cache.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of distinct circuit structures cached.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Returns `true` when no plan has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the residency counters (entries, capacity, hits, misses,
    /// evictions), internally consistent under the cache lock.
    pub fn stats(&self) -> exi_sparse::CacheStats {
        let state = self.lock();
        exi_sparse::CacheStats {
            entries: state.entries.len(),
            capacity: self.capacity,
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
        }
    }

    /// A worker that panicked mid-compile never published a partial plan
    /// (the map is only written after a successful compile), so the cache
    /// stays usable: recover the guard instead of propagating the poison.
    fn lock(&self) -> std::sync::MutexGuard<'_, PlanCacheState> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Returns the cached plan for `circuit`'s structure, compiling and
    /// publishing it on a miss. The second component is `true` when this
    /// call performed the compilation. The cache lock is held across the
    /// compile, so concurrent same-structure requests block instead of
    /// duplicating the work.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalPlan::compile`] errors (e.g. an empty circuit).
    pub fn get_or_compile(&self, circuit: &Circuit) -> SimResult<(Arc<EvalPlan>, bool)> {
        self.get_or_compile_timed(circuit)
            .map(|(plan, compiled, _)| (plan, compiled))
    }

    /// As [`PlanCache::get_or_compile`], additionally reporting how long this
    /// call waited to acquire the cache lock. A warm lookup on an
    /// uncontended cache reports (close to) zero; the batch runner charges
    /// the wait to [`RunStats::cache_wait`] so `active_solver_s` stays a
    /// pure compute figure.
    ///
    /// # Errors
    ///
    /// Propagates [`EvalPlan::compile`] errors (e.g. an empty circuit).
    pub fn get_or_compile_timed(
        &self,
        circuit: &Circuit,
    ) -> SimResult<(Arc<EvalPlan>, bool, Duration)> {
        let key = circuit_fingerprint(circuit);
        let acquire = Instant::now();
        let mut state = self.lock();
        let waited = acquire.elapsed();
        state.tick += 1;
        let tick = state.tick;
        if let Some(entry) = state.entries.get_mut(&key) {
            entry.last_used = tick;
            state.hits += 1;
            return Ok((Arc::clone(&state.entries[&key].plan), false, waited));
        }
        state.misses += 1;
        let plan = Arc::new(EvalPlan::compile(circuit)?);
        state.entries.insert(
            key.clone(),
            PlanEntry {
                plan: Arc::clone(&plan),
                last_used: tick,
            },
        );
        if let Some(capacity) = self.capacity {
            while state.entries.len() > capacity {
                let victim = state
                    .entries
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, entry)| entry.last_used)
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(k) => {
                        state.entries.remove(&k);
                        state.evictions += 1;
                    }
                    None => break,
                }
            }
        }
        Ok((plan, true, waited))
    }
}

/// A simulation session bound to one circuit.
///
/// Owns every piece of reusable solver state (LU caches with their symbolic
/// analyses, Krylov workspace arena, DC solution) so that consecutive
/// analyses on the same topology amortize all symbolic work. The circuit is
/// held by shared reference — the borrow checker guarantees the topology
/// cannot change under a live session, which is what makes cross-run cache
/// reuse sound.
///
/// Entry points, from highest to lowest level:
///
/// * [`Simulator::transient`] — one full run, returns a [`TransientResult`]
///   (the classic buffered waveform).
/// * [`Simulator::sweep`] — several runs back to back, sharing all caches.
/// * [`Simulator::transient_observed`] — one full run streaming to a caller
///   [`Observer`] (fixed-memory recording, live dashboards, nothing at all).
/// * [`Simulator::stepper`] — an incremental [`Engine`] stepper: advance step
///   by step, pause before `t_stop`, inspect state, resume bit-identically —
///   the substrate for checkpointed long runs and interleaved co-simulation
///   of several circuits.
#[derive(Debug)]
pub struct Simulator<'c> {
    circuit: &'c Circuit,
    caches: SessionCaches,
    session_stats: RunStats,
    completed_runs: usize,
    recovery: RecoveryPolicy,
}

impl<'c> Simulator<'c> {
    /// Creates a session for `circuit` with cold caches.
    pub fn new(circuit: &'c Circuit) -> Self {
        Simulator {
            circuit,
            caches: SessionCaches::default(),
            session_stats: RunStats::new(),
            completed_runs: 0,
            recovery: RecoveryPolicy::off(),
        }
    }

    /// Installs a [`RecoveryPolicy`]: DC homotopy on Newton failure and a
    /// transient retry ladder on step-control failure. With the (default)
    /// [`RecoveryPolicy::off`] every run behaves exactly as before —
    /// bit-identical waveforms, zero recovery counters. With a policy
    /// enabled, healthy runs are still untouched; only runs that would
    /// otherwise error escalate (see [`crate::recovery`]).
    ///
    /// Note: while recovering from a failed transient attempt, observer
    /// events of retry attempts are buffered and replayed only from the
    /// attempt that succeeds, so a failed attempt's partial waveform never
    /// contaminates the stream.
    #[must_use]
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Replaces the session's [`RecoveryPolicy`] in place.
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    /// The session's current [`RecoveryPolicy`].
    pub fn recovery_policy(&self) -> &RecoveryPolicy {
        &self.recovery
    }

    /// Creates a session for `circuit` that pools its symbolic LU analyses
    /// with every other session holding a clone of `shared`.
    ///
    /// The first session (on any thread) to factorize a given matrix pattern
    /// publishes the analysis; all others derive their numeric factors from
    /// it — counted as [`RunStats::shared_symbolic_hits`] instead of
    /// [`RunStats::symbolic_analyses`]. This is the per-session entry point
    /// behind [`crate::BatchRunner`]; use it directly to pool hand-rolled
    /// concurrent sessions.
    pub fn with_shared_symbolic(circuit: &'c Circuit, shared: Arc<SymbolicCache>) -> Self {
        let mut sim = Simulator::new(circuit);
        sim.caches.shared = Some(shared);
        sim
    }

    /// Pools this session's compiled evaluation plan with every other
    /// session holding a clone of `cache` (see [`PlanCache`]); the
    /// [`crate::BatchRunner`] wires this up for its workers.
    #[must_use]
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.caches.shared_plans = Some(cache);
        self
    }

    /// The cross-session symbolic cache this session pools with, if any.
    pub fn shared_symbolic(&self) -> Option<&Arc<SymbolicCache>> {
        self.caches.shared.as_ref()
    }

    /// The cross-session evaluation-plan cache this session pools with, if
    /// any.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.caches.shared_plans.as_ref()
    }

    /// The circuit this session is bound to.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Cumulative statistics over every run (and the shared DC solve) this
    /// session performed. On an unchanged topology
    /// `session_stats().symbolic_analyses` stays at the value the first run
    /// reached — later runs only add numeric-only refactorizations.
    pub fn session_stats(&self) -> &RunStats {
        &self.session_stats
    }

    /// Number of transient runs completed by this session.
    pub fn completed_runs(&self) -> usize {
        self.completed_runs
    }

    /// Drops every cached factor, workspace and the DC solution. The next run
    /// pays for a fresh symbolic analysis — call this after mutating the
    /// circuit between sessions if node/device structure changed. (A shared
    /// symbolic cache attached via [`Simulator::with_shared_symbolic`] is a
    /// fleet-wide handle and survives; it is keyed by pattern, so a changed
    /// topology simply maps to a new entry.)
    pub fn reset_caches(&mut self) {
        self.caches = SessionCaches {
            shared: self.caches.shared.take(),
            shared_plans: self.caches.shared_plans.take(),
            ..SessionCaches::default()
        };
    }

    /// The DC operating point of the circuit, computed on first use and
    /// cached for the lifetime of the session (default [`DcOptions`]).
    ///
    /// # Errors
    ///
    /// Propagates DC Newton convergence and kernel errors.
    pub fn dc(&mut self) -> SimResult<DcSolution> {
        self.dc_with(&DcOptions::default())
    }

    /// As [`Simulator::dc`] with explicit options. The options only matter
    /// for the first call of the session (a differing `ordering` drops the
    /// caches, as on every entry point); later calls return the cached
    /// solution.
    ///
    /// # Errors
    ///
    /// Propagates DC Newton convergence and kernel errors.
    pub fn dc_with(&mut self, options: &DcOptions) -> SimResult<DcSolution> {
        self.ensure_ordering(options.ordering);
        // No transient run will ever absorb this solve's counters, so they
        // enter the session totals right here.
        let stats = match self.ensure_dc(options) {
            Ok(stats) => stats,
            Err(e) => return Err(e.attributed(self.circuit)),
        };
        self.session_stats.absorb(&stats);
        Ok(self
            .caches
            .dc
            .clone()
            .expect("ensure_dc populated the cache"))
    }

    /// Drops the caches whenever a run requests a different fill-reducing
    /// ordering than the one the cached factors were built with — a cached
    /// symbolic analysis silently carries its ordering into refactorizations,
    /// which would make an ordering sweep measure nothing.
    fn ensure_ordering(&mut self, ordering: OrderingMethod) {
        if self.caches.ordering != Some(ordering) {
            if self.caches.ordering.is_some() {
                self.reset_caches();
            }
            self.caches.ordering = Some(ordering);
        }
    }

    /// Compiles (or fetches from the shared [`PlanCache`]) the session's
    /// evaluation plan, charging the compile — and any wait on the shared
    /// cache's lock — to `stats`.
    fn ensure_plan(&mut self, stats: &mut RunStats) -> SimResult<()> {
        if self.caches.plan.is_none() {
            let plan = match &self.caches.shared_plans {
                Some(pool) => {
                    let (plan, compiled, waited) = pool.get_or_compile_timed(self.circuit)?;
                    stats.cache_wait += waited;
                    if compiled {
                        stats.plan_compilations += 1;
                    } else {
                        stats.shared_plan_hits += 1;
                    }
                    plan
                }
                None => {
                    stats.plan_compilations += 1;
                    Arc::new(EvalPlan::compile(self.circuit)?)
                }
            };
            self.caches.eval_ws = plan.new_workspace();
            self.caches.plan = Some(plan);
        }
        Ok(())
    }

    /// Computes (or reuses) the DC operating point, returning the statistics
    /// of a fresh solve — zeroed when the cached solution was reused. The
    /// caller decides where to charge them: [`Simulator::stepper`] folds them
    /// into the triggering run's statistics (absorbed into the session when
    /// that run is), [`Simulator::dc_with`] absorbs them directly.
    fn ensure_dc(&mut self, options: &DcOptions) -> SimResult<RunStats> {
        let mut stats = RunStats::new();
        if self.caches.dc.is_some() {
            self.ensure_plan(&mut stats)?;
            return Ok(stats);
        }
        // The timer starts before plan acquisition so that any wait on the
        // shared plan cache's lock lands inside `runtime` — `cache_wait` is
        // documented as a subset of it.
        let started = Instant::now();
        self.ensure_plan(&mut stats)?;
        let caches = &mut self.caches;
        let plan = caches
            .plan
            .as_ref()
            .expect("ensure_plan populated the cache");
        let dc = dc_operating_point_recovering(
            self.circuit,
            plan,
            options,
            &self.recovery,
            &mut stats,
            &mut caches.g_lu,
            &mut caches.retained,
            caches.shared.as_deref(),
            &mut caches.lu_ws,
            &mut caches.eval_ws,
        )?;
        stats.runtime = started.elapsed();
        self.caches.dc = Some(dc);
        Ok(stats)
    }

    /// Creates an incremental stepper for `method`, positioned (lazily) at
    /// the DC operating point.
    ///
    /// The stepper auto-initializes on the first [`Engine::advance`] /
    /// [`Engine::run_until`]; call [`SessionStepper::start`] (or
    /// [`Engine::init`] with a custom `(t0, x0)` checkpoint) to control when
    /// the initial [`Observer::on_dc`] event fires. While the stepper lives
    /// it exclusively borrows the session's caches; drop it before starting
    /// the next run.
    ///
    /// # Errors
    ///
    /// Option validation, DC solve and input-matrix assembly errors.
    pub fn stepper(
        &mut self,
        method: Method,
        options: &TransientOptions,
    ) -> SimResult<SessionStepper<'_>> {
        options.validate()?;
        self.ensure_ordering(options.ordering);
        // A fresh DC solve is charged to this run's statistics (dc_stats
        // seeds the stepper below) and reaches the session totals when the
        // run is absorbed; a cached solution contributes nothing.
        let dc_stats = self.ensure_dc(&DcOptions {
            ordering: options.ordering,
            ..DcOptions::default()
        })?;
        let x0 = self
            .caches
            .dc
            .as_ref()
            .expect("ensure_dc populated the cache")
            .state
            .clone();
        let inner = match method {
            Method::BackwardEuler => InnerStepper::Implicit(Box::new(ImplicitStepper::new(
                self.circuit,
                &mut self.caches,
                ImplicitScheme::BackwardEuler,
                options.clone(),
                dc_stats,
            )?)),
            Method::Trapezoidal => InnerStepper::Implicit(Box::new(ImplicitStepper::new(
                self.circuit,
                &mut self.caches,
                ImplicitScheme::Trapezoidal,
                options.clone(),
                dc_stats,
            )?)),
            Method::ExponentialRosenbrock => InnerStepper::Er(Box::new(ErStepper::new(
                self.circuit,
                &mut self.caches,
                false,
                options.clone(),
                dc_stats,
            )?)),
            Method::ExponentialRosenbrockCorrected => InnerStepper::Er(Box::new(ErStepper::new(
                self.circuit,
                &mut self.caches,
                true,
                options.clone(),
                dc_stats,
            )?)),
        };
        Ok(SessionStepper {
            inner,
            x0,
            initialized: false,
        })
    }

    /// Runs one full transient analysis, recording every accepted point, and
    /// returns the buffered [`TransientResult`] — the session equivalent of
    /// the deprecated [`crate::run_transient`] free function (bit-identical
    /// waveforms).
    ///
    /// # Errors
    ///
    /// Option-validation, probe-resolution, DC, step-control and kernel
    /// errors (see [`crate::SimError`]).
    pub fn transient(
        &mut self,
        method: Method,
        options: &TransientOptions,
        probe_names: &[&str],
    ) -> SimResult<TransientResult> {
        options.validate()?;
        let probes = resolve_probes(self.circuit, probe_names)?;
        let mut observer = RecordingObserver::new(probes, options.record_full_states);
        self.transient_observed(method, options, &mut observer)?;
        Ok(observer.into_result())
    }

    /// Runs one full transient analysis streaming events to `observer`
    /// instead of buffering a result, and returns the run's statistics.
    ///
    /// Pair with [`crate::StreamingObserver`] for fixed-memory waveforms or
    /// [`crate::NullObserver`] to measure pure solver throughput.
    ///
    /// # Errors
    ///
    /// As [`Simulator::transient`].
    pub fn transient_observed(
        &mut self,
        method: Method,
        options: &TransientOptions,
        observer: &mut dyn Observer,
    ) -> SimResult<RunStats> {
        if self.recovery.is_off() {
            return self
                .transient_attempt(method, options, observer)
                .map_err(|e| e.attributed(self.circuit));
        }

        // With recovery enabled, every attempt streams into a private buffer
        // and only the attempt that succeeds is replayed to the caller's
        // observer — a failed attempt's partial waveform never reaches it.
        // Recovery events themselves are delivered live.
        let policy = self.recovery.clone();
        let mut buffer = BufferedRun::new();
        let first = self.transient_attempt(method, options, &mut buffer);
        let mut last_err = match first {
            Ok(stats) => {
                buffer.replay(observer);
                return Ok(stats);
            }
            Err(e) => e,
        };
        if !RecoveryPolicy::transient_retryable(&last_err) {
            return Err(last_err.attributed(self.circuit));
        }

        // Rung 1: cut the step floor back past the nominal h_min.
        let mut cutback = options.clone();
        cutback.h_min = options.h_min * policy.step_cutback;
        cutback.h_init = (options.h_init * policy.step_cutback).max(cutback.h_min);
        // Rung 2: on top of the cutback, enlarge the Newton budget.
        let mut tightened = cutback.clone();
        tightened.newton_max_iterations =
            options.newton_max_iterations * policy.newton_budget_factor.max(1);

        let mut ladder: Vec<(Method, TransientOptions, RecoveryEvent)> = vec![
            (
                method,
                cutback.clone(),
                RecoveryEvent::StepCutback {
                    time: transient_error_time(&last_err),
                    h_min: cutback.h_min,
                },
            ),
            (
                method,
                tightened.clone(),
                RecoveryEvent::NewtonTightened {
                    max_iterations: tightened.newton_max_iterations,
                },
            ),
        ];
        if policy.method_fallback {
            if let Some(fallback) = RecoveryPolicy::fallback_method(method) {
                ladder.push((
                    fallback,
                    tightened,
                    RecoveryEvent::MethodFallback {
                        from: method,
                        to: fallback,
                    },
                ));
            }
        }

        let mut extra = RunStats::new();
        for (rung_method, rung_options, event) in ladder {
            extra.recovery_attempts += 1;
            if matches!(event, RecoveryEvent::MethodFallback { .. }) {
                extra.method_fallbacks += 1;
            }
            observer.on_recovery(&event);
            extra.observer_callbacks += 1;
            let mut buffer = BufferedRun::new();
            match self.transient_attempt(rung_method, &rung_options, &mut buffer) {
                Ok(mut stats) => {
                    buffer.replay(observer);
                    stats.absorb(&extra);
                    self.absorb_partial(&extra);
                    return Ok(stats);
                }
                Err(e) => last_err = e,
            }
        }
        self.absorb_partial(&extra);
        Err(last_err.attributed(self.circuit))
    }

    /// One bare transient attempt: build the stepper, drive it to the end,
    /// absorb its statistics. [`Simulator::transient_observed`] wraps this in
    /// the recovery ladder; with recovery off it is the whole story.
    fn transient_attempt(
        &mut self,
        method: Method,
        options: &TransientOptions,
        observer: &mut dyn Observer,
    ) -> SimResult<RunStats> {
        let outcome = {
            let mut stepper = self.stepper(method, options)?;
            match stepper
                .start(observer)
                .and_then(|()| stepper.run_to_end(observer))
            {
                Ok(stats) => Ok(stats),
                // The failed run still did real work (and left its cache
                // mutations in the session): finalize and keep its counters
                // so the session totals stay truthful.
                Err(e) => Err((e, stepper.finish(observer))),
            }
        };
        match outcome {
            Ok(stats) => {
                self.absorb_run(&stats);
                Ok(stats)
            }
            Err((e, partial)) => {
                self.absorb_partial(&partial);
                Err(e)
            }
        }
    }

    /// Runs several analyses back to back on the shared caches — a parameter
    /// or method sweep. Only the first run of the session pays for symbolic
    /// analysis and DC.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first failing run.
    pub fn sweep(
        &mut self,
        runs: &[(Method, TransientOptions)],
        probe_names: &[&str],
    ) -> SimResult<Vec<TransientResult>> {
        runs.iter()
            .map(|(method, options)| self.transient(*method, options, probe_names))
            .collect()
    }

    /// Folds a finished run's statistics into the session totals.
    ///
    /// Steppers obtained via [`Simulator::stepper`] borrow the session
    /// exclusively, so their statistics must be absorbed once the stepper is
    /// dropped; [`Simulator::transient_observed`] does this automatically.
    /// A run's statistics already include the DC share it triggered (and only
    /// that run's do), so absorbing every run once keeps the totals exact.
    pub fn absorb_run(&mut self, run: &RunStats) {
        self.absorb_partial(run);
        self.completed_runs += 1;
    }

    /// As [`Simulator::absorb_run`] for a run that errored out mid-way: its
    /// counters still enter the session totals (the work happened and its
    /// cache mutations persist), but it does not count as a completed run.
    pub fn absorb_partial(&mut self, run: &RunStats) {
        self.session_stats.absorb(run);
    }
}

/// The time an escalation-worthy transient error occurred at, for
/// [`RecoveryEvent::StepCutback`] reporting.
fn transient_error_time(err: &crate::SimError) -> f64 {
    match err {
        crate::SimError::NewtonDidNotConverge { time, .. }
        | crate::SimError::StepSizeUnderflow { time, .. }
        | crate::SimError::NonFinite { time, .. } => *time,
        _ => 0.0,
    }
}

/// Buffers one attempt's observer events so the recovery ladder can replay
/// only the successful attempt into the caller's observer.
#[derive(Debug, Default)]
struct BufferedRun {
    events: Vec<BufferedEvent>,
}

#[derive(Debug)]
enum BufferedEvent {
    Dc(f64, Vec<f64>),
    Accepted(f64, Vec<f64>),
    Rejected(f64, f64),
    // Boxed: `RunStats` dwarfs the per-step variants, and `Finish` occurs
    // once per attempt.
    Finish(Vec<f64>, Box<RunStats>),
}

impl BufferedRun {
    fn new() -> Self {
        BufferedRun::default()
    }

    fn replay(self, observer: &mut dyn Observer) {
        for event in self.events {
            match event {
                BufferedEvent::Dc(t0, x0) => observer.on_dc(t0, &x0),
                BufferedEvent::Accepted(t, x) => observer.on_step_accepted(t, &x),
                BufferedEvent::Rejected(t, h) => observer.on_step_rejected(t, h),
                BufferedEvent::Finish(x, stats) => observer.on_finish(&x, &stats),
            }
        }
    }
}

impl Observer for BufferedRun {
    fn on_dc(&mut self, t0: f64, x0: &[f64]) {
        self.events.push(BufferedEvent::Dc(t0, x0.to_vec()));
    }

    fn on_step_accepted(&mut self, t: f64, x: &[f64]) {
        self.events.push(BufferedEvent::Accepted(t, x.to_vec()));
    }

    fn on_step_rejected(&mut self, t: f64, h: f64) {
        self.events.push(BufferedEvent::Rejected(t, h));
    }

    fn on_finish(&mut self, final_state: &[f64], stats: &RunStats) {
        self.events.push(BufferedEvent::Finish(
            final_state.to_vec(),
            Box::new(stats.clone()),
        ));
    }
}

/// An engine-agnostic incremental stepper bound to a [`Simulator`] session.
///
/// Wraps the concrete per-method steppers behind the [`Engine`] trait and
/// adds lazy initialization at the session's DC operating point. See
/// [`Engine`] for the driving interface and the pause/resume contract.
#[derive(Debug)]
pub struct SessionStepper<'a> {
    inner: InnerStepper<'a>,
    x0: Vec<f64>,
    initialized: bool,
}

#[derive(Debug)]
enum InnerStepper<'a> {
    Er(Box<ErStepper<'a>>),
    Implicit(Box<ImplicitStepper<'a>>),
}

impl SessionStepper<'_> {
    /// Initializes the stepper at the session's DC operating point (time 0),
    /// emitting [`Observer::on_dc`]. Called automatically by the first
    /// [`Engine::advance`] if omitted.
    ///
    /// # Errors
    ///
    /// Propagates [`Engine::init`] errors.
    pub fn start(&mut self, observer: &mut dyn Observer) -> SimResult<()> {
        let x0 = std::mem::take(&mut self.x0);
        let r = match &mut self.inner {
            InnerStepper::Er(s) => s.init(0.0, &x0, observer),
            InnerStepper::Implicit(s) => s.init(0.0, &x0, observer),
        };
        self.x0 = x0;
        self.initialized = r.is_ok();
        r
    }
}

impl Engine for SessionStepper<'_> {
    fn init(&mut self, t0: f64, x0: &[f64], observer: &mut dyn Observer) -> SimResult<()> {
        let r = match &mut self.inner {
            InnerStepper::Er(s) => s.init(t0, x0, observer),
            InnerStepper::Implicit(s) => s.init(t0, x0, observer),
        };
        // Only a successful init arms the stepper; a failed one leaves the
        // DC auto-start available for the next advance.
        self.initialized = r.is_ok();
        r
    }

    fn advance(&mut self, observer: &mut dyn Observer) -> SimResult<StepOutcome> {
        if !self.initialized {
            self.start(observer)?;
        }
        match &mut self.inner {
            InnerStepper::Er(s) => s.advance(observer),
            InnerStepper::Implicit(s) => s.advance(observer),
        }
    }

    fn state(&self) -> &[f64] {
        if !self.initialized {
            return &self.x0;
        }
        match &self.inner {
            InnerStepper::Er(s) => s.state(),
            InnerStepper::Implicit(s) => s.state(),
        }
    }

    fn time(&self) -> f64 {
        match &self.inner {
            InnerStepper::Er(s) => s.time(),
            InnerStepper::Implicit(s) => s.time(),
        }
    }

    fn stats(&self) -> &RunStats {
        match &self.inner {
            InnerStepper::Er(s) => s.stats(),
            InnerStepper::Implicit(s) => s.stats(),
        }
    }

    fn stats_mut(&mut self) -> &mut RunStats {
        match &mut self.inner {
            InnerStepper::Er(s) => s.stats_mut(),
            InnerStepper::Implicit(s) => s.stats_mut(),
        }
    }

    fn is_finished(&self) -> bool {
        // A not-yet-started stepper still has its whole run ahead (it
        // auto-initializes on the first advance).
        if !self.initialized {
            return false;
        }
        match &self.inner {
            InnerStepper::Er(s) => s.is_finished(),
            InnerStepper::Implicit(s) => s.is_finished(),
        }
    }

    fn finish(&mut self, observer: &mut dyn Observer) -> RunStats {
        match &mut self.inner {
            InnerStepper::Er(s) => s.finish(observer),
            InnerStepper::Implicit(s) => s.finish(observer),
        }
    }
}
