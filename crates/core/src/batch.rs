//! Parallel batch execution of simulation jobs with fleet-wide symbolic
//! reuse.
//!
//! The paper's headline win amortizes one symbolic LU analysis across an
//! entire exponential-integrator run; the [`Simulator`] session extends that
//! across consecutive runs on one topology. This module scales the same
//! amortization across a **fleet of concurrent jobs**: a [`BatchPlan`]
//! describes N independent analyses (parameter sweeps, Monte-Carlo corners,
//! per-user requests), and a [`BatchRunner`] executes them over a pool of
//! `std::thread` workers whose sessions all pool their symbolic analyses in
//! one [`exi_sparse::SymbolicCache`]. Same-pattern jobs — no matter which
//! thread they land on — perform **one** symbolic analysis total; the merged
//! [`RunStats`] expose the effect through
//! [`RunStats::shared_symbolic_hits`], [`RunStats::batch_jobs`] and
//! [`RunStats::worker_threads`].
//!
//! # Determinism
//!
//! Batch output is deterministic and independent of the worker-thread count.
//! Two mechanisms guarantee this:
//!
//! 1. **Deterministic publication.** Jobs are grouped up front by the
//!    fingerprints of every matrix pattern they will factorize — the
//!    conductance pattern `G` for all jobs, plus the implicit-Jacobian
//!    pattern (structural union of `C` and `G`) for BE/TR jobs — using the
//!    same [`exi_sparse::pattern_fingerprint`] the shared cache keys its
//!    slots by. Every distinct `G` pattern is then **pre-published on the
//!    main thread**: the runner factorizes the already-evaluated `G(x=0)`
//!    matrix — bit-for-bit the matrix every job's first DC Newton
//!    iteration factorizes — straight into the shared cache before any
//!    worker starts, so no job ever serializes behind a `G` pilot.
//!    Implicit-Jacobian patterns (whose values depend on the per-job step
//!    size) still run barrier-separated pilot waves: for each such pattern
//!    that lacks a published analysis, the lowest-index not-yet-run job of
//!    its group runs as the pattern's pilot (a failed pilot promotes the
//!    group's next candidate into a fresh wave), and only once every
//!    pattern is published — or its group exhausted — does the bulk wave
//!    run everything else. Which job pilots each pattern is therefore a
//!    function of the plan, never of thread scheduling — and on a warm
//!    cache (a re-run batch, or analyses published by earlier batches
//!    sharing the cache) the satisfied-check consults the cache itself, so
//!    no pilot wave runs at all and no job ever blocks on an in-flight
//!    slot.
//! 2. **Bit-exact numeric derivation.** A worker that hits the shared cache
//!    derives its factor with [`exi_sparse::SparseLu::from_symbolic`], which
//!    replays the pilot's elimination in the recorded operation order. For
//!    jobs whose first-factorization values equal the pilot's (the
//!    same-topology sweep case: every run's first factorization is the DC
//!    Newton start at `x = 0`), the derived factor — and hence the entire
//!    run — is bit-for-bit identical to an isolated sequential
//!    [`Simulator`] run.
//!
//! Jobs that share a pattern but not matrix *values* (e.g. Monte-Carlo
//! resistance corners) still run deterministically at any thread count, but
//! their frozen-pivot numerics may differ from an isolated run's by
//! round-off; `tests/proptest_batch.rs` pins down the exact contract.
//!
//! # Value lanes
//!
//! Under an active [`crate::LanePolicy`] ([`BatchRunner::lane_policy`]),
//! compatible jobs — same circuit fingerprint, method, options and probes,
//! recording sink, no deadline or cancel token — coalesce into
//! [`crate::LaneRunner`] lockstep batches scheduled as single units: one
//! evaluation plan, one symbolic analysis and one batched refactorization
//! pass per Jacobian visit serve all K members, and each member's waveform
//! stays **bit-identical** to its isolated scalar run (lanes that leave
//! lockstep are transparently re-run on the scalar path, counted by
//! [`RunStats::lane_detaches`]). Pattern-claim bookkeeping treats a lane
//! group as *one* claimant: only the group leader enters the pilot-election
//! queues, so a warmed cache sees a single probe per group and
//! [`RunStats::shared_symbolic_wait_events`] stays zero at any worker
//! count.
//!
//! # Example
//!
//! ```
//! use exi_netlist::generators::{rc_ladder, RcLadderSpec};
//! use exi_sim::{BatchJob, BatchPlan, BatchRunner, Method, TransientOptions};
//!
//! # fn main() -> Result<(), exi_sim::SimError> {
//! let mut plan = BatchPlan::new();
//! for budget in [1e-3, 5e-4, 1e-4] {
//!     let circuit = rc_ladder(&RcLadderSpec::default())?;
//!     let options = TransientOptions {
//!         error_budget: budget,
//!         ..TransientOptions::new(1e-9, 1e-12)
//!     };
//!     plan.push(
//!         BatchJob::new(format!("budget={budget:.0e}"), circuit, Method::default(), options)
//!             .probe("n10"),
//!     );
//! }
//! let result = BatchRunner::new().worker_threads(2).run(&plan);
//! assert!(result.all_ok());
//! // Three same-topology jobs, one symbolic analysis for the whole fleet —
//! // performed up front by the runner, so every job (the first included)
//! // derives from the shared analysis.
//! assert_eq!(result.stats.symbolic_analyses, 1);
//! assert_eq!(result.stats.shared_symbolic_hits, 3);
//! assert_eq!(result.stats.batch_jobs, 3);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use exi_netlist::{circuit_fingerprint, Circuit};
use exi_sparse::{
    pattern_fingerprint, CsrMatrix, FactorSource, LuOptions, LuWorkspace, OrderingMethod,
    SymbolicCache,
};

use crate::engines::{resolve_probes, Engine, StepOutcome};
use crate::error::{SimError, SimResult};
use crate::lanes::{LanePolicy, LaneRunner};
use crate::observer::{DecimatedWaveform, RecordingObserver, StreamingObserver};
use crate::options::TransientOptions;
use crate::output::TransientResult;
use crate::recovery::RecoveryPolicy;
use crate::session::{PlanCache, Simulator};
use crate::stats::RunStats;
use crate::transient::Method;

/// How a batch job captures its waveform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSink {
    /// Record every accepted point into a [`TransientResult`] (the
    /// [`crate::RecordingObserver`] path; memory grows with the step count).
    Record,
    /// Stream through a [`StreamingObserver`] retaining at most `capacity`
    /// points with stride-doubling decimation — fixed memory for arbitrarily
    /// long sweep members.
    Stream {
        /// Maximum number of retained points (minimum 2).
        capacity: usize,
    },
}

/// A cooperative cancellation handle shared between a job's submitter and
/// the worker running it.
///
/// Cancellation is checked **between accepted steps** (on the
/// [`Engine`] pause/resume contract), never mid-step, so a cancelled job's
/// partial waveform is a bit-exact prefix of what the uncancelled run would
/// have produced.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a not-yet-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; the owning job stops at its next step boundary.
    pub fn cancel(&self) {
        self.0.store(true, AtomicOrdering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(AtomicOrdering::Acquire)
    }
}

/// Why a job was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// Its [`CancelToken`] was triggered.
    Token,
    /// Its per-job deadline ([`BatchJob::deadline`]) expired.
    Deadline,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Token => write!(f, "cancellation token"),
            CancelReason::Deadline => write!(f, "deadline expired"),
        }
    }
}

/// One entry of a [`BatchPlan`]: a circuit variant plus everything needed to
/// run it.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Human-readable job label, carried into [`JobOutcome`] and failure
    /// reports.
    pub label: String,
    /// The circuit to simulate (typically an [`exi_netlist::generators`]
    /// variant; each job owns its circuit so workers never share mutable
    /// state).
    pub circuit: Circuit,
    /// Integration method for this job.
    pub method: Method,
    /// Per-job transient options.
    pub options: TransientOptions,
    /// Node names to record.
    pub probes: Vec<String>,
    /// Waveform capture strategy.
    pub sink: JobSink,
    /// Wall-clock budget, measured from the moment a worker picks the job
    /// up; past it the job is cancelled at the next step boundary.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation handle, checked between steps.
    pub cancel: Option<CancelToken>,
}

impl BatchJob {
    /// Creates a job recording every accepted point and no probes.
    pub fn new(
        label: impl Into<String>,
        circuit: Circuit,
        method: Method,
        options: TransientOptions,
    ) -> Self {
        BatchJob {
            label: label.into(),
            circuit,
            method,
            options,
            probes: Vec::new(),
            sink: JobSink::Record,
            deadline: None,
            cancel: None,
        }
    }

    /// Adds a probed node name.
    #[must_use]
    pub fn probe(mut self, name: impl Into<String>) -> Self {
        self.probes.push(name.into());
        self
    }

    /// Switches the job to a fixed-memory streaming sink retaining at most
    /// `capacity` points.
    #[must_use]
    pub fn streaming(mut self, capacity: usize) -> Self {
        self.sink = JobSink::Stream { capacity };
        self
    }

    /// Caps the job's wall-clock time; a job past its deadline reports
    /// [`JobError::Cancelled`] with the partial waveform it produced.
    #[must_use]
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Attaches a cooperative [`CancelToken`].
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether this job must be driven step-by-step with cancellation checks
    /// (any deadline or token present).
    fn is_cancellable(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }
}

/// An ordered collection of [`BatchJob`]s to execute together.
///
/// # Examples
///
/// ```
/// use exi_netlist::generators::{rc_ladder, RcLadderSpec};
/// use exi_sim::{BatchJob, BatchPlan, Method, TransientOptions};
///
/// # fn main() -> Result<(), exi_sim::SimError> {
/// let mut plan = BatchPlan::new();
/// for segments in [5, 10] {
///     let spec = RcLadderSpec { segments, ..RcLadderSpec::default() };
///     plan.push(BatchJob::new(
///         format!("segments={segments}"),
///         rc_ladder(&spec)?,
///         Method::ExponentialRosenbrock,
///         TransientOptions::new(1e-9, 1e-12),
///     ));
/// }
/// assert_eq!(plan.len(), 2);
/// assert_eq!(plan.jobs()[0].label, "segments=5");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchPlan {
    jobs: Vec<BatchJob>,
}

impl BatchPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        BatchPlan::default()
    }

    /// Appends a job; results come back in submission order regardless of
    /// which worker runs what.
    pub fn push(&mut self, job: BatchJob) -> &mut Self {
        self.jobs.push(job);
        self
    }

    /// Number of jobs in the plan.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` when the plan holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs, in submission order.
    pub fn jobs(&self) -> &[BatchJob] {
        &self.jobs
    }
}

/// The waveform a finished job produced, matching its [`JobSink`].
// The `Recorded` variant is the common case; boxing it to appease
// `large_enum_variant` would cost an indirection on every recorded job for
// a type that lives once per job, not per step.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Every accepted point ([`JobSink::Record`]).
    Recorded(TransientResult),
    /// The fixed-memory decimated view ([`JobSink::Stream`]).
    Streamed(DecimatedWaveform),
}

/// Why a batch job produced no (complete) waveform. The three variants are
/// the partial-results partition of a [`BatchResult`]: simulation errors,
/// isolated panics, and cooperative cancellations.
// `Cancelled` carries the partial waveform inline: job errors are
// constructed at most once per job (cold path), and boxing would push the
// indirection onto every caller that pattern-matches the partial out.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum JobError {
    /// The simulation itself failed (already attributed to a circuit
    /// node/device where the error supports it).
    Sim(SimError),
    /// The job panicked; `catch_unwind` isolated it so the rest of the batch
    /// completed untouched.
    Panicked {
        /// The panic payload's message, when it carried one.
        message: String,
    },
    /// The job was cancelled between steps by its token or deadline.
    Cancelled {
        /// What triggered the cancellation.
        reason: CancelReason,
        /// Simulation time reached when the job stopped.
        at_time: f64,
        /// The bit-exact prefix waveform produced before cancellation —
        /// every point equals the corresponding point of an uncancelled run.
        partial: Option<JobOutput>,
    },
}

impl JobError {
    /// The underlying simulation error, for [`JobError::Sim`].
    pub fn sim(&self) -> Option<&SimError> {
        match self {
            JobError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Sim(e) => write!(f, "{e}"),
            JobError::Panicked { message } => write!(f, "job panicked: {message}"),
            JobError::Cancelled {
                reason, at_time, ..
            } => write!(f, "job cancelled ({reason}) at t = {at_time:.3e} s"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for JobError {
    fn from(e: SimError) -> Self {
        JobError::Sim(e)
    }
}

/// Result of one batch job: per-job error isolation means a failed job
/// carries its error (and the statistics of the work it did) without
/// affecting any other entry.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's label.
    pub label: String,
    /// The method that ran.
    pub method: Method,
    /// The waveform, or the error that stopped the job.
    pub result: Result<JobOutput, JobError>,
    /// The job's session statistics — populated for failed jobs too (the
    /// partial work happened and is part of the batch totals).
    pub stats: RunStats,
    /// Index of the worker slot (0-based, `< worker_threads`) that executed
    /// the job, or `None` when the job never reached the pool (it failed
    /// during fingerprinting, or its worker thread died before reporting).
    /// Attribution only — which worker runs a job depends on scheduling and
    /// carries no determinism guarantee, unlike the outcome itself.
    pub worker: Option<usize>,
}

impl JobOutcome {
    /// Returns `true` when the job completed.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }

    /// Returns `true` when the job was cancelled (token or deadline).
    pub fn is_cancelled(&self) -> bool {
        matches!(self.result, Err(JobError::Cancelled { .. }))
    }

    /// The error that stopped the job, if any.
    pub fn error(&self) -> Option<&JobError> {
        self.result.as_ref().err()
    }

    /// The recorded waveform, when the job completed with a
    /// [`JobSink::Record`] sink.
    pub fn recorded(&self) -> Option<&TransientResult> {
        match &self.result {
            Ok(JobOutput::Recorded(r)) => Some(r),
            _ => None,
        }
    }

    /// The decimated waveform, when the job completed with a
    /// [`JobSink::Stream`] sink.
    pub fn streamed(&self) -> Option<&DecimatedWaveform> {
        match &self.result {
            Ok(JobOutput::Streamed(w)) => Some(w),
            _ => None,
        }
    }
}

/// Everything a finished batch produced, in submission order.
#[derive(Debug)]
pub struct BatchResult {
    /// One outcome per submitted job, index-aligned with the plan.
    pub jobs: Vec<JobOutcome>,
    /// Merged statistics: per-job counters summed ([`RunStats::absorb`]) plus
    /// the batch-level [`RunStats::batch_jobs`] and
    /// [`RunStats::worker_threads`]. Note `stats.runtime` sums *solver time
    /// across workers* (of which [`RunStats::cache_wait`] was spent waiting
    /// on shared-cache locks — subtract it, via
    /// [`RunStats::active_solver_seconds`], for pure compute); see
    /// [`BatchResult::wall_time`] for elapsed time.
    pub stats: RunStats,
    /// Wall-clock duration of the whole batch (what a throughput number
    /// should divide by).
    pub wall_time: Duration,
}

impl BatchResult {
    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of jobs that did not complete — simulation errors, isolated
    /// panics **and** cancellations alike.
    pub fn failed(&self) -> usize {
        self.jobs.iter().filter(|j| !j.is_ok()).count()
    }

    /// Number of jobs that completed with a waveform.
    pub fn succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.is_ok()).count()
    }

    /// Number of jobs cancelled by token or deadline (a subset of
    /// [`BatchResult::failed`]).
    pub fn cancelled(&self) -> usize {
        self.jobs.iter().filter(|j| j.is_cancelled()).count()
    }

    /// The failed jobs with their errors, in submission order — the partial
    /// results contract: everything not listed here carries a complete
    /// waveform in [`BatchResult::jobs`].
    pub fn failures(&self) -> impl Iterator<Item = (usize, &JobOutcome, &JobError)> {
        self.jobs
            .iter()
            .enumerate()
            .filter_map(|(i, j)| j.error().map(|e| (i, j, e)))
    }

    /// Returns `true` when every job completed.
    pub fn all_ok(&self) -> bool {
        self.failed() == 0
    }

    /// Active solver seconds per worker slot: entry `w` sums
    /// [`RunStats::active_solver_seconds`] — session runtime minus shared-
    /// cache wait — over every job executed on worker `w`, so an uneven
    /// batch schedule (one worker stuck on the long tail while the rest
    /// idle) shows up directly instead of hiding inside the
    /// [`BatchResult::stats`] runtime total. The vector has
    /// [`RunStats::worker_threads`] entries; jobs that never reached the
    /// pool ([`JobOutcome::worker`] is `None`) are not attributed.
    pub fn worker_active(&self) -> Vec<f64> {
        self.per_worker(RunStats::active_solver_seconds)
    }

    /// Shared-cache wait seconds per worker slot
    /// ([`RunStats::cache_wait_seconds`] summed per worker) — the
    /// contention complement of [`BatchResult::worker_active`]. After
    /// warm-up these should be (near) zero: warm lookups take no blocking
    /// lock on the step hot path.
    pub fn worker_cache_wait(&self) -> Vec<f64> {
        self.per_worker(RunStats::cache_wait_seconds)
    }

    fn per_worker(&self, metric: impl Fn(&RunStats) -> f64) -> Vec<f64> {
        let mut totals = vec![0.0; self.stats.worker_threads];
        for job in &self.jobs {
            if let Some(w) = job.worker {
                if w < totals.len() {
                    totals[w] += metric(&job.stats);
                }
            }
        }
        totals
    }
}

/// Batch-level progress hook, the fleet analogue of the per-step
/// [`crate::Observer`]: callbacks fire from worker threads as jobs start and
/// finish (hence `&self` + [`Sync`]), and per-job waveform streaming remains
/// available through [`JobSink::Stream`].
pub trait BatchObserver: Sync {
    /// Job `index` (submission order) began executing on some worker.
    fn on_job_started(&self, index: usize, label: &str) {
        let _ = (index, label);
    }

    /// Job `index` finished (successfully or not).
    fn on_job_finished(&self, index: usize, outcome: &JobOutcome) {
        let _ = (index, outcome);
    }

    /// The whole batch finished; receives the merged statistics.
    fn on_batch_finished(&self, stats: &RunStats) {
        let _ = stats;
    }
}

/// A [`BatchObserver`] that ignores every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullBatchObserver;

impl BatchObserver for NullBatchObserver {}

/// A lock-free counting [`BatchObserver`] for progress reporting: started,
/// finished and failed job counts, readable from any thread while the batch
/// runs.
#[derive(Debug, Default)]
pub struct BatchProgress {
    started: AtomicUsize,
    finished: AtomicUsize,
    failed: AtomicUsize,
}

impl BatchProgress {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        BatchProgress::default()
    }

    /// Jobs that have started executing.
    pub fn started(&self) -> usize {
        self.started.load(AtomicOrdering::Relaxed)
    }

    /// Jobs that have finished (successfully or not).
    pub fn finished(&self) -> usize {
        self.finished.load(AtomicOrdering::Relaxed)
    }

    /// Jobs that finished with an error.
    pub fn failed(&self) -> usize {
        self.failed.load(AtomicOrdering::Relaxed)
    }
}

impl BatchObserver for BatchProgress {
    fn on_job_started(&self, _index: usize, _label: &str) {
        self.started.fetch_add(1, AtomicOrdering::Relaxed);
    }

    fn on_job_finished(&self, _index: usize, outcome: &JobOutcome) {
        if !outcome.is_ok() {
            self.failed.fetch_add(1, AtomicOrdering::Relaxed);
        }
        self.finished.fetch_add(1, AtomicOrdering::Relaxed);
    }
}

/// Executes a [`BatchPlan`] over a scoped worker pool with one shared
/// symbolic cache (see the module docs for the determinism contract).
#[derive(Debug, Clone)]
pub struct BatchRunner {
    worker_threads: usize,
    shared: Arc<SymbolicCache>,
    plans: Arc<PlanCache>,
    recovery: RecoveryPolicy,
    lanes: LanePolicy,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// Creates a runner with a fresh shared cache and as many workers as the
    /// machine offers (`std::thread::available_parallelism`).
    pub fn new() -> Self {
        BatchRunner {
            worker_threads: 0,
            shared: Arc::new(SymbolicCache::new()),
            plans: Arc::new(PlanCache::new()),
            recovery: RecoveryPolicy::off(),
            lanes: LanePolicy::Off,
        }
    }

    /// Sets the [`LanePolicy`]: under [`LanePolicy::Auto`] or
    /// [`LanePolicy::Fixed`], runs of adjacent-in-submission-order jobs
    /// sharing one circuit fingerprint, method, options and probe list (and
    /// using the recording sink with no deadline or cancel token) are
    /// coalesced into [`LaneRunner`] batches: one evaluation plan, one
    /// symbolic analysis and one batched refactorization pass per Jacobian
    /// visit serve every member. Coalesced members stay bit-identical to
    /// their isolated scalar runs (the lane contract), so enabling lanes
    /// changes throughput, never waveforms. A member that leaves lockstep is
    /// transparently re-run on the scalar path ([`RunStats::lane_detaches`]).
    ///
    /// Coalescing is disabled — regardless of policy — while a
    /// [`RecoveryPolicy`] is active, because recovery reshapes individual
    /// runs (homotopy, retry ladders) in ways a lockstep batch cannot
    /// follow. The default is [`LanePolicy::Off`].
    #[must_use]
    pub fn lane_policy(mut self, policy: LanePolicy) -> Self {
        self.lanes = policy;
        self
    }

    /// The configured lane-coalescing policy.
    pub fn lanes(&self) -> LanePolicy {
        self.lanes
    }

    /// Installs a [`RecoveryPolicy`] on every worker session (DC homotopy
    /// and the transient retry ladder) and allows up to
    /// [`RecoveryPolicy::max_job_retries`] whole-job re-runs of a job that
    /// failed with a retryable numerical error. The default
    /// ([`RecoveryPolicy::off`]) keeps all output bit-identical to previous
    /// releases.
    #[must_use]
    pub fn recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// Sets the worker-thread count; `0` restores the hardware default.
    /// Results are identical for every value — only wall-clock time changes.
    #[must_use]
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads;
        self
    }

    /// Replaces the symbolic cache, pooling this batch's analyses with other
    /// batches (or hand-rolled [`Simulator::with_shared_symbolic`] sessions)
    /// holding the same cache.
    #[must_use]
    pub fn shared_cache(mut self, cache: Arc<SymbolicCache>) -> Self {
        self.shared = cache;
        self
    }

    /// The symbolic cache this runner hands to its workers.
    pub fn cache(&self) -> &Arc<SymbolicCache> {
        &self.shared
    }

    /// Replaces the evaluation-plan cache, pooling compiled
    /// [`exi_netlist::EvalPlan`]s with other batches (or hand-rolled
    /// [`Simulator::with_plan_cache`] sessions) holding the same cache.
    #[must_use]
    pub fn shared_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.plans = cache;
        self
    }

    /// The evaluation-plan cache this runner hands to its workers.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// The effective worker count [`BatchRunner::run`] will use.
    pub fn effective_worker_threads(&self) -> usize {
        if self.worker_threads > 0 {
            self.worker_threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        }
    }

    /// Runs every job of `plan` and collects submission-ordered outcomes.
    pub fn run(&self, plan: &BatchPlan) -> BatchResult {
        self.run_observed(plan, &NullBatchObserver)
    }

    /// As [`BatchRunner::run`], reporting progress to `observer`.
    ///
    /// A panicking job is caught (`catch_unwind`) on its worker and reported
    /// as [`JobError::Panicked`] — it never takes the batch, or any other
    /// job, down with it. A panicking simulation is still a bug worth
    /// reporting; the isolation is about blast radius, not about making
    /// panics part of the API.
    pub fn run_observed(&self, plan: &BatchPlan, observer: &dyn BatchObserver) -> BatchResult {
        let started = Instant::now();
        let threads = self.effective_worker_threads();
        let jobs = plan.jobs();
        let mut slots: Vec<Option<JobOutcome>> = jobs.iter().map(|_| None).collect();

        // --- Pattern grouping (main thread, deterministic). ---
        // Group jobs by the fingerprints of the matrix patterns they will
        // factorize — the conductance pattern `G` for every job, plus the
        // implicit-Jacobian pattern (structural union of `C` and `G`) for
        // BE/TR jobs — so each pattern's pilot analysis is performed by a
        // job chosen from the plan, never by whichever worker happens to
        // reach the cache first. The fingerprints come from the same
        // `exi_sparse::pattern_fingerprint` the cache keys its slots by.
        let mut g_queues: BTreeMap<PatternKey, Vec<usize>> = BTreeMap::new();
        let mut jac_queues: BTreeMap<PatternKey, Vec<usize>> = BTreeMap::new();
        // The evaluated `G(x = 0)` matrix of the lowest-index job of each
        // pattern group — the seed for main-thread pre-publication below.
        let mut g_seeds: BTreeMap<PatternKey, CsrMatrix> = BTreeMap::new();
        // Fingerprinting warms the shared plan cache deterministically on
        // the main thread (one compile per distinct structure); the compiles
        // are charged to the merged batch stats below, while each worker
        // session records a `shared_plan_hits` when it fetches its plan.
        let mut precompiled_plans = 0usize;
        let mut job_keys: Vec<Option<JobKeys>> = vec![None; jobs.len()];
        for (i, job) in jobs.iter().enumerate() {
            match job_fingerprints(job, &self.plans, &mut precompiled_plans) {
                Ok((keys, g)) => {
                    g_seeds.entry(keys.g).or_insert(g);
                    job_keys[i] = Some(keys);
                }
                Err(e) => {
                    // The circuit cannot even be evaluated: fail the job here
                    // (error isolation) and keep it out of every wave.
                    observer.on_job_started(i, &job.label);
                    let outcome = JobOutcome {
                        label: job.label.clone(),
                        method: job.method,
                        result: Err(JobError::Sim(e.attributed(&job.circuit))),
                        stats: RunStats::new(),
                        worker: None,
                    };
                    observer.on_job_finished(i, &outcome);
                    slots[i] = Some(outcome);
                }
            }
        }

        // --- Lane coalescing (main thread, deterministic). ---
        // Under an active lane policy, runs of compatible jobs collapse into
        // lockstep lane groups executed as single schedulable units. A
        // recovery policy disables coalescing outright: recovery reshapes
        // individual runs in ways a lockstep batch cannot follow.
        let lane_width = if self.recovery.is_off() {
            self.lanes.max_width()
        } else {
            None
        };
        let lane_groups = coalesce_lanes(jobs, &slots, lane_width);
        let mut lane_of: Vec<Option<usize>> = vec![None; jobs.len()];
        for (gid, group) in lane_groups.iter().enumerate() {
            for &i in group {
                lane_of[i] = Some(gid);
            }
        }
        // Queue membership is per schedulable *unit*: a lane group claims
        // each of its patterns exactly once, through its leader — K
        // coalesced jobs are ONE pattern claimant, not K. Followers never
        // enter a queue, so pilot election can neither elect one nor
        // promote one, and a warmed cache sees exactly one probe per group.
        for (i, keys) in job_keys.iter().enumerate() {
            let Some(keys) = keys else { continue };
            if lane_of[i].is_some_and(|gid| lane_groups[gid][0] != i) {
                continue;
            }
            g_queues.entry(keys.g).or_default().push(i);
            if let Some(jac) = keys.jac {
                jac_queues.entry(jac).or_default().push(i);
            }
        }

        // --- Main-thread pre-publication of every G analysis. ---
        // Each job's first factorization is the DC Newton start: `G`
        // evaluated at `x = 0` — exactly the matrix fingerprinting just
        // evaluated. Publishing its analysis here, before any worker
        // starts, removes the G pilot waves entirely: every job (the
        // would-be pilot included) derives its factor from the shared
        // analysis, so a batch of same-pattern jobs parallelizes from the
        // first job instead of running one pilot to completion alone.
        // A pattern whose seed fails to factorize falls back to pilot-wave
        // election below, so the owning job surfaces the error itself with
        // full attribution.
        let prepublish = self.prepublish_g_patterns(&g_seeds);

        // --- Pilot waves, then the bulk wave, over the worker pool. ---
        // With every G pattern published above, wave election only fires
        // for implicit-Jacobian patterns (whose values depend on the
        // per-job step size) and for G seeds that failed to factorize: the
        // lowest-index not-yet-run job of each unsatisfied group pilots it.
        // A failed pilot does not wedge its group: the next candidate is
        // promoted into a fresh barrier-separated wave (still a function of
        // the plan alone — whether a job fails is deterministic), so pilot
        // identity never depends on thread scheduling. The final phase runs
        // everything else; by then every pattern any job needs is
        // published, so workers only read the cache.
        for queues in [&g_queues, &jac_queues] {
            loop {
                let wave = elect_pilots(queues, &slots, &self.shared);
                if wave.is_empty() {
                    break;
                }
                for (i, outcome) in
                    self.run_wave(jobs, &wave, &lane_groups, &lane_of, threads, observer)
                {
                    slots[i] = Some(outcome);
                }
            }
        }
        // The bulk wave schedules the remaining *units*: every un-run job
        // except lane followers, which run inside their leader's unit.
        let rest: Vec<usize> = (0..jobs.len())
            .filter(|&i| {
                slots[i].is_none() && lane_of[i].is_none_or(|gid| lane_groups[gid][0] == i)
            })
            .collect();
        for (i, outcome) in self.run_wave(jobs, &rest, &lane_groups, &lane_of, threads, observer) {
            slots[i] = Some(outcome);
        }

        // --- Merge, in submission order. ---
        // A slot can be empty when its worker thread died outside the
        // per-job panic shield (e.g. a panicking `BatchObserver` callback
        // took the whole thread down before the job reported back). Those
        // jobs get an explicit Panicked outcome instead of poisoning the
        // merge.
        let outcomes: Vec<JobOutcome> = slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.unwrap_or_else(|| {
                    let outcome = JobOutcome {
                        label: jobs[i].label.clone(),
                        method: jobs[i].method,
                        result: Err(JobError::Panicked {
                            message: "worker thread terminated before the job reported an outcome"
                                .to_string(),
                        }),
                        stats: RunStats::new(),
                        worker: None,
                    };
                    observer.on_job_finished(i, &outcome);
                    outcome
                })
            })
            .collect();
        let mut stats = RunStats::new();
        for outcome in &outcomes {
            stats.absorb(&outcome.stats);
        }
        stats.absorb(&prepublish);
        stats.plan_compilations += precompiled_plans;
        stats.batch_jobs = outcomes.len();
        stats.worker_threads = threads;
        observer.on_batch_finished(&stats);
        BatchResult {
            jobs: outcomes,
            stats,
            wall_time: started.elapsed(),
        }
    }

    /// Runs one wave of schedulable units across up to `threads` scoped
    /// workers. Each index is either a standalone job or a lane-group
    /// leader; a leader index dispatches its whole group as one unit
    /// through [`LaneRunner`], reporting one outcome per member.
    fn run_wave(
        &self,
        jobs: &[BatchJob],
        indices: &[usize],
        lane_groups: &[Vec<usize>],
        lane_of: &[Option<usize>],
        threads: usize,
        observer: &dyn BatchObserver,
    ) -> Vec<(usize, JobOutcome)> {
        if indices.is_empty() {
            return Vec::new();
        }
        let workers = threads.min(indices.len()).max(1);
        let cursor = AtomicUsize::new(0);
        let shared = &self.shared;
        let plans = &self.plans;
        let recovery = &self.recovery;
        let cursor = &cursor;
        // Finished jobs report into a shared buffer immediately (one lock
        // acquisition per *job*, not per step — invisible next to a
        // transient run), so a worker that later dies outside the per-job
        // panic shield loses only the job it was on, never work it already
        // completed.
        let results = std::sync::Mutex::new(Vec::with_capacity(indices.len()));
        let results_ref = &results;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || loop {
                        let k = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                        let Some(&i) = indices.get(k) else { break };
                        if let Some(gid) = lane_of[i] {
                            let members = &lane_groups[gid];
                            for &m in members {
                                observer.on_job_started(m, &jobs[m].label);
                            }
                            for (m, mut outcome) in execute_lane_group(jobs, members, shared, plans)
                            {
                                outcome.worker = Some(w);
                                observer.on_job_finished(m, &outcome);
                                results_ref
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                                    .push((m, outcome));
                            }
                            continue;
                        }
                        let job = &jobs[i];
                        observer.on_job_started(i, &job.label);
                        let mut outcome = execute_job(job, shared, plans, recovery);
                        outcome.worker = Some(w);
                        observer.on_job_finished(i, &outcome);
                        results_ref
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .push((i, outcome));
                    })
                })
                .collect();
            for handle in handles {
                // Job panics are caught inside `execute_job`; a join error
                // here means the worker died outside that shield (e.g. in a
                // `BatchObserver` callback). Only its in-flight job is lost
                // — the merge backfills that slot with a Panicked outcome
                // instead of propagating the panic.
                let _ = handle.join();
            }
        });
        results
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Publishes the symbolic analysis of every distinct `G` pattern into
    /// the shared cache, on the main thread, before any worker starts.
    ///
    /// Each seed is the pattern group's `G(x = 0)` — bit-for-bit the matrix
    /// the group's lowest-index job would have factorized first (the DC
    /// Newton start), so the published analysis (pivot order included) is
    /// identical to what that job's pilot run used to publish. The options
    /// mirror the DC solve's: the job's requested ordering over
    /// [`LuOptions::default`]. Already-published patterns (a warm cache) are
    /// skipped without touching hit/miss counters; a seed that fails to
    /// factorize is left for pilot-wave election, so the owning job reports
    /// the error itself. Returns the counters to fold into the merged batch
    /// statistics (main-thread work belongs to no worker, so its `runtime`
    /// stays zero and [`BatchResult::worker_active`] remains a partition of
    /// worker time).
    fn prepublish_g_patterns(&self, g_seeds: &BTreeMap<PatternKey, CsrMatrix>) -> RunStats {
        let mut stats = RunStats::new();
        let mut ws = LuWorkspace::new();
        for (&(fingerprint, ordering), g) in g_seeds {
            if self.shared.is_published(fingerprint, ordering) {
                continue;
            }
            let options = LuOptions {
                ordering,
                ..LuOptions::default()
            };
            match self.shared.factorize(g, &options, &mut ws) {
                Ok((_, FactorSource::Analyzed)) => {
                    stats.symbolic_analyses += 1;
                    stats.lu_factorizations += 1;
                }
                // Another session sharing the cache published the pattern
                // between the `is_published` probe and the factorize call.
                Ok((_, FactorSource::Shared)) => {
                    stats.lu_factorizations += 1;
                    stats.lu_refactorizations += 1;
                    stats.shared_symbolic_hits += 1;
                }
                Err(_) => {}
            }
        }
        stats
    }
}

/// Grouping key for pilot election: the cache's own pattern fingerprint plus
/// the fill-reducing ordering (a different ordering is a different cache
/// slot). `Ord` so wave composition iterates in a stable order.
type PatternKey = (u64, OrderingMethod);

/// The matrix patterns one job will ask the shared cache for.
#[derive(Debug, Clone, Copy)]
struct JobKeys {
    /// The conductance pattern `G` — factorized by every job (DC solve and
    /// the ER step loop).
    g: PatternKey,
    /// The implicit-Jacobian pattern (structural union of `C` and `G`) for
    /// BE/TR jobs. On circuits where `nnz(C) ⊆ nnz(G)` this equals `g` and
    /// the same analysis serves both matrix roles.
    jac: Option<PatternKey>,
}

/// Whether `method` factorizes the implicit Jacobian `C/h + θG` (a second
/// matrix pattern beyond `G`).
fn uses_implicit_jacobian(method: Method) -> bool {
    matches!(method, Method::BackwardEuler | Method::Trapezoidal)
}

/// Fingerprints of the matrix patterns `job` will factorize, computed with
/// [`exi_sparse::pattern_fingerprint`] — the exact grouping the shared cache
/// uses — plus the evaluated `G(x = 0)` matrix itself, the pre-publication
/// seed. Costs one plan fetch (compiled once per distinct structure, counted
/// into `precompiled`) and one device evaluation at `x = 0` (plus one
/// structural matrix add for implicit jobs) per job — negligible against a
/// transient run.
fn job_fingerprints(
    job: &BatchJob,
    plans: &PlanCache,
    precompiled: &mut usize,
) -> SimResult<(JobKeys, CsrMatrix)> {
    let (plan, compiled) = plans.get_or_compile(&job.circuit)?;
    if compiled {
        *precompiled += 1;
    }
    let x = vec![0.0; job.circuit.num_unknowns()];
    let ev = plan.evaluate(&x)?;
    let ordering = job.options.ordering;
    let jac = if uses_implicit_jacobian(job.method) {
        let union = CsrMatrix::linear_combination(1.0, &ev.c, 1.0, &ev.g)?;
        Some((pattern_fingerprint(&union), ordering))
    } else {
        None
    };
    let keys = JobKeys {
        g: (pattern_fingerprint(&ev.g), ordering),
        jac,
    };
    Ok((keys, ev.g))
}

/// One pilot per pattern whose analysis the shared cache has not published:
/// the lowest-index not-yet-run member of each such group. Returns an empty
/// wave once every pattern is either published or out of candidates.
///
/// The satisfied-check asks the cache itself — never the job slots — so a
/// pattern published by pre-publication, by an earlier wave, or by a
/// previous batch sharing the cache needs no pilot at all: on a fully
/// warmed cache every wave is empty and every job goes straight to the bulk
/// phase.
fn elect_pilots(
    queues: &BTreeMap<PatternKey, Vec<usize>>,
    slots: &[Option<JobOutcome>],
    shared: &SymbolicCache,
) -> Vec<usize> {
    let mut wave = Vec::new();
    for (&(fingerprint, ordering), members) in queues {
        if shared.is_published(fingerprint, ordering) {
            continue;
        }
        if let Some(&candidate) = members.iter().find(|&&i| slots[i].is_none()) {
            wave.push(candidate);
        }
    }
    // Two patterns may elect the same job (e.g. a BE job piloting both its G
    // and its distinct Jacobian pattern); dedup keeps the wave a set.
    wave.sort_unstable();
    wave.dedup();
    wave
}

/// Coalesces eligible jobs into lane groups of at most `width` members
/// (`None` disables coalescing).
///
/// Eligible: the job survived fingerprinting (`slots[i]` still empty), uses
/// the recording sink, and carries no deadline or cancel token. Jobs group
/// together when they share a circuit fingerprint (structure **and** device
/// values; source waveforms are excluded from the fingerprint, and varying
/// them is exactly what a corner sweep does), integration method, options
/// and probe list. The scan runs in submission order and opens a new group
/// only when every matching group is full, so the partition is a function
/// of the plan alone — never of thread scheduling. Single-member groups are
/// dropped: a one-lane batch is just a scalar run with extra bookkeeping.
fn coalesce_lanes(
    jobs: &[BatchJob],
    slots: &[Option<JobOutcome>],
    width: Option<usize>,
) -> Vec<Vec<usize>> {
    let Some(width) = width else {
        return Vec::new();
    };
    if width < 2 {
        return Vec::new();
    }
    let mut groups: Vec<(Vec<u8>, Vec<usize>)> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        if slots[i].is_some() || job.sink != JobSink::Record || job.is_cancellable() {
            continue;
        }
        let fp = circuit_fingerprint(&job.circuit);
        if let Some((_, members)) = groups.iter_mut().find(|(gfp, members)| {
            members.len() < width && *gfp == fp && {
                let leader = &jobs[members[0]];
                leader.method == job.method
                    && leader.options == job.options
                    && leader.probes == job.probes
            }
        }) {
            members.push(i);
        } else {
            groups.push((fp, vec![i]));
        }
    }
    groups
        .into_iter()
        .filter_map(|(_, members)| (members.len() >= 2).then_some(members))
        .collect()
}

/// Runs one coalesced lane group as a single schedulable unit through
/// [`LaneRunner`], returning one outcome per member.
///
/// The whole group runs under one panic shield: the lanes advance as one
/// lockstep state machine, so no member's partial result is separable from
/// a panic mid-batch. Batch-level statistics — the lockstep work, the
/// shared-cache traffic and any detached lanes' scalar re-runs — are
/// charged to the group's **leader**, the member that claimed the group's
/// patterns, so the merged batch totals count the work exactly once.
fn execute_lane_group(
    jobs: &[BatchJob],
    members: &[usize],
    shared: &Arc<SymbolicCache>,
    plans: &Arc<PlanCache>,
) -> Vec<(usize, JobOutcome)> {
    let leader = &jobs[members[0]];
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let circuits: Vec<&Circuit> = members.iter().map(|&i| &jobs[i].circuit).collect();
        let probe_refs: Vec<&str> = leader.probes.iter().map(String::as_str).collect();
        LaneRunner::new(&circuits).map(|runner| {
            runner
                .with_shared_symbolic(Arc::clone(shared))
                .with_plan_cache(Arc::clone(plans))
                .transient(leader.method, &leader.options, &probe_refs)
        })
    }));
    let outcome = |i: usize, result: Result<JobOutput, JobError>, stats: RunStats| {
        (
            i,
            JobOutcome {
                label: jobs[i].label.clone(),
                method: jobs[i].method,
                result,
                stats,
                worker: None,
            },
        )
    };
    match run {
        Ok(Ok(batch)) => members
            .iter()
            .zip(batch.lanes)
            .enumerate()
            .map(|(k, (&i, lane))| {
                let stats = if k == 0 {
                    batch.stats.clone()
                } else {
                    RunStats::new()
                };
                outcome(
                    i,
                    lane.map(JobOutput::Recorded).map_err(JobError::Sim),
                    stats,
                )
            })
            .collect(),
        Ok(Err(e)) => members
            .iter()
            .map(|&i| {
                outcome(
                    i,
                    Err(JobError::Sim(e.clone().attributed(&jobs[i].circuit))),
                    RunStats::new(),
                )
            })
            .collect(),
        Err(payload) => {
            let message = panic_message(payload);
            members
                .iter()
                .map(|&i| {
                    outcome(
                        i,
                        Err(JobError::Panicked {
                            message: message.clone(),
                        }),
                        RunStats::new(),
                    )
                })
                .collect()
        }
    }
}

/// Runs one job, with panic isolation and bounded whole-job retries under
/// the runner's recovery policy. The deadline clock starts here — when a
/// worker picks the job up, not when the batch was submitted.
fn execute_job(
    job: &BatchJob,
    shared: &Arc<SymbolicCache>,
    plans: &Arc<PlanCache>,
    recovery: &RecoveryPolicy,
) -> JobOutcome {
    let deadline = job.deadline.map(|budget| Instant::now() + budget);
    let retries = if recovery.is_off() {
        0
    } else {
        recovery.max_job_retries
    };
    let mut total = RunStats::new();
    let mut attempt = 0usize;
    loop {
        let mut outcome = execute_job_shielded(job, shared, plans, recovery, deadline);
        total.absorb(&outcome.stats);
        let retryable = matches!(
            &outcome.result,
            Err(JobError::Sim(e)) if RecoveryPolicy::transient_retryable(e)
        );
        if retryable && attempt < retries {
            attempt += 1;
            total.recovery_attempts += 1;
            continue;
        }
        outcome.stats = total;
        return outcome;
    }
}

/// One attempt at a job, wrapped in `catch_unwind` so a panicking
/// simulation (or observer) is reported as [`JobError::Panicked`] instead
/// of taking the worker — and with it the whole batch — down.
fn execute_job_shielded(
    job: &BatchJob,
    shared: &Arc<SymbolicCache>,
    plans: &Arc<PlanCache>,
    recovery: &RecoveryPolicy,
    deadline: Option<Instant>,
) -> JobOutcome {
    #[cfg(feature = "fault-injection")]
    crate::fault::install(&job.label);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_job_body(job, shared, plans, recovery, deadline)
    }));
    #[cfg(feature = "fault-injection")]
    crate::fault::uninstall();
    // The shared caches stay safe to reuse after a caught panic: both the
    // symbolic cache and the plan cache only publish fully constructed
    // entries, and their locks are recovered from poisoning.
    result.unwrap_or_else(|payload| JobOutcome {
        label: job.label.clone(),
        method: job.method,
        result: Err(JobError::Panicked {
            message: panic_message(payload),
        }),
        stats: RunStats::new(),
        worker: None,
    })
}

/// The text carried by a panic payload, when it has one.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job in its own pooled session.
#[allow(clippy::result_large_err)] // cold path, once per job
fn run_job_body(
    job: &BatchJob,
    shared: &Arc<SymbolicCache>,
    plans: &Arc<PlanCache>,
    recovery: &RecoveryPolicy,
    deadline: Option<Instant>,
) -> JobOutcome {
    let mut sim = Simulator::with_shared_symbolic(&job.circuit, Arc::clone(shared))
        .with_plan_cache(Arc::clone(plans))
        .with_recovery_policy(recovery.clone());
    let probe_refs: Vec<&str> = job.probes.iter().map(String::as_str).collect();
    let result = if job.is_cancellable() {
        run_cancellable(&mut sim, job, &probe_refs, deadline)
    } else {
        match job.sink {
            JobSink::Record => sim
                .transient(job.method, &job.options, &probe_refs)
                .map(JobOutput::Recorded)
                .map_err(JobError::Sim),
            JobSink::Stream { capacity } => resolve_probes(&job.circuit, &probe_refs)
                .map_err(JobError::Sim)
                .and_then(|probes| {
                    let mut streaming = StreamingObserver::new(probes, capacity);
                    sim.transient_observed(job.method, &job.options, &mut streaming)
                        .map_err(JobError::Sim)?;
                    Ok(JobOutput::Streamed(streaming.into_waveform()))
                }),
        }
    };
    JobOutcome {
        label: job.label.clone(),
        method: job.method,
        result,
        stats: sim.session_stats().clone(),
        worker: None,
    }
}

/// Drives a cancellable job step-by-step on the [`Engine`] contract: the
/// token and deadline are checked **between** accepted steps, so the partial
/// waveform of a cancelled job is a bit-exact prefix of the uncancelled run.
#[allow(clippy::result_large_err)] // cold path, once per job
fn run_cancellable(
    sim: &mut Simulator<'_>,
    job: &BatchJob,
    probe_refs: &[&str],
    deadline: Option<Instant>,
) -> Result<JobOutput, JobError> {
    job.options.validate().map_err(JobError::Sim)?;
    let probes = resolve_probes(&job.circuit, probe_refs).map_err(JobError::Sim)?;
    match job.sink {
        JobSink::Record => {
            let mut observer = RecordingObserver::new(probes, job.options.record_full_states);
            let cancelled = drive_cancellable(sim, job, &mut observer, deadline)?;
            let output = JobOutput::Recorded(observer.into_result());
            wrap_cancellation(output, cancelled)
        }
        JobSink::Stream { capacity } => {
            let mut observer = StreamingObserver::new(probes, capacity);
            let cancelled = drive_cancellable(sim, job, &mut observer, deadline)?;
            let output = JobOutput::Streamed(observer.into_waveform());
            wrap_cancellation(output, cancelled)
        }
    }
}

/// Packages a driven job's output: complete on `None`, a
/// [`JobError::Cancelled`] carrying the partial waveform otherwise.
#[allow(clippy::result_large_err)] // cold path, once per job
fn wrap_cancellation(
    output: JobOutput,
    cancelled: Option<(CancelReason, f64)>,
) -> Result<JobOutput, JobError> {
    match cancelled {
        None => Ok(output),
        Some((reason, at_time)) => Err(JobError::Cancelled {
            reason,
            at_time,
            partial: Some(output),
        }),
    }
}

/// The step loop of a cancellable job. Returns `Ok(None)` on normal
/// completion, `Ok(Some((reason, time)))` on cancellation, and the
/// (attributed) simulation error otherwise; the run's statistics are
/// absorbed into the session either way.
#[allow(clippy::result_large_err)] // cold path, once per job
fn drive_cancellable(
    sim: &mut Simulator<'_>,
    job: &BatchJob,
    observer: &mut dyn crate::Observer,
    deadline: Option<Instant>,
) -> Result<Option<(CancelReason, f64)>, JobError> {
    let (outcome, stats) = {
        let mut stepper = match sim.stepper(job.method, &job.options) {
            Ok(stepper) => stepper,
            Err(e) => return Err(JobError::Sim(e.attributed(&job.circuit))),
        };
        // Start explicitly (DC solve + `on_dc`) before the first cancellation
        // check: even a job cancelled on arrival yields its DC point as the
        // partial result.
        let outcome = match stepper.start(observer) {
            Err(e) => Err(e),
            Ok(()) => loop {
                let cancel = if job.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    Some(CancelReason::Token)
                } else if deadline.is_some_and(|limit| Instant::now() >= limit) {
                    Some(CancelReason::Deadline)
                } else {
                    None
                };
                if let Some(reason) = cancel {
                    break Ok(Some((reason, stepper.time())));
                }
                match stepper.advance(observer) {
                    Ok(StepOutcome::Finished) => break Ok(None),
                    Ok(_) => {}
                    Err(e) => break Err(e),
                }
            },
        };
        let stats = stepper.finish(observer);
        (outcome, stats)
    };
    match outcome {
        Ok(None) => {
            sim.absorb_run(&stats);
            Ok(None)
        }
        Ok(cancelled) => {
            sim.absorb_partial(&stats);
            Ok(cancelled)
        }
        Err(e) => {
            sim.absorb_partial(&stats);
            Err(JobError::Sim(e.attributed(&job.circuit)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_netlist::Waveform;

    fn rc_circuit(r: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source(
            "Vin",
            vin,
            gnd,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-11, 1.0)]),
        )
        .unwrap();
        ckt.add_resistor("R1", vin, out, r).unwrap();
        ckt.add_capacitor("C1", out, gnd, 1e-13).unwrap();
        ckt
    }

    fn options() -> TransientOptions {
        TransientOptions {
            t_stop: 5e-10,
            h_init: 1e-12,
            h_max: 2e-11,
            error_budget: 1e-3,
            ..TransientOptions::default()
        }
    }

    /// Same devices as `rc_circuit(1e3)` — identical circuit fingerprint —
    /// with only the source waveform (fingerprint-excluded) varying per
    /// corner, the shape of a supply-corner sweep that lane batches target.
    fn rc_drive(level: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source(
            "Vin",
            vin,
            gnd,
            Waveform::Pwl(vec![(0.0, level), (1e-11, level + 1.0)]),
        )
        .unwrap();
        ckt.add_resistor("R1", vin, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, gnd, 1e-13).unwrap();
        ckt
    }

    fn corner_plan(n: usize, method: Method) -> BatchPlan {
        let mut plan = BatchPlan::new();
        for k in 0..n {
            plan.push(
                BatchJob::new(
                    format!("corner{k}"),
                    rc_drive(0.1 * k as f64),
                    method,
                    options(),
                )
                .probe("out"),
            );
        }
        plan
    }

    fn assert_bits_equal(a: &TransientResult, b: &TransientResult) {
        assert_eq!(a.times.len(), b.times.len());
        for (x, y) in a.times.iter().zip(&b.times) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (ra, rb) in a.samples.iter().zip(&b.samples) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (x, y) in a.final_state.iter().zip(&b.final_state) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn lane_policy_is_bit_identical_to_scalar_batch() {
        let plan = corner_plan(4, Method::BackwardEuler);
        let scalar = BatchRunner::new().worker_threads(2).run(&plan);
        let laned = BatchRunner::new()
            .worker_threads(2)
            .lane_policy(LanePolicy::Fixed(4))
            .run(&plan);
        assert!(scalar.all_ok());
        assert!(laned.all_ok());
        assert_eq!(scalar.stats.lane_batches, 0);
        assert_eq!(laned.stats.lane_batches, 1);
        assert_eq!(laned.stats.lane_detaches, 0);
        // One plan and one symbolic analysis serve the whole coalesced fleet.
        assert_eq!(laned.stats.plan_compilations, 1);
        assert_eq!(laned.stats.symbolic_analyses, 1);
        assert!(laned.stats.lane_refactorization_passes > 0);
        for (a, b) in scalar.jobs.iter().zip(&laned.jobs) {
            assert_bits_equal(
                a.recorded().expect("scalar waveform"),
                b.recorded().expect("laned waveform"),
            );
        }
    }

    #[test]
    fn lane_groups_respect_width_and_eligibility() {
        let mut plan = corner_plan(5, Method::ExponentialRosenbrock);
        plan.push(
            BatchJob::new(
                "streamed",
                rc_drive(0.9),
                Method::ExponentialRosenbrock,
                options(),
            )
            .probe("out")
            .streaming(8),
        );
        plan.push(
            BatchJob::new(
                "cancellable",
                rc_drive(1.1),
                Method::ExponentialRosenbrock,
                options(),
            )
            .probe("out")
            .cancel_token(CancelToken::new()),
        );
        let result = BatchRunner::new()
            .worker_threads(2)
            .lane_policy(LanePolicy::Fixed(2))
            .run(&plan);
        assert!(result.all_ok());
        // Five eligible corners at width 2 form two pairs; the fifth corner,
        // the streaming job and the cancellable job all run scalar.
        assert_eq!(result.stats.lane_batches, 2);
        assert_eq!(result.stats.batch_jobs, 7);
        assert!(result.jobs[5].streamed().is_some());
        // Every member is attributed to a worker slot inside the pool.
        for job in &result.jobs {
            assert!(job.worker.expect("attributed") < 2);
        }
    }

    #[test]
    fn recovery_policy_disables_lane_coalescing() {
        let plan = corner_plan(4, Method::BackwardEuler);
        let result = BatchRunner::new()
            .worker_threads(2)
            .lane_policy(LanePolicy::Auto)
            .recovery_policy(RecoveryPolicy::standard())
            .run(&plan);
        assert!(result.all_ok());
        assert_eq!(result.stats.lane_batches, 0);
    }

    #[test]
    fn batch_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BatchPlan>();
        assert_send_sync::<BatchJob>();
        assert_send_sync::<BatchRunner>();
        assert_send_sync::<BatchResult>();
        assert_send_sync::<JobOutcome>();
        assert_send_sync::<BatchProgress>();
        assert_send_sync::<Circuit>();
        assert_send_sync::<TransientResult>();
    }

    #[test]
    fn empty_plan_yields_empty_result() {
        let result = BatchRunner::new().worker_threads(4).run(&BatchPlan::new());
        assert!(result.is_empty());
        assert_eq!(result.len(), 0);
        assert!(result.all_ok());
        assert_eq!(result.stats.batch_jobs, 0);
        assert_eq!(result.stats.worker_threads, 4);
    }

    #[test]
    fn same_topology_jobs_share_one_symbolic_analysis() {
        let mut plan = BatchPlan::new();
        for k in 0..4 {
            plan.push(
                BatchJob::new(
                    format!("job{k}"),
                    rc_circuit(1e3),
                    Method::ExponentialRosenbrock,
                    options(),
                )
                .probe("out"),
            );
        }
        let result = BatchRunner::new().worker_threads(2).run(&plan);
        assert!(result.all_ok());
        assert_eq!(result.stats.batch_jobs, 4);
        assert_eq!(result.stats.worker_threads, 2);
        assert_eq!(result.stats.symbolic_analyses, 1, "{:?}", result.stats);
        // Pre-publication performs the one analysis on the main thread, so
        // all four jobs — the would-be pilot included — derive from it.
        assert_eq!(result.stats.shared_symbolic_hits, 4);
        // No job ever blocked on an in-flight cache slot.
        assert_eq!(result.stats.shared_symbolic_wait_events, 0);
    }

    #[test]
    fn worker_attribution_accounts_for_every_executed_job() {
        let mut plan = BatchPlan::new();
        for k in 0..6 {
            plan.push(
                BatchJob::new(
                    format!("job{k}"),
                    rc_circuit(1e3 + k as f64),
                    Method::ExponentialRosenbrock,
                    options(),
                )
                .probe("out"),
            );
        }
        let result = BatchRunner::new().worker_threads(2).run(&plan);
        assert!(result.all_ok());
        // Every executed job names a worker slot inside the pool.
        for job in &result.jobs {
            let w = job.worker.expect("executed job must be attributed");
            assert!(w < 2, "worker slot {w} out of range");
        }
        // The per-worker breakdown is a partition of the active solver time
        // (merged runtime minus merged cache wait).
        let active = result.worker_active();
        assert_eq!(active.len(), 2);
        let total: f64 = active.iter().sum();
        assert!(
            (total - result.stats.active_solver_seconds()).abs() <= 1e-6 * total.max(1.0),
            "per-worker sum {total} vs merged {}",
            result.stats.active_solver_seconds()
        );
        assert_eq!(result.worker_cache_wait().len(), 2);
        // A job that fails before reaching the pool stays unattributed.
        let mut bad = BatchPlan::new();
        bad.push(BatchJob::new(
            "empty-circuit",
            Circuit::new(),
            Method::ExponentialRosenbrock,
            options(),
        ));
        let failed = BatchRunner::new().worker_threads(2).run(&bad);
        assert_eq!(failed.failed(), 1);
        assert_eq!(failed.jobs[0].worker, None);
        assert_eq!(failed.worker_active(), vec![0.0, 0.0]);
    }

    #[test]
    fn failed_job_does_not_poison_the_batch() {
        let mut plan = BatchPlan::new();
        plan.push(
            BatchJob::new(
                "good",
                rc_circuit(1e3),
                Method::ExponentialRosenbrock,
                options(),
            )
            .probe("out"),
        );
        // Invalid options: h_init > t_stop.
        let bad = TransientOptions {
            h_init: 1.0,
            ..options()
        };
        plan.push(BatchJob::new(
            "bad-options",
            rc_circuit(1e3),
            Method::ExponentialRosenbrock,
            bad,
        ));
        // Unknown probe name.
        plan.push(
            BatchJob::new(
                "bad-probe",
                rc_circuit(1e3),
                Method::ExponentialRosenbrock,
                options(),
            )
            .probe("nope"),
        );
        let result = BatchRunner::new().worker_threads(3).run(&plan);
        assert_eq!(result.len(), 3);
        assert_eq!(result.failed(), 2);
        assert!(result.jobs[0].is_ok());
        assert!(!result.jobs[1].is_ok());
        assert!(!result.jobs[2].is_ok());
        assert!(result.jobs[0].recorded().is_some());
        assert_eq!(result.stats.batch_jobs, 3);
    }

    #[test]
    fn progress_observer_counts_every_job() {
        let mut plan = BatchPlan::new();
        for k in 0..5 {
            plan.push(BatchJob::new(
                format!("j{k}"),
                rc_circuit(1e3 + k as f64),
                Method::ExponentialRosenbrock,
                options(),
            ));
        }
        plan.push(BatchJob::new(
            "fails",
            rc_circuit(1e3),
            Method::ExponentialRosenbrock,
            TransientOptions {
                h_init: 1.0,
                ..options()
            },
        ));
        let progress = BatchProgress::new();
        let result = BatchRunner::new()
            .worker_threads(2)
            .run_observed(&plan, &progress);
        assert_eq!(progress.started(), 6);
        assert_eq!(progress.finished(), 6);
        assert_eq!(progress.failed(), 1);
        assert_eq!(result.failed(), 1);
    }

    #[test]
    fn streaming_sink_bounds_memory() {
        let mut plan = BatchPlan::new();
        plan.push(
            BatchJob::new(
                "stream",
                rc_circuit(1e3),
                Method::ExponentialRosenbrock,
                options(),
            )
            .probe("out")
            .streaming(8),
        );
        let result = BatchRunner::new().worker_threads(1).run(&plan);
        assert!(result.all_ok());
        let streamed = result.jobs[0].streamed().expect("streamed output");
        assert!(streamed.len() < 8);
        assert!(streamed.observed >= streamed.len());
        assert!(streamed.stride.is_power_of_two());
        assert!(result.jobs[0].recorded().is_none());
    }
}
