//! Convergence recovery: DC homotopy and the transient retry ladder.
//!
//! The paper frames method choice around failure modes (Table I's BENR
//! "out of memory" rows); this module makes the remaining failures —
//! Newton non-convergence, step-size underflow, non-finite blow-ups —
//! survivable. A [`RecoveryPolicy`] drives two mechanisms:
//!
//! * **DC homotopy** (in [`crate::dc`]): when the plain damped-Newton solve
//!   fails, a gmin-stepping continuation solves a sequence of easier systems
//!   with a shunt conductance added to every diagonal, stepping it down
//!   geometrically and warm-starting each stage from the last; if even the
//!   largest gmin fails, a source-stepping ramp scales the independent
//!   sources from a fraction up to full strength.
//! * **Transient retry ladder** (in [`crate::Simulator::transient_observed`]):
//!   a failed run is retried with (1) the step floor cut back past the
//!   nominal `h_min`, then (2) an enlarged Newton budget on top, then (3) a
//!   method fallback ER/ER-C/TRNR → BENR.
//!
//! Every escalation is counted into [`RunStats`](crate::RunStats)
//! (`recovery_attempts`, `gmin_steps`, `source_steps`, `method_fallbacks`)
//! and surfaced through [`Observer::on_recovery`](crate::Observer::on_recovery).
//!
//! The policy defaults to [`RecoveryPolicy::off`]: healthy runs execute the
//! exact instruction stream they always did (bit-identical waveforms), and
//! recovery only engages where the run would otherwise return an error.

use crate::transient::Method;

/// A recovery escalation, reported through
/// [`Observer::on_recovery`](crate::Observer::on_recovery).
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryEvent {
    /// DC Newton failed; a gmin-homotopy stage ran with this shunt
    /// conductance on the diagonal.
    GminStep {
        /// Shunt conductance of the stage (S).
        gmin: f64,
    },
    /// DC gmin homotopy was not enough; a source-stepping stage ran with the
    /// independent sources scaled to this fraction.
    SourceStep {
        /// Source scale in `(0, 1]`.
        scale: f64,
    },
    /// The transient run failed at `time`; retrying with the step floor cut
    /// back to `h_min`.
    StepCutback {
        /// Time of the failed run's error.
        time: f64,
        /// The emergency step floor used for the retry.
        h_min: f64,
    },
    /// Retrying with an enlarged Newton iteration budget.
    NewtonTightened {
        /// The retry's per-step Newton iteration limit.
        max_iterations: usize,
    },
    /// Retrying with a fallback integration method.
    MethodFallback {
        /// The method that failed.
        from: Method,
        /// The method used for the retry.
        to: Method,
    },
}

/// Configuration of the recovery ladder.
///
/// The default ([`RecoveryPolicy::off`]) disables every mechanism; use
/// [`RecoveryPolicy::standard`] for sensible escalation settings. Healthy
/// runs are unaffected either way — recovery only engages after a failure.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Master switch. When `false` every run behaves exactly as without this
    /// module (bit-identical waveforms, zero recovery counters).
    pub enabled: bool,
    /// Largest shunt conductance of the gmin-stepping homotopy (S).
    pub gmin_max: f64,
    /// Smallest gmin stage before the final gmin-free solve (S).
    pub gmin_min: f64,
    /// Geometric factor between gmin stages (e.g. `0.1` steps by decades).
    pub gmin_shrink: f64,
    /// Number of stages in the source-stepping ramp.
    pub source_ramp_steps: usize,
    /// Factor applied to `h_min` (and `h_init`) on the first transient
    /// retry — the cutback *past* the nominal floor.
    pub step_cutback: f64,
    /// Multiplier on `newton_max_iterations` for the second retry rung.
    pub newton_budget_factor: usize,
    /// Whether the last rung falls back to backward Euler.
    pub method_fallback: bool,
    /// Bounded number of whole-job retries a
    /// [`BatchRunner`](crate::BatchRunner) may apply per failed job.
    pub max_job_retries: usize,
}

impl RecoveryPolicy {
    /// Recovery disabled — the default. Healthy and failing runs alike
    /// behave exactly as if this subsystem did not exist.
    pub fn off() -> Self {
        RecoveryPolicy {
            enabled: false,
            gmin_max: 0.0,
            gmin_min: 0.0,
            gmin_shrink: 0.0,
            source_ramp_steps: 0,
            step_cutback: 1.0,
            newton_budget_factor: 1,
            method_fallback: false,
            max_job_retries: 0,
        }
    }

    /// Sensible escalation settings: gmin stepping from `1e-2` S down by
    /// decades to `1e-12` S, a 10-stage source ramp, a `1e-3` step cutback,
    /// a doubled Newton budget, method fallback on, and one batch retry.
    pub fn standard() -> Self {
        RecoveryPolicy {
            enabled: true,
            gmin_max: 1e-2,
            gmin_min: 1e-12,
            gmin_shrink: 0.1,
            source_ramp_steps: 10,
            step_cutback: 1e-3,
            newton_budget_factor: 2,
            method_fallback: true,
            max_job_retries: 1,
        }
    }

    /// `true` when the policy will never engage.
    pub fn is_off(&self) -> bool {
        !self.enabled
    }

    /// The gmin stages of the DC homotopy, largest first, ending **above**
    /// `gmin_min`. Empty when the policy is off or misconfigured.
    pub(crate) fn gmin_stages(&self) -> Vec<f64> {
        let mut stages = Vec::new();
        if !self.enabled
            || self.gmin_max <= 0.0
            || !(self.gmin_shrink > 0.0 && self.gmin_shrink < 1.0)
        {
            return stages;
        }
        let mut g = self.gmin_max;
        while g >= self.gmin_min && g > 0.0 && stages.len() < 64 {
            stages.push(g);
            g *= self.gmin_shrink;
        }
        stages
    }

    /// Whether a transient error is worth retrying: numerical failures that
    /// smaller steps, more Newton iterations, or a sturdier method may cure.
    pub(crate) fn transient_retryable(err: &crate::SimError) -> bool {
        matches!(
            err,
            crate::SimError::NewtonDidNotConverge { .. }
                | crate::SimError::StepSizeUnderflow { .. }
                | crate::SimError::NonFinite { .. }
        )
    }

    /// The fallback method for the last ladder rung, or `None` when `from`
    /// is already the sturdiest choice.
    pub(crate) fn fallback_method(from: Method) -> Option<Method> {
        match from {
            Method::BackwardEuler => None,
            _ => Some(Method::BackwardEuler),
        }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimError;

    #[test]
    fn default_policy_is_off_and_has_no_stages() {
        let p = RecoveryPolicy::default();
        assert!(p.is_off());
        assert!(p.gmin_stages().is_empty());
    }

    #[test]
    fn standard_policy_steps_gmin_down_by_decades() {
        let p = RecoveryPolicy::standard();
        assert!(!p.is_off());
        let stages = p.gmin_stages();
        assert_eq!(stages.len(), 11, "{stages:?}");
        assert!((stages[0] - 1e-2).abs() < 1e-15);
        assert!(stages.windows(2).all(|w| w[1] < w[0]));
        assert!(*stages.last().unwrap() >= p.gmin_min * 0.99);
    }

    #[test]
    fn retryable_errors_are_the_numerical_ones() {
        assert!(RecoveryPolicy::transient_retryable(
            &SimError::StepSizeUnderflow {
                time: 0.0,
                step: 1e-20
            }
        ));
        assert!(RecoveryPolicy::transient_retryable(
            &SimError::NewtonDidNotConverge {
                time: 0.0,
                step: 0.0,
                iterations: 30
            }
        ));
        assert!(!RecoveryPolicy::transient_retryable(
            &SimError::InvalidOptions {
                message: "x".into()
            }
        ));
    }

    #[test]
    fn fallback_ladder_ends_at_backward_euler() {
        assert_eq!(
            RecoveryPolicy::fallback_method(Method::ExponentialRosenbrock),
            Some(Method::BackwardEuler)
        );
        assert_eq!(
            RecoveryPolicy::fallback_method(Method::Trapezoidal),
            Some(Method::BackwardEuler)
        );
        assert_eq!(RecoveryPolicy::fallback_method(Method::BackwardEuler), None);
    }
}
