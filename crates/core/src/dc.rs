//! DC operating-point analysis.
//!
//! Both the BENR baseline and the ER engines start a transient run from the
//! operating point `x(0)` that solves the static system `f(x) = B·u(0)`
//! (Algorithm 2 line 2). A damped Newton–Raphson iteration is used; when the
//! plain iteration struggles, a Levenberg-style diagonal damping term is added
//! to the Jacobian, which plays the practical role of SPICE's gmin stepping.
//!
//! The Jacobian's sparsity pattern is fixed across Newton iterations (it only
//! changes when the damping term switches on or off), so after the first
//! iteration the LU factorization runs through the cached-symbolic
//! refactorization path. When driven by a [`crate::Simulator`] session the
//! factorizations go through the session's conductance-matrix cache, so the
//! final DC factor seeds every later transient run — circuits whose
//! conductance pattern matches never pay for a second symbolic analysis.

use exi_netlist::{Circuit, EvalPlan, EvalWorkspace};
use exi_sparse::{vector, CsrMatrix, LuOptions, LuWorkspace, SymbolicCache};

use crate::engines::{refresh_lu, LuSlot, RetainedFactors};
use crate::error::{SimError, SimResult};
use crate::options::DcOptions;
use crate::stats::RunStats;

/// Outcome of a DC operating-point analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    /// The operating-point state vector.
    pub state: Vec<f64>,
    /// Newton iterations spent.
    pub iterations: usize,
    /// Infinity norm of the final KCL residual `f(x) − B·u(0)`.
    pub residual: f64,
}

/// Computes the DC operating point of `circuit` at `t = 0`.
///
/// # Errors
///
/// * [`SimError::Netlist`] / [`SimError::Sparse`] for evaluation or
///   factorization failures.
/// * [`SimError::NewtonDidNotConverge`] if the iteration does not converge
///   within `options.max_iterations`.
///
/// # Examples
///
/// ```
/// use exi_netlist::{Circuit, Waveform};
/// use exi_sim::{dc_operating_point, DcOptions};
///
/// # fn main() -> Result<(), exi_sim::SimError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// let gnd = ckt.node("0");
/// ckt.add_voltage_source("V1", a, gnd, Waveform::Dc(2.0))?;
/// ckt.add_resistor("R1", a, b, 1e3)?;
/// ckt.add_resistor("R2", b, gnd, 1e3)?;
/// let dc = dc_operating_point(&ckt, &DcOptions::default())?;
/// assert!((dc.state[1] - 1.0).abs() < 1e-9); // resistive divider
/// # Ok(())
/// # }
/// ```
pub fn dc_operating_point(circuit: &Circuit, options: &DcOptions) -> SimResult<DcSolution> {
    let mut stats = RunStats::new();
    let mut lu_cache = LuSlot::default();
    let mut retained = RetainedFactors::default();
    let mut lu_ws = LuWorkspace::new();
    let plan = circuit.compile_plan()?;
    stats.plan_compilations += 1;
    let mut eval_ws = plan.new_workspace();
    dc_operating_point_internal(
        circuit,
        &plan,
        options,
        &mut stats,
        &mut lu_cache,
        &mut retained,
        None,
        &mut lu_ws,
        &mut eval_ws,
        &Homotopy::plain(),
    )
}

/// Continuation parameters of one homotopy stage. [`Homotopy::plain`] is the
/// identity stage: zero shunt conductance, full-strength sources, cold start.
/// The plain stage takes the exact code path the solver always took — every
/// homotopy term is behind a branch — so recovery-off runs stay
/// bit-identical.
#[derive(Debug, Clone)]
pub(crate) struct Homotopy<'a> {
    /// Shunt conductance added to every diagonal (gmin stepping), in S.
    pub gmin: f64,
    /// Scale applied to the independent sources (source stepping), in `(0, 1]`.
    pub source_scale: f64,
    /// Warm-start state (the previous stage's solution), or `None` for zeros.
    pub x0: Option<&'a [f64]>,
}

impl Homotopy<'_> {
    pub(crate) fn plain() -> Self {
        Homotopy {
            gmin: 0.0,
            source_scale: 1.0,
            x0: None,
        }
    }
}

/// As [`dc_operating_point_internal`], escalating through the
/// [`RecoveryPolicy`](crate::RecoveryPolicy) homotopy ladder when the plain
/// damped-Newton solve fails: gmin stepping first (largest shunt conductance
/// to smallest, each stage warm-started from the last, finishing with a
/// warm-started gmin-free solve), then a source-stepping ramp. Counts every
/// stage into `stats` and returns the *original* error when the whole ladder
/// fails.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dc_operating_point_recovering(
    circuit: &Circuit,
    plan: &EvalPlan,
    options: &DcOptions,
    policy: &crate::RecoveryPolicy,
    stats: &mut RunStats,
    lu_cache: &mut LuSlot,
    retained: &mut RetainedFactors,
    shared: Option<&SymbolicCache>,
    lu_ws: &mut LuWorkspace,
    eval_ws: &mut EvalWorkspace,
) -> SimResult<DcSolution> {
    let plain = dc_operating_point_internal(
        circuit,
        plan,
        options,
        stats,
        lu_cache,
        retained,
        shared,
        lu_ws,
        eval_ws,
        &Homotopy::plain(),
    );
    let err = match plain {
        Ok(dc) => return Ok(dc),
        Err(e) if policy.is_off() => return Err(e),
        Err(e) => e,
    };

    // --- Gmin stepping: solve easier shunted systems, tracking the solution
    // as the shunt steps down, then drop the shunt entirely. ---
    let stages = policy.gmin_stages();
    if !stages.is_empty() {
        stats.recovery_attempts += 1;
        let mut warm: Option<Vec<f64>> = None;
        let mut ladder_ok = true;
        for &gmin in &stages {
            stats.gmin_steps += 1;
            let stage = dc_operating_point_internal(
                circuit,
                plan,
                options,
                stats,
                lu_cache,
                retained,
                shared,
                lu_ws,
                eval_ws,
                &Homotopy {
                    gmin,
                    source_scale: 1.0,
                    x0: warm.as_deref(),
                },
            );
            match stage {
                Ok(dc) => warm = Some(dc.state),
                Err(_) => {
                    ladder_ok = false;
                    break;
                }
            }
        }
        if ladder_ok {
            if let Ok(dc) = dc_operating_point_internal(
                circuit,
                plan,
                options,
                stats,
                lu_cache,
                retained,
                shared,
                lu_ws,
                eval_ws,
                &Homotopy {
                    gmin: 0.0,
                    source_scale: 1.0,
                    x0: warm.as_deref(),
                },
            ) {
                return Ok(dc);
            }
        }
    }

    // --- Source stepping: ramp the independent sources up from a fraction,
    // following the solution branch from the trivial zero-input system. ---
    if policy.source_ramp_steps > 0 {
        stats.recovery_attempts += 1;
        let mut warm: Option<Vec<f64>> = None;
        let ramp = policy.source_ramp_steps;
        for k in 1..=ramp {
            stats.source_steps += 1;
            let scale = k as f64 / ramp as f64;
            let stage = dc_operating_point_internal(
                circuit,
                plan,
                options,
                stats,
                lu_cache,
                retained,
                shared,
                lu_ws,
                eval_ws,
                &Homotopy {
                    gmin: 0.0,
                    source_scale: scale,
                    x0: warm.as_deref(),
                },
            );
            match stage {
                Ok(dc) if k == ramp => return Ok(dc),
                Ok(dc) => warm = Some(dc.state),
                Err(_) => break,
            }
        }
    }

    Err(err)
}

/// As [`dc_operating_point`], additionally accounting every device
/// evaluation, Newton iteration and (re)factorization into `stats` and
/// running the Jacobian factorizations through a caller-owned LU cache and
/// workspace — the [`crate::Simulator`] session passes its conductance-matrix
/// cache here, so the symbolic analysis the DC solve performs is reused by
/// every later transient step (and every later run). A `shared` symbolic
/// cache, when provided, additionally pools the analysis across concurrent
/// sessions (see [`crate::BatchRunner`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn dc_operating_point_internal(
    circuit: &Circuit,
    plan: &EvalPlan,
    options: &DcOptions,
    stats: &mut RunStats,
    lu_cache: &mut LuSlot,
    retained: &mut RetainedFactors,
    shared: Option<&SymbolicCache>,
    lu_ws: &mut LuWorkspace,
    eval_ws: &mut EvalWorkspace,
    homotopy: &Homotopy<'_>,
) -> SimResult<DcSolution> {
    let n = circuit.num_unknowns();
    let b = plan.input_matrix();
    let u0 = circuit.input_vector(0.0);
    let mut bu = b.mul_vec(&u0);
    // Source stepping scales the whole input vector; the plain stage
    // (scale = 1) skips the multiply so its values are bit-identical.
    if homotopy.source_scale != 1.0 {
        for v in bu.iter_mut() {
            *v *= homotopy.source_scale;
        }
    }
    let gmin = homotopy.gmin;
    let mut x = match homotopy.x0 {
        Some(x0) => x0.to_vec(),
        None => vec![0.0; n],
    };
    let mut damping = 0.0;
    let mut previous_residual = f64::INFINITY;

    let lu_options = LuOptions {
        ordering: options.ordering,
        ..LuOptions::default()
    };
    let mut rhs = vec![0.0; n];
    let mut delta = vec![0.0; n];
    let mut ev = plan.new_evaluation();

    for iter in 1..=options.max_iterations {
        stats.restamped_entries += plan.evaluate_into(&x, eval_ws, &mut ev)?;
        stats.device_evaluations += 1;
        #[cfg(feature = "fault-injection")]
        crate::fault::on_device_eval(&mut ev);
        for i in 0..n {
            rhs[i] = bu[i] - ev.f[i];
        }
        // Gmin stepping sees the shunt's current in the residual; the plain
        // stage (gmin = 0) skips the loop entirely.
        if gmin != 0.0 {
            for i in 0..n {
                rhs[i] -= gmin * x[i];
            }
        }
        let residual_norm = vector::norm_inf(&rhs);
        // Adaptive Levenberg damping: engage when the residual grows or the
        // iteration produced non-finite values.
        if !residual_norm.is_finite() || residual_norm > 10.0 * previous_residual {
            damping = if damping == 0.0 {
                options.fallback_damping
            } else {
                damping * 10.0
            };
        }
        previous_residual = residual_norm.min(previous_residual);

        // The cold Levenberg fallback allocates its damped Jacobian; the
        // common path factorizes the restamped `G` directly. The homotopy
        // shunt rides on the same diagonal term.
        let diag_shift = if gmin != 0.0 { damping + gmin } else { damping };
        let damped;
        let jac = if diag_shift > 0.0 {
            let scaled_identity = CsrMatrix::identity(n).scaled(diag_shift);
            damped = CsrMatrix::linear_combination(1.0, &ev.g, 1.0, &scaled_identity)?;
            &damped
        } else {
            &ev.g
        };
        refresh_lu(lu_cache, retained, shared, jac, &lu_options, lu_ws, stats)?;
        let lu = lu_cache.get().expect("refresh_lu populated the cache");
        lu.solve_into(&rhs, &mut delta, lu_ws)?;
        stats.linear_solves += 1;
        // Simple voltage limiting keeps exponential devices in range.
        for d in delta.iter_mut() {
            if d.abs() > options.max_update {
                *d = options.max_update * d.signum();
            }
            if !d.is_finite() {
                *d = 0.0;
            }
        }
        let update_norm = vector::norm_inf(&delta);
        vector::axpy(1.0, &delta, &mut x);
        stats.newton_iterations += 1;
        if update_norm < options.tolerance && residual_norm.is_finite() {
            // Recompute the residual at the converged point for reporting.
            stats.restamped_entries += plan.evaluate_into(&x, eval_ws, &mut ev)?;
            stats.device_evaluations += 1;
            let final_residual = vector::norm_inf(&vector::sub(&bu, &ev.f));
            return Ok(DcSolution {
                state: x,
                iterations: iter,
                residual: final_residual,
            });
        }
    }
    Err(SimError::NewtonDidNotConverge {
        time: 0.0,
        step: 0.0,
        iterations: options.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_netlist::{DiodeModel, MosfetModel, Waveform};

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V1", a, gnd, Waveform::Dc(3.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 2e3).unwrap();
        ckt.add_resistor("R2", b, gnd, 1e3).unwrap();
        let dc = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        assert!((dc.state[0] - 3.0).abs() < 1e-9);
        assert!((dc.state[1] - 1.0).abs() < 1e-9);
        // Source branch current = -(3/3k) (current flows out of the source).
        assert!((dc.state[2] + 1e-3).abs() < 1e-9);
        assert!(dc.residual < 1e-9);
    }

    #[test]
    fn diode_forward_drop() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V1", a, gnd, Waveform::Dc(2.0))
            .unwrap();
        ckt.add_resistor("R1", a, d, 1e3).unwrap();
        ckt.add_diode("D1", d, gnd, DiodeModel::default()).unwrap();
        let dc = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let vd = dc.state[1];
        // Forward drop of a silicon-like diode at ~1 mA.
        assert!(vd > 0.5 && vd < 0.8, "vd = {vd}");
        assert!(dc.residual < 1e-9);
    }

    #[test]
    fn cmos_inverter_output_levels() {
        // Input low -> output close to vdd; input high -> output close to 0.
        for (vin, expect_high) in [(0.0, true), (1.0, false)] {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let inp = ckt.node("in");
            let out = ckt.node("out");
            let gnd = ckt.node("0");
            ckt.add_voltage_source("Vdd", vdd, gnd, Waveform::Dc(1.0))
                .unwrap();
            ckt.add_voltage_source("Vin", inp, gnd, Waveform::Dc(vin))
                .unwrap();
            ckt.add_mosfet("MN", out, inp, gnd, MosfetModel::nmos())
                .unwrap();
            ckt.add_mosfet("MP", out, inp, vdd, MosfetModel::pmos())
                .unwrap();
            ckt.add_resistor("Rload", out, gnd, 1e8).unwrap();
            let dc = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
            let vout = dc.state[ckt.unknown_of("out").unwrap()];
            if expect_high {
                assert!(vout > 0.9, "vin = {vin}: vout = {vout}");
            } else {
                assert!(vout < 0.1, "vin = {vin}: vout = {vout}");
            }
        }
    }

    #[test]
    fn newton_iterations_reuse_the_symbolic_analysis() {
        // A nonlinear circuit needs several Newton iterations whose Jacobian
        // values change but whose pattern does not: exactly one symbolic
        // analysis, all later iterations numeric-only.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V1", a, gnd, Waveform::Dc(2.0))
            .unwrap();
        ckt.add_resistor("R1", a, d, 1e3).unwrap();
        ckt.add_diode("D1", d, gnd, DiodeModel::default()).unwrap();
        let mut stats = RunStats::new();
        let mut lu = LuSlot::default();
        let mut retained = RetainedFactors::default();
        let mut ws = LuWorkspace::new();
        let plan = ckt.compile_plan().unwrap();
        let mut eval_ws = plan.new_workspace();
        let dc = dc_operating_point_internal(
            &ckt,
            &plan,
            &DcOptions::default(),
            &mut stats,
            &mut lu,
            &mut retained,
            None,
            &mut ws,
            &mut eval_ws,
            &Homotopy::plain(),
        )
        .unwrap();
        assert!(dc.iterations > 1);
        // At most one extra symbolic analysis when the Levenberg damping
        // kicks in and changes the Jacobian pattern; all other iterations
        // run numeric-only.
        assert!(stats.symbolic_analyses <= 2, "{stats:?}");
        assert_eq!(
            stats.lu_refactorizations,
            stats.lu_factorizations - stats.symbolic_analyses
        );
        assert!(
            stats.lu_refactorizations > stats.symbolic_analyses,
            "{stats:?}"
        );
        assert!(lu.get().is_some());
    }

    #[test]
    fn fails_gracefully_when_not_converging() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V1", a, gnd, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, gnd, 1e3).unwrap();
        // Absurd iteration limit forces the failure path.
        let opts = DcOptions {
            max_iterations: 1,
            tolerance: 1e-30,
            ..DcOptions::default()
        };
        assert!(matches!(
            dc_operating_point(&ckt, &opts),
            Err(SimError::NewtonDidNotConverge { .. })
        ));
    }
}
