//! Analysis options.

use exi_sparse::ordering::OrderingMethod;

use crate::error::{SimError, SimResult};

/// Options shared by all transient integration engines.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// End of the simulated interval (seconds); the analysis runs over `[0, t_stop]`.
    pub t_stop: f64,
    /// Initial step size (seconds).
    pub h_init: f64,
    /// Smallest step size the adaptive control may use before giving up.
    pub h_min: f64,
    /// Largest step size the adaptive control may grow to.
    pub h_max: f64,
    /// Local error budget `Err` (paper Algorithm 2) in the infinity norm.
    pub error_budget: f64,
    /// Convergence tolerance ε of the Krylov MEVP (paper Algorithm 1; the
    /// experiments use `1e-7`).
    pub krylov_tolerance: f64,
    /// Maximum Krylov subspace dimension.
    pub krylov_max_dimension: usize,
    /// Maximum Newton–Raphson iterations per time step (implicit methods).
    pub newton_max_iterations: usize,
    /// Newton update norm below which the iteration is declared converged.
    pub newton_tolerance: f64,
    /// Step shrink factor α applied on rejection (paper uses 1/2).
    pub shrink_factor: f64,
    /// Step growth factor β applied after easy steps (paper uses 2).
    pub growth_factor: f64,
    /// A step is "easy" (eligible for growth) if it needed at most this many
    /// rejections (ER) or Newton iterations minus one (BENR).
    pub easy_step_threshold: usize,
    /// Correction coefficient γ of the ER-C method (paper uses 0.1).
    pub correction_gamma: f64,
    /// Fill-reducing ordering used for every LU factorization.
    pub ordering: OrderingMethod,
    /// Optional bound on LU fill (`nnz(L) + nnz(U)`), emulating a memory
    /// budget. `None` means unlimited.
    pub fill_budget: Option<usize>,
    /// Record the full state vector at every accepted step (in addition to
    /// the probed nodes). Costs memory on large circuits.
    pub record_full_states: bool,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            t_stop: 1e-9,
            h_init: 1e-12,
            h_min: 1e-18,
            h_max: 1e-10,
            error_budget: 1e-4,
            krylov_tolerance: 1e-7,
            krylov_max_dimension: 120,
            newton_max_iterations: 30,
            newton_tolerance: 1e-9,
            shrink_factor: 0.5,
            growth_factor: 2.0,
            easy_step_threshold: 1,
            correction_gamma: 0.1,
            ordering: OrderingMethod::Rcm,
            fill_budget: None,
            record_full_states: false,
        }
    }
}

impl TransientOptions {
    /// Convenience constructor for a span `[0, t_stop]` with an initial step.
    pub fn new(t_stop: f64, h_init: f64) -> Self {
        TransientOptions {
            t_stop,
            h_init,
            h_max: t_stop / 10.0,
            ..TransientOptions::default()
        }
    }

    /// Validates the option set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidOptions`] describing the first inconsistency
    /// found.
    pub fn validate(&self) -> SimResult<()> {
        let fail = |message: &str| {
            Err(SimError::InvalidOptions {
                message: message.to_string(),
            })
        };
        // NaN-aware: a NaN value fails the `positive` test and is rejected.
        let positive = |v: f64| v > 0.0;
        if !positive(self.t_stop) {
            return fail("t_stop must be positive");
        }
        if !positive(self.h_init) || self.h_init > self.t_stop {
            return fail("h_init must be positive and no larger than t_stop");
        }
        if !positive(self.h_min) || self.h_min > self.h_init {
            return fail("h_min must be positive and no larger than h_init");
        }
        if self.h_max < self.h_init {
            return fail("h_max must be at least h_init");
        }
        if !positive(self.error_budget) {
            return fail("error_budget must be positive");
        }
        if !(positive(self.shrink_factor) && self.shrink_factor < 1.0) {
            return fail("shrink_factor must lie in (0, 1)");
        }
        if self.growth_factor < 1.0 {
            return fail("growth_factor must be at least 1");
        }
        if self.newton_max_iterations == 0 {
            return fail("newton_max_iterations must be at least 1");
        }
        Ok(())
    }
}

/// Options for the DC operating-point solver.
#[derive(Debug, Clone, PartialEq)]
pub struct DcOptions {
    /// Maximum Newton iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the update infinity norm.
    pub tolerance: f64,
    /// Largest per-entry Newton update (simple damping that keeps exponential
    /// devices from overflowing).
    pub max_update: f64,
    /// Fill-reducing ordering used for the Jacobian factorization.
    pub ordering: OrderingMethod,
    /// Levenberg-style diagonal damping added when the plain iteration
    /// diverges (a pragmatic stand-in for gmin stepping).
    pub fallback_damping: f64,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            max_iterations: 200,
            tolerance: 1e-9,
            max_update: 0.5,
            ordering: OrderingMethod::Rcm,
            fallback_damping: 1e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_valid() {
        assert!(TransientOptions::default().validate().is_ok());
        let o = TransientOptions::new(1e-8, 1e-12);
        assert!(o.validate().is_ok());
        assert_eq!(o.t_stop, 1e-8);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let base = TransientOptions::default();
        for bad in [
            TransientOptions {
                t_stop: 0.0,
                ..base.clone()
            },
            TransientOptions {
                h_init: -1.0,
                ..base.clone()
            },
            TransientOptions {
                h_init: 1.0,
                ..base.clone()
            },
            TransientOptions {
                h_min: 0.0,
                ..base.clone()
            },
            TransientOptions {
                h_max: 1e-15,
                ..base.clone()
            },
            TransientOptions {
                error_budget: 0.0,
                ..base.clone()
            },
            TransientOptions {
                shrink_factor: 1.5,
                ..base.clone()
            },
            TransientOptions {
                growth_factor: 0.5,
                ..base.clone()
            },
            TransientOptions {
                newton_max_iterations: 0,
                ..base.clone()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn dc_defaults_are_sensible() {
        let d = DcOptions::default();
        assert!(d.max_iterations >= 50);
        assert!(d.tolerance < 1e-6);
    }
}
