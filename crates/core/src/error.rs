//! Error types for the simulation engines.

use std::error::Error;
use std::fmt;

use exi_krylov::KrylovError;
use exi_netlist::NetlistError;
use exi_sparse::SparseError;

/// Errors produced by DC and transient analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Error raised while evaluating the circuit.
    Netlist(NetlistError),
    /// Error raised by the sparse linear algebra kernels (factorization,
    /// solves). A `FillBudgetExceeded` here is how the benchmark harness
    /// observes the "out of memory" failures reported for BENR in Table I.
    Sparse(SparseError),
    /// Error raised by the Krylov / matrix exponential kernels.
    Krylov(KrylovError),
    /// The Newton–Raphson iteration did not converge even at the minimum
    /// allowed step size.
    NewtonDidNotConverge {
        /// Simulation time at which convergence failed.
        time: f64,
        /// Step size at the failure.
        step: f64,
        /// Iterations spent in the last attempt.
        iterations: usize,
    },
    /// The adaptive step-size control shrank the step below the allowed
    /// minimum without meeting the error budget.
    StepSizeUnderflow {
        /// Simulation time at which the step collapsed.
        time: f64,
        /// The step size that was reached.
        step: f64,
    },
    /// The requested analysis has inconsistent options (for example a zero
    /// simulation span or a non-positive initial step).
    InvalidOptions {
        /// Description of the inconsistency.
        message: String,
    },
    /// A device evaluation or a solver update produced a NaN/Inf value.
    /// Detected at the stamp and solution boundaries so the offending state
    /// never propagates into the waveform.
    NonFinite {
        /// Simulation time at which the non-finite value appeared (`0.0` for
        /// the DC solve).
        time: f64,
        /// Label of the circuit object whose value went non-finite (node,
        /// branch device, or device instance), when it could be attributed.
        device: Option<String>,
    },
    /// The MNA system is singular — attributed form of
    /// [`SparseError::Singular`] that names the circuit unknown. Produced by
    /// [`SimError::attributed`] at the run entry points.
    SingularSystem {
        /// MNA unknown index (original column order), when known.
        unknown: Option<usize>,
        /// Column in factorization order at which the pivot failed.
        column: usize,
        /// Circuit-level label of the unknown (e.g. `node 'out'` or
        /// `branch current of 'V1'`).
        label: Option<String>,
    },
}

impl SimError {
    /// Attributes low-level failures to circuit objects: a
    /// [`SparseError::Singular`] whose original-column index is known becomes
    /// [`SimError::SingularSystem`] carrying the node or branch-device label.
    /// Other errors pass through unchanged. Run entry points call this so the
    /// error a user sees names `node 'out'`, not "factorization column 17".
    #[must_use]
    pub fn attributed(self, circuit: &exi_netlist::Circuit) -> SimError {
        let (column, unknown) = match &self {
            SimError::Sparse(SparseError::Singular { column, unknown })
            | SimError::Krylov(KrylovError::Sparse(SparseError::Singular { column, unknown })) => {
                (*column, *unknown)
            }
            _ => return self,
        };
        SimError::SingularSystem {
            unknown,
            column,
            label: unknown.and_then(|j| circuit.unknown_label(j)),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Netlist(e) => write!(f, "netlist error: {e}"),
            SimError::Sparse(e) => write!(f, "sparse kernel error: {e}"),
            SimError::Krylov(e) => write!(f, "krylov kernel error: {e}"),
            SimError::NewtonDidNotConverge { time, step, iterations } => write!(
                f,
                "newton iteration did not converge at t = {time:.3e} s (h = {step:.3e} s, {iterations} iterations)"
            ),
            SimError::StepSizeUnderflow { time, step } => {
                write!(f, "step size underflow at t = {time:.3e} s (h = {step:.3e} s)")
            }
            SimError::InvalidOptions { message } => write!(f, "invalid options: {message}"),
            SimError::NonFinite { time, device } => match device {
                Some(d) => write!(
                    f,
                    "non-finite value (NaN/Inf) at t = {time:.3e} s near {d}"
                ),
                None => write!(f, "non-finite value (NaN/Inf) at t = {time:.3e} s"),
            },
            SimError::SingularSystem {
                unknown,
                column,
                label,
            } => {
                write!(f, "singular MNA system: no viable pivot")?;
                if let Some(l) = label {
                    write!(f, " for {l}")?;
                } else if let Some(j) = unknown {
                    write!(f, " for unknown {j}")?;
                }
                write!(f, " (factorization column {column})")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Netlist(e) => Some(e),
            SimError::Sparse(e) => Some(e),
            SimError::Krylov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(e: NetlistError) -> Self {
        SimError::Netlist(e)
    }
}

impl From<SparseError> for SimError {
    fn from(e: SparseError) -> Self {
        SimError::Sparse(e)
    }
}

impl From<KrylovError> for SimError {
    fn from(e: KrylovError) -> Self {
        SimError::Krylov(e)
    }
}

/// Result alias for this crate.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SimError = NetlistError::EmptyCircuit.into();
        assert!(e.to_string().contains("netlist"));
        assert!(e.source().is_some());
        let e: SimError = SparseError::Singular {
            column: 0,
            unknown: None,
        }
        .into();
        assert!(e.to_string().contains("singular"));
        let e: SimError = KrylovError::ZeroStartVector.into();
        assert!(e.to_string().contains("krylov"));
        let e = SimError::NewtonDidNotConverge {
            time: 1e-9,
            step: 1e-12,
            iterations: 50,
        };
        assert!(e.to_string().contains("newton"));
        let e = SimError::StepSizeUnderflow {
            time: 0.0,
            step: 1e-20,
        };
        assert!(e.to_string().contains("underflow"));
        let e = SimError::InvalidOptions {
            message: "t_stop must be positive".into(),
        };
        assert!(e.to_string().contains("t_stop"));
        assert!(e.source().is_none());
        let e = SimError::NonFinite {
            time: 1e-9,
            device: Some("node 'out'".into()),
        };
        assert!(e.to_string().contains("node 'out'"), "{e}");
        let e = SimError::SingularSystem {
            unknown: Some(2),
            column: 0,
            label: Some("node 'mid'".into()),
        };
        assert!(e.to_string().contains("node 'mid'"), "{e}");
    }

    #[test]
    fn attributed_names_the_circuit_node() {
        use exi_netlist::Waveform;
        let mut ckt = exi_netlist::Circuit::new();
        let a = ckt.node("a");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V1", a, gnd, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, gnd, 1e-12).unwrap();
        // Unknown 1 is node 'out'; unknown 2 is V1's branch current.
        let e: SimError = SparseError::Singular {
            column: 0,
            unknown: Some(1),
        }
        .into();
        let attributed = e.attributed(&ckt);
        assert!(
            attributed.to_string().contains("node 'out'"),
            "{attributed}"
        );
        let e: SimError = SparseError::Singular {
            column: 0,
            unknown: Some(2),
        }
        .into();
        assert!(
            e.attributed(&ckt)
                .to_string()
                .contains("branch current of 'V1'"),
            "branch attribution"
        );
        // Non-singular errors pass through untouched.
        let e = SimError::InvalidOptions {
            message: "x".into(),
        };
        assert!(matches!(
            e.attributed(&ckt),
            SimError::InvalidOptions { .. }
        ));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
