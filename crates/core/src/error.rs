//! Error types for the simulation engines.

use std::error::Error;
use std::fmt;

use exi_krylov::KrylovError;
use exi_netlist::NetlistError;
use exi_sparse::SparseError;

/// Errors produced by DC and transient analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Error raised while evaluating the circuit.
    Netlist(NetlistError),
    /// Error raised by the sparse linear algebra kernels (factorization,
    /// solves). A `FillBudgetExceeded` here is how the benchmark harness
    /// observes the "out of memory" failures reported for BENR in Table I.
    Sparse(SparseError),
    /// Error raised by the Krylov / matrix exponential kernels.
    Krylov(KrylovError),
    /// The Newton–Raphson iteration did not converge even at the minimum
    /// allowed step size.
    NewtonDidNotConverge {
        /// Simulation time at which convergence failed.
        time: f64,
        /// Step size at the failure.
        step: f64,
        /// Iterations spent in the last attempt.
        iterations: usize,
    },
    /// The adaptive step-size control shrank the step below the allowed
    /// minimum without meeting the error budget.
    StepSizeUnderflow {
        /// Simulation time at which the step collapsed.
        time: f64,
        /// The step size that was reached.
        step: f64,
    },
    /// The requested analysis has inconsistent options (for example a zero
    /// simulation span or a non-positive initial step).
    InvalidOptions {
        /// Description of the inconsistency.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Netlist(e) => write!(f, "netlist error: {e}"),
            SimError::Sparse(e) => write!(f, "sparse kernel error: {e}"),
            SimError::Krylov(e) => write!(f, "krylov kernel error: {e}"),
            SimError::NewtonDidNotConverge { time, step, iterations } => write!(
                f,
                "newton iteration did not converge at t = {time:.3e} s (h = {step:.3e} s, {iterations} iterations)"
            ),
            SimError::StepSizeUnderflow { time, step } => {
                write!(f, "step size underflow at t = {time:.3e} s (h = {step:.3e} s)")
            }
            SimError::InvalidOptions { message } => write!(f, "invalid options: {message}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Netlist(e) => Some(e),
            SimError::Sparse(e) => Some(e),
            SimError::Krylov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(e: NetlistError) -> Self {
        SimError::Netlist(e)
    }
}

impl From<SparseError> for SimError {
    fn from(e: SparseError) -> Self {
        SimError::Sparse(e)
    }
}

impl From<KrylovError> for SimError {
    fn from(e: KrylovError) -> Self {
        SimError::Krylov(e)
    }
}

/// Result alias for this crate.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SimError = NetlistError::EmptyCircuit.into();
        assert!(e.to_string().contains("netlist"));
        assert!(e.source().is_some());
        let e: SimError = SparseError::Singular { column: 0 }.into();
        assert!(e.to_string().contains("singular"));
        let e: SimError = KrylovError::ZeroStartVector.into();
        assert!(e.to_string().contains("krylov"));
        let e = SimError::NewtonDidNotConverge {
            time: 1e-9,
            step: 1e-12,
            iterations: 50,
        };
        assert!(e.to_string().contains("newton"));
        let e = SimError::StepSizeUnderflow {
            time: 0.0,
            step: 1e-20,
        };
        assert!(e.to_string().contains("underflow"));
        let e = SimError::InvalidOptions {
            message: "t_stop must be positive".into(),
        };
        assert!(e.to_string().contains("t_stop"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
