//! Transient analysis results: probed waveforms and run statistics.

use crate::stats::RunStats;

/// A node (or branch) selected for waveform recording.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    /// Human-readable label, usually the node name.
    pub label: String,
    /// Index of the unknown in the MNA state vector.
    pub unknown: usize,
}

impl Probe {
    /// Creates a probe for the given unknown index.
    pub fn new(label: impl Into<String>, unknown: usize) -> Self {
        Probe {
            label: label.into(),
            unknown,
        }
    }
}

/// Result of a transient analysis.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Accepted time points, starting at `t = 0`.
    pub times: Vec<f64>,
    /// The probes that were recorded (columns of `samples`).
    pub probes: Vec<Probe>,
    /// One row per time point with the probed values.
    pub samples: Vec<Vec<f64>>,
    /// Full state snapshots (only if requested in the options).
    pub full_states: Vec<Vec<f64>>,
    /// The state vector at the final time point.
    pub final_state: Vec<f64>,
    /// Counters collected during the run.
    pub stats: RunStats,
}

impl TransientResult {
    /// Number of accepted time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if no time points were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The waveform of probe `p` as `(time, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn waveform(&self, p: usize) -> Vec<(f64, f64)> {
        assert!(p < self.probes.len(), "probe index out of range");
        self.times
            .iter()
            .zip(self.samples.iter())
            .map(|(&t, row)| (t, row[p]))
            .collect()
    }

    /// Linearly interpolates the value of probe `p` at time `t` (clamped to
    /// the simulated interval).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or the result is empty.
    pub fn sample_at(&self, p: usize, t: f64) -> f64 {
        assert!(p < self.probes.len(), "probe index out of range");
        assert!(!self.is_empty(), "empty result");
        if t <= self.times[0] {
            return self.samples[0][p];
        }
        // Binary search for the first time point >= t; `times` is sorted by
        // construction (accepted steps are monotone). A NaN query fails every
        // comparison and clamps to the final sample, like the clauses above.
        let k = self.times.partition_point(|&ti| ti < t);
        if k == 0 || k >= self.times.len() {
            // NaN or past the simulated interval: clamp to the final sample.
            return self.samples[self.times.len() - 1][p];
        }
        let (t0, t1) = (self.times[k - 1], self.times[k]);
        let (v0, v1) = (self.samples[k - 1][p], self.samples[k][p]);
        if t1 <= t0 {
            return v1;
        }
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Finds the probe index with the given label.
    pub fn probe_index(&self, label: &str) -> Option<usize> {
        self.probes.iter().position(|p| p.label == label)
    }

    /// Maximum absolute difference between probe `p` of `self` and the same
    /// probe of a reference result, comparing at the reference's time points.
    ///
    /// # Panics
    ///
    /// Panics if either result is empty or the probe index is out of range.
    pub fn max_error_vs(&self, reference: &TransientResult, p: usize) -> f64 {
        reference
            .times
            .iter()
            .zip(reference.samples.iter())
            .fold(0.0_f64, |acc, (&t, row)| {
                acc.max((self.sample_at(p, t) - row[p]).abs())
            })
    }

    /// Root-mean-square difference against a reference result for probe `p`,
    /// sampled at the reference's time points.
    ///
    /// # Panics
    ///
    /// Panics if either result is empty or the probe index is out of range.
    pub fn rms_error_vs(&self, reference: &TransientResult, p: usize) -> f64 {
        let n = reference.times.len();
        let sum: f64 = reference
            .times
            .iter()
            .zip(reference.samples.iter())
            .map(|(&t, row)| {
                let d = self.sample_at(p, t) - row[p];
                d * d
            })
            .sum();
        (sum / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_result(times: Vec<f64>, values: Vec<f64>) -> TransientResult {
        let samples = values.iter().map(|&v| vec![v]).collect();
        TransientResult {
            times,
            probes: vec![Probe::new("out", 0)],
            samples,
            full_states: Vec::new(),
            final_state: vec![*values.last().unwrap()],
            stats: RunStats::new(),
        }
    }

    #[test]
    fn waveform_and_interpolation() {
        let r = make_result(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 0.0]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.waveform(0), vec![(0.0, 0.0), (1.0, 2.0), (2.0, 0.0)]);
        assert_eq!(r.sample_at(0, 0.5), 1.0);
        assert_eq!(r.sample_at(0, 1.5), 1.0);
        assert_eq!(r.sample_at(0, -1.0), 0.0);
        assert_eq!(r.sample_at(0, 5.0), 0.0);
        assert_eq!(r.probe_index("out"), Some(0));
        assert_eq!(r.probe_index("missing"), None);
    }

    #[test]
    fn sample_at_clamps_out_of_range_times() {
        let r = make_result(vec![0.0, 1.0, 2.0, 4.0], vec![1.0, 3.0, 5.0, 9.0]);
        // Before the first point: clamp to the first sample.
        assert_eq!(r.sample_at(0, -10.0), 1.0);
        assert_eq!(r.sample_at(0, 0.0), 1.0);
        // Past the last point: clamp to the final sample.
        assert_eq!(r.sample_at(0, 4.0), 9.0);
        assert_eq!(r.sample_at(0, 1e9), 9.0);
        // Exact hits and interior interpolation still work.
        assert_eq!(r.sample_at(0, 1.0), 3.0);
        assert_eq!(r.sample_at(0, 3.0), 7.0);
        // A NaN query clamps to the final sample instead of panicking.
        assert_eq!(r.sample_at(0, f64::NAN), 9.0);
        // Single-point result: every query returns that sample.
        let single = make_result(vec![0.5], vec![2.5]);
        assert_eq!(single.sample_at(0, 0.0), 2.5);
        assert_eq!(single.sample_at(0, 0.5), 2.5);
        assert_eq!(single.sample_at(0, 99.0), 2.5);
        assert_eq!(single.sample_at(0, f64::NAN), 2.5);
    }

    #[test]
    fn error_metrics_against_reference() {
        let reference = make_result(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]);
        let approx = make_result(vec![0.0, 2.0], vec![0.1, 2.1]);
        let max_err = approx.max_error_vs(&reference, 0);
        assert!((max_err - 0.1).abs() < 1e-12);
        let rms = approx.rms_error_vs(&reference, 0);
        assert!(rms > 0.0 && rms <= max_err + 1e-12);
        // A result compared against itself has zero error.
        assert_eq!(reference.max_error_vs(&reference, 0), 0.0);
    }
}
