//! Streaming observation of transient runs.
//!
//! The steppers ([`crate::engines::Engine`]) report their progress through an
//! [`Observer`] instead of buffering results internally. Three built-ins
//! cover the common cases:
//!
//! * [`RecordingObserver`] — accumulates every accepted point and reproduces
//!   the classic [`TransientResult`] (what [`crate::run_transient`] returns).
//! * [`StreamingObserver`] — keeps a fixed-memory, progressively decimated
//!   view of the probed waveform; suitable for arbitrarily long runs.
//! * [`CsvObserver`] — writes every accepted point as a CSV/TSV row to any
//!   [`std::io::Write`] sink as the run progresses (the `exi-cli` waveform
//!   path); memory use is fixed regardless of run length.
//! * [`NullObserver`] — discards everything; measures pure solver throughput.
//!
//! Every callback invocation is counted into
//! [`RunStats::observer_callbacks`](crate::RunStats::observer_callbacks) by
//! the calling stepper.

use std::io::Write;

use crate::output::{Probe, TransientResult};
use crate::stats::RunStats;

/// Receives simulation events as a transient run progresses.
///
/// All methods have empty default implementations, so an observer only needs
/// to override the events it cares about. The state slices are only valid for
/// the duration of the call — copy what must be kept.
pub trait Observer {
    /// The run's starting point: time `t0` (the DC operating point for a
    /// fresh run, the checkpoint time for a restarted one) and state `x0`.
    fn on_dc(&mut self, t0: f64, x0: &[f64]) {
        let _ = (t0, x0);
    }

    /// An accepted step advanced the simulation to time `t` with state `x`.
    fn on_step_accepted(&mut self, t: f64, x: &[f64]) {
        let _ = (t, x);
    }

    /// A step attempt of size `h` at time `t` was rejected (error estimator
    /// over budget or Newton non-convergence).
    fn on_step_rejected(&mut self, t: f64, h: f64) {
        let _ = (t, h);
    }

    /// The run finished (reached `t_stop` or was finalized early); receives
    /// the final state and the run's statistics.
    fn on_finish(&mut self, final_state: &[f64], stats: &RunStats) {
        let _ = (final_state, stats);
    }

    /// The [`RecoveryPolicy`](crate::RecoveryPolicy) escalated: a DC homotopy
    /// stage engaged or the transient retry ladder restarted the run. Never
    /// fired on healthy runs (the policy only engages where the run would
    /// otherwise error).
    fn on_recovery(&mut self, event: &crate::recovery::RecoveryEvent) {
        let _ = event;
    }
}

/// An observer that ignores every event.
///
/// Useful for benchmarking the pure solver throughput without any recording
/// overhead, and as the default observer for convenience entry points.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Accumulates every accepted point and reproduces the classic
/// [`TransientResult`].
///
/// Probed samples (and, when `record_full` is set, full state snapshots) are
/// appended to flat, amortized-growth buffers — the hot loop performs no
/// per-step allocation. The rows of [`TransientResult`] are materialized once
/// in [`RecordingObserver::into_result`].
#[derive(Debug)]
pub struct RecordingObserver {
    probes: Vec<Probe>,
    record_full: bool,
    times: Vec<f64>,
    /// Probed values, row-major: `times.len() × probes.len()`.
    samples_flat: Vec<f64>,
    /// Full states, row-major: `times.len() × n` (empty unless `record_full`).
    full_flat: Vec<f64>,
    state_len: usize,
    final_state: Vec<f64>,
    stats: RunStats,
}

impl RecordingObserver {
    /// Creates a recorder for the given probes; `record_full` additionally
    /// snapshots the entire state vector at every accepted step.
    pub fn new(probes: Vec<Probe>, record_full: bool) -> Self {
        RecordingObserver {
            probes,
            record_full,
            times: Vec::new(),
            samples_flat: Vec::new(),
            full_flat: Vec::new(),
            state_len: 0,
            final_state: Vec::new(),
            stats: RunStats::new(),
        }
    }

    fn record(&mut self, t: f64, x: &[f64]) {
        self.state_len = x.len();
        self.times.push(t);
        for p in &self.probes {
            self.samples_flat.push(x[p.unknown]);
        }
        if self.record_full {
            self.full_flat.extend_from_slice(x);
        }
    }

    /// Number of recorded time points so far.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Finalizes the recording into a [`TransientResult`].
    ///
    /// The statistics and final state are those delivered by
    /// [`Observer::on_finish`]; if the run was never finalized the counters
    /// are zeroed and the final state falls back to the last full snapshot
    /// when `record_full` was set (empty otherwise) — the hot loop never
    /// copies the full state speculatively.
    pub fn into_result(mut self) -> TransientResult {
        let p = self.probes.len();
        let samples = if p == 0 {
            self.times.iter().map(|_| Vec::new()).collect()
        } else {
            self.samples_flat.chunks(p).map(<[f64]>::to_vec).collect()
        };
        let full_states: Vec<Vec<f64>> = if self.record_full && self.state_len > 0 {
            self.full_flat
                .chunks(self.state_len)
                .map(<[f64]>::to_vec)
                .collect()
        } else {
            Vec::new()
        };
        if self.final_state.is_empty() {
            if let Some(last) = full_states.last() {
                self.final_state = last.clone();
            }
        }
        TransientResult {
            times: self.times,
            probes: self.probes,
            samples,
            full_states,
            final_state: self.final_state,
            stats: self.stats,
        }
    }
}

impl Observer for RecordingObserver {
    fn on_dc(&mut self, t0: f64, x0: &[f64]) {
        self.record(t0, x0);
    }

    fn on_step_accepted(&mut self, t: f64, x: &[f64]) {
        self.record(t, x);
    }

    fn on_finish(&mut self, final_state: &[f64], stats: &RunStats) {
        self.final_state = final_state.to_vec();
        self.stats = stats.clone();
    }
}

/// A fixed-memory, progressively decimated view of the probed waveform.
///
/// At most `capacity` points are retained. Initially every accepted step is
/// kept; whenever the buffer fills up, every other retained point is dropped
/// and the sampling stride doubles, so an arbitrarily long run occupies a
/// bounded amount of memory while preserving the overall waveform shape.
#[derive(Debug)]
pub struct StreamingObserver {
    probes: Vec<Probe>,
    capacity: usize,
    stride: usize,
    times: Vec<f64>,
    /// Retained probe values, row-major: `times.len() × probes.len()`.
    values: Vec<f64>,
    observed: usize,
}

impl StreamingObserver {
    /// Creates a streaming observer retaining at most `capacity` points
    /// (minimum 2) for the given probes.
    pub fn new(probes: Vec<Probe>, capacity: usize) -> Self {
        let capacity = capacity.max(2);
        StreamingObserver {
            probes,
            capacity,
            stride: 1,
            times: Vec::with_capacity(capacity),
            values: Vec::new(),
            observed: 0,
        }
    }

    fn record(&mut self, t: f64, x: &[f64]) {
        let index = self.observed;
        self.observed += 1;
        // Points on the current stride grid are retained; the grid only ever
        // coarsens (stride doubles), so decimation keeps exactly the
        // points that remain on the new grid.
        if !index.is_multiple_of(self.stride) {
            return;
        }
        self.times.push(t);
        for p in &self.probes {
            self.values.push(x[p.unknown]);
        }
        if self.times.len() >= self.capacity {
            self.decimate();
        }
    }

    /// Drops every other retained point and doubles the stride.
    fn decimate(&mut self) {
        let p = self.probes.len();
        let kept = self.times.len().div_ceil(2);
        for k in 1..kept {
            self.times[k] = self.times[2 * k];
            for j in 0..p {
                self.values[k * p + j] = self.values[2 * k * p + j];
            }
        }
        self.times.truncate(kept);
        self.values.truncate(kept * p);
        self.stride *= 2;
    }

    /// Number of points currently retained (bounded by the capacity).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` when no point has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Total number of accepted points observed (retained or not).
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Current sampling stride (1 until the first decimation).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The retained (decimated) waveform of probe `p` as `(time, value)`
    /// pairs.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn waveform(&self, p: usize) -> Vec<(f64, f64)> {
        assert!(p < self.probes.len(), "probe index out of range");
        let np = self.probes.len();
        self.times
            .iter()
            .enumerate()
            .map(|(k, &t)| (t, self.values[k * np + p]))
            .collect()
    }

    /// Finalizes the observer into its retained [`DecimatedWaveform`] — the
    /// fixed-memory result a batch job with a
    /// [`JobSink::Stream`](crate::JobSink::Stream) sink returns.
    pub fn into_waveform(self) -> DecimatedWaveform {
        DecimatedWaveform {
            probes: self.probes,
            times: self.times,
            values: self.values,
            stride: self.stride,
            observed: self.observed,
        }
    }
}

/// The retained output of a [`StreamingObserver`]: at most `capacity` probed
/// points on a power-of-two stride grid, however long the run was.
#[derive(Debug, Clone, PartialEq)]
pub struct DecimatedWaveform {
    /// The probes that were recorded (columns of `values`).
    pub probes: Vec<Probe>,
    /// Retained time points, in order.
    pub times: Vec<f64>,
    /// Retained probe values, row-major: `times.len() × probes.len()`.
    pub values: Vec<f64>,
    /// Final sampling stride (1 if the run never filled the buffer).
    pub stride: usize,
    /// Total accepted points observed, retained or not.
    pub observed: usize,
}

impl DecimatedWaveform {
    /// Number of retained time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` when nothing was retained (an empty run).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The retained waveform of probe `p` as `(time, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn waveform(&self, p: usize) -> Vec<(f64, f64)> {
        assert!(p < self.probes.len(), "probe index out of range");
        let np = self.probes.len();
        self.times
            .iter()
            .enumerate()
            .map(|(k, &t)| (t, self.values[k * np + p]))
            .collect()
    }
}

impl Observer for StreamingObserver {
    fn on_dc(&mut self, t0: f64, x0: &[f64]) {
        self.record(t0, x0);
    }

    fn on_step_accepted(&mut self, t: f64, x: &[f64]) {
        self.record(t, x);
    }
}

/// Streams accepted points as delimiter-separated rows (`time` plus one
/// column per probe) into any [`std::io::Write`] sink — the waveform path of
/// the `exi-cli` front-end.
///
/// A header row is written with the run's starting point, then one data row
/// per accepted step, so the sink holds the complete waveform the moment the
/// run finishes — no buffering, fixed memory for arbitrarily long runs.
/// Values are printed with 17 significant digits, so every `f64` survives a
/// parse round-trip bit-for-bit (the same contract as the golden-waveform
/// fixtures).
///
/// [`Observer`] callbacks cannot fail, so I/O errors are latched: the first
/// error stops further writing and is surfaced by [`CsvObserver::finish`].
/// [`Observer::on_finish`] flushes the sink (latching any flush error), so a
/// buffered socket or file sink holds every row the moment the run ends even
/// if the caller forgets to call [`CsvObserver::finish`]; dropping an
/// observer whose latched error was never consumed flushes best-effort and
/// reports the error on stderr rather than discarding it silently.
///
/// # Examples
///
/// ```
/// use exi_sim::{CsvObserver, Observer, Probe};
///
/// let mut csv = CsvObserver::new(Vec::new(), vec![Probe::new("out", 1)]);
/// csv.on_dc(0.0, &[0.0, 0.25]);
/// csv.on_step_accepted(1e-12, &[0.0, 0.5]);
/// assert_eq!(csv.rows(), 2);
/// let bytes = csv.finish().unwrap();
/// let text = String::from_utf8(bytes).unwrap();
/// assert!(text.starts_with("time,out\n"));
/// assert_eq!(text.lines().count(), 3);
/// ```
#[derive(Debug)]
pub struct CsvObserver<W: Write> {
    /// `None` only after [`CsvObserver::finish`] has handed the sink back
    /// (so the `Drop` impl knows nothing is left to flush).
    writer: Option<W>,
    probes: Vec<Probe>,
    delimiter: char,
    rows: usize,
    wrote_header: bool,
    error: Option<std::io::Error>,
}

impl<W: Write> CsvObserver<W> {
    /// Creates a comma-separated observer recording the given probes into
    /// `writer`.
    pub fn new(writer: W, probes: Vec<Probe>) -> Self {
        CsvObserver {
            writer: Some(writer),
            probes,
            delimiter: ',',
            rows: 0,
            wrote_header: false,
            error: None,
        }
    }

    /// Replaces the column delimiter (e.g. `'\t'` for TSV output).
    #[must_use]
    pub fn delimiter(mut self, delimiter: char) -> Self {
        self.delimiter = delimiter;
        self
    }

    /// Number of data rows written so far (the header is not counted).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The first I/O error the sink reported, if any. Once set, no further
    /// rows are written.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes the sink and returns it.
    ///
    /// # Errors
    ///
    /// Returns the first latched write error, or the flush error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut writer = self.writer.take().expect("sink already taken");
        match writer.flush() {
            Ok(()) => Ok(writer),
            Err(e) => Err(e),
        }
    }

    /// Flushes the sink in place, latching (not returning) any error — the
    /// infallible-callback form of [`CsvObserver::finish`] used by
    /// [`Observer::on_finish`].
    fn flush_latching(&mut self) {
        if self.error.is_some() {
            return;
        }
        if let Some(writer) = self.writer.as_mut() {
            if let Err(e) = writer.flush() {
                self.error = Some(e);
            }
        }
    }

    fn write_row(&mut self, t: f64, x: &[f64]) {
        if self.error.is_some() {
            return;
        }
        let CsvObserver {
            writer,
            probes,
            delimiter,
            wrote_header,
            ..
        } = self;
        let Some(writer) = writer.as_mut() else {
            return;
        };
        let result = (|| -> std::io::Result<()> {
            if !*wrote_header {
                write!(writer, "time")?;
                for p in probes.iter() {
                    write!(writer, "{}{}", delimiter, p.label)?;
                }
                writeln!(writer)?;
                *wrote_header = true;
            }
            write!(writer, "{t:.17e}")?;
            for p in probes.iter() {
                write!(writer, "{}{:.17e}", delimiter, x[p.unknown])?;
            }
            writeln!(writer)
        })();
        match result {
            Ok(()) => self.rows += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

impl<W: Write> Observer for CsvObserver<W> {
    fn on_dc(&mut self, t0: f64, x0: &[f64]) {
        self.write_row(t0, x0);
    }

    fn on_step_accepted(&mut self, t: f64, x: &[f64]) {
        self.write_row(t, x);
    }

    fn on_finish(&mut self, _final_state: &[f64], _stats: &RunStats) {
        // Push buffered rows to the sink the moment the run ends, so a
        // socket/file sink never truncates the tail even when the observer
        // is dropped without a `finish()` call.
        self.flush_latching();
    }
}

impl<W: Write> Drop for CsvObserver<W> {
    fn drop(&mut self) {
        // `finish()` took the writer (and the error): nothing left to do.
        // Otherwise flush best-effort and make sure a latched error the
        // caller never consumed is reported rather than silently dropped.
        if self.writer.is_some() {
            self.flush_latching();
        }
        if let Some(e) = self.error.take() {
            eprintln!("exi-sim: CsvObserver dropped with unreported I/O error: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_observer_reproduces_transient_result() {
        let mut rec = RecordingObserver::new(vec![Probe::new("a", 0)], true);
        rec.on_dc(0.0, &[1.0, 2.0]);
        rec.on_step_accepted(1.0, &[3.0, 4.0]);
        let mut stats = RunStats::new();
        stats.accepted_steps = 1;
        rec.on_finish(&[3.0, 4.0], &stats);
        let result = rec.into_result();
        assert_eq!(result.len(), 2);
        assert_eq!(result.samples[1][0], 3.0);
        assert_eq!(result.full_states.len(), 2);
        assert_eq!(result.full_states[0], vec![1.0, 2.0]);
        assert_eq!(result.final_state, vec![3.0, 4.0]);
        assert_eq!(result.stats.accepted_steps, 1);
    }

    #[test]
    fn recording_observer_without_probes_or_full_states() {
        let mut rec = RecordingObserver::new(Vec::new(), false);
        rec.on_dc(0.0, &[1.0]);
        rec.on_step_accepted(1.0, &[2.0]);
        let result = rec.into_result();
        assert_eq!(result.len(), 2);
        assert!(result.full_states.is_empty());
        // Without on_finish (and without full snapshots) there is no final
        // state to report — the hot loop does not copy it speculatively.
        assert!(result.final_state.is_empty());
    }

    #[test]
    fn unfinished_recording_falls_back_to_last_full_snapshot() {
        let mut rec = RecordingObserver::new(Vec::new(), true);
        rec.on_dc(0.0, &[1.0, 2.0]);
        rec.on_step_accepted(1.0, &[3.0, 4.0]);
        // No on_finish: the last full snapshot stands in for the final state.
        let result = rec.into_result();
        assert_eq!(result.final_state, vec![3.0, 4.0]);
    }

    #[test]
    fn streaming_observer_stays_within_capacity() {
        let mut s = StreamingObserver::new(vec![Probe::new("a", 0)], 8);
        for k in 0..1000 {
            s.on_step_accepted(k as f64, &[k as f64]);
        }
        assert!(s.len() < 8, "len {} should stay under capacity", s.len());
        assert_eq!(s.observed(), 1000);
        assert!(s.stride() > 1);
        let wf = s.waveform(0);
        // The retained points are genuine (time, value) samples in order.
        for w in wf.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for &(t, v) in &wf {
            assert_eq!(t, v);
        }
    }

    #[test]
    fn streaming_observer_keeps_everything_below_capacity() {
        let mut s = StreamingObserver::new(vec![Probe::new("a", 0)], 64);
        for k in 0..10 {
            s.on_step_accepted(k as f64, &[2.0 * k as f64]);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.waveform(0)[3], (3.0, 6.0));
    }

    #[test]
    fn streaming_observer_decimates_exactly_at_the_capacity_boundary() {
        // capacity 4: indices 0..3 are retained verbatim; the moment the 4th
        // point lands the buffer decimates to indices {0, 2} and the stride
        // doubles, so index 4 (on the new grid) is retained and index 5 is
        // not.
        let mut s = StreamingObserver::new(vec![Probe::new("a", 0)], 4);
        for k in 0..4 {
            s.on_step_accepted(k as f64, &[k as f64]);
        }
        assert_eq!(s.stride(), 2, "filling to capacity must trigger decimation");
        assert_eq!(s.waveform(0), vec![(0.0, 0.0), (2.0, 2.0)]);
        s.on_step_accepted(4.0, &[4.0]);
        s.on_step_accepted(5.0, &[5.0]);
        assert_eq!(s.waveform(0), vec![(0.0, 0.0), (2.0, 2.0), (4.0, 4.0)]);
        // The next boundary: index 6 fills the buffer to capacity again and
        // the stride doubles to 4, keeping exactly the multiples of 4.
        s.on_step_accepted(6.0, &[6.0]);
        assert_eq!(s.stride(), 4);
        assert_eq!(s.waveform(0), vec![(0.0, 0.0), (4.0, 4.0)]);
        assert_eq!(s.observed(), 7);
    }

    #[test]
    fn streaming_observer_empty_run_edge_case() {
        // A run that never produces a point (or is never started) leaves a
        // well-defined empty waveform with the initial stride.
        let s = StreamingObserver::new(vec![Probe::new("a", 0)], 8);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.observed(), 0);
        assert_eq!(s.stride(), 1);
        assert!(s.waveform(0).is_empty());
        let w = s.into_waveform();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.observed, 0);
        assert_eq!(w.stride, 1);
        assert!(w.waveform(0).is_empty());
    }

    #[test]
    fn into_waveform_preserves_the_retained_points() {
        let mut s = StreamingObserver::new(vec![Probe::new("a", 0), Probe::new("b", 1)], 16);
        for k in 0..5 {
            s.on_step_accepted(k as f64, &[k as f64, -(k as f64)]);
        }
        let expected_a = s.waveform(0);
        let expected_b = s.waveform(1);
        let w = s.into_waveform();
        assert_eq!(w.waveform(0), expected_a);
        assert_eq!(w.waveform(1), expected_b);
        assert_eq!(w.observed, 5);
        assert_eq!(w.stride, 1);
        assert_eq!(w.probes.len(), 2);
    }

    #[test]
    fn csv_observer_streams_bit_exact_rows() {
        let mut csv = CsvObserver::new(Vec::new(), vec![Probe::new("a", 0), Probe::new("b", 1)]);
        let rows = [
            (0.0, [1.0, -0.0]),
            (1.5e-12, [0.12345678901234567, 2.0]),
            (3.0e-12, [-3.123456789012345e-7, 4.0]),
        ];
        csv.on_dc(rows[0].0, &rows[0].1);
        for (t, x) in &rows[1..] {
            csv.on_step_accepted(*t, x);
        }
        assert_eq!(csv.rows(), 3);
        assert!(csv.io_error().is_none());
        let text = String::from_utf8(csv.finish().unwrap()).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("time,a,b"));
        for ((t, x), line) in rows.iter().zip(lines) {
            let cols: Vec<f64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            assert_eq!(cols[0].to_bits(), t.to_bits());
            assert_eq!(cols[1].to_bits(), x[0].to_bits());
            assert_eq!(cols[2].to_bits(), x[1].to_bits());
        }
    }

    #[test]
    fn csv_observer_supports_tsv_and_latches_io_errors() {
        let mut tsv = CsvObserver::new(Vec::new(), vec![Probe::new("a", 0)]).delimiter('\t');
        tsv.on_step_accepted(1.0, &[2.0]);
        let text = String::from_utf8(tsv.finish().unwrap()).unwrap();
        assert!(text.starts_with("time\ta\n"));

        /// A sink that always fails.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink is broken"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut bad = CsvObserver::new(Broken, vec![Probe::new("a", 0)]);
        bad.on_dc(0.0, &[1.0]);
        bad.on_step_accepted(1.0, &[1.0]);
        assert_eq!(bad.rows(), 0);
        assert!(bad.io_error().is_some());
        assert!(bad.finish().is_err());
    }

    #[test]
    fn csv_observer_flushes_on_finish_event() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        /// A buffering sink that counts flushes — rows are only "durable"
        /// once flushed, like a `BufWriter<TcpStream>`.
        struct CountingSink(Arc<AtomicUsize>);
        impl Write for CountingSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }

        let flushes = Arc::new(AtomicUsize::new(0));
        let mut csv =
            CsvObserver::new(CountingSink(Arc::clone(&flushes)), vec![Probe::new("a", 0)]);
        csv.on_dc(0.0, &[1.0]);
        csv.on_step_accepted(1.0, &[2.0]);
        assert_eq!(flushes.load(Ordering::SeqCst), 0);
        // The run-finished event pushes everything to the sink...
        csv.on_finish(&[2.0], &RunStats::new());
        assert_eq!(flushes.load(Ordering::SeqCst), 1);
        // ...and dropping without `finish()` flushes once more, best-effort.
        drop(csv);
        assert_eq!(flushes.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn csv_observer_finish_consumes_the_latched_error_exactly_once() {
        /// A sink whose flush fails (writes succeed).
        struct FailingFlush;
        impl Write for FailingFlush {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Err(std::io::Error::other("flush refused"))
            }
        }

        let mut csv = CsvObserver::new(FailingFlush, vec![Probe::new("a", 0)]);
        csv.on_step_accepted(1.0, &[2.0]);
        assert!(csv.io_error().is_none());
        // on_finish latches the flush error instead of losing it...
        csv.on_finish(&[2.0], &RunStats::new());
        assert!(csv.io_error().is_some());
        // ...and finish() hands exactly that error to the caller (the drop
        // that follows has nothing left to report).
        assert!(csv.finish().is_err());
    }

    #[test]
    fn null_observer_ignores_everything() {
        let mut n = NullObserver;
        n.on_dc(0.0, &[1.0]);
        n.on_step_accepted(1.0, &[1.0]);
        n.on_step_rejected(1.0, 0.5);
        n.on_finish(&[1.0], &RunStats::new());
    }
}
