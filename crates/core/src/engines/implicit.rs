//! Low-order implicit integration: backward Euler and trapezoidal rule with
//! Newton–Raphson iterations (the paper's BENR baseline, Sec. II-A).
//!
//! Every Newton iteration assembles and LU-factorizes the combined matrix
//! `C(x)/h + θ·G(x)` — the operation whose cost (and factor fill, Fig. 1)
//! the exponential framework avoids. The *sparsity pattern* of that matrix is
//! nevertheless fixed as long as exact cancellations do not occur, so the
//! baseline also benefits from the cached symbolic analysis: after the first
//! Newton iteration the factorizations run through the numeric-only
//! refactorization path (for any step size `h` — the pattern of `C/h + G`
//! does not depend on `h`). The remaining per-iteration cost asymmetry
//! against ER is the *numeric* elimination on the much denser factors, which
//! is exactly the paper's argument.

use std::time::Instant;

use exi_netlist::Circuit;
use exi_sparse::{vector, CsrMatrix, LuOptions, LuWorkspace, SparseLu};

use crate::dc::dc_operating_point_internal;
use crate::engines::{clamp_step, prepare, reached_end, refresh_lu, Recorder};
use crate::error::{SimError, SimResult};
use crate::options::{DcOptions, TransientOptions};
use crate::output::TransientResult;
use crate::stats::RunStats;

/// Implicit one-step discretization parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImplicitScheme {
    /// Backward Euler (θ = 1), paper's BENR baseline.
    BackwardEuler,
    /// Trapezoidal rule (θ = ½).
    Trapezoidal,
}

impl ImplicitScheme {
    fn theta(self) -> f64 {
        match self {
            ImplicitScheme::BackwardEuler => 1.0,
            ImplicitScheme::Trapezoidal => 0.5,
        }
    }
}

/// Runs an implicit (BE or TR) transient analysis with Newton–Raphson
/// iterations and adaptive step control.
///
/// # Errors
///
/// * [`SimError::NewtonDidNotConverge`] if Newton fails even at `h_min`.
/// * [`SimError::Sparse`] for factorization failures; a
///   [`exi_sparse::SparseError::FillBudgetExceeded`] surfaces when the
///   configured fill budget is exhausted (the Table I "out of memory" cases).
/// * Option-validation and netlist errors.
pub fn run_implicit(
    circuit: &Circuit,
    scheme: ImplicitScheme,
    options: &TransientOptions,
    probe_names: &[&str],
) -> SimResult<TransientResult> {
    let started = Instant::now();
    let (probes, breakpoints) = prepare(circuit, options, probe_names)?;
    let theta = scheme.theta();
    let mut stats = RunStats::new();

    let (dc, _) = dc_operating_point_internal(
        circuit,
        &DcOptions {
            ordering: options.ordering,
            ..DcOptions::default()
        },
        &mut stats,
    )?;

    let n = circuit.num_unknowns();
    let b = circuit.input_matrix()?;
    let lu_options = LuOptions {
        ordering: options.ordering,
        fill_budget: options.fill_budget,
        ..LuOptions::default()
    };

    // The Jacobian C/h + θ·G keeps its sparsity pattern across iterations and
    // step sizes; only the first factorization pays for the symbolic
    // analysis. (The DC factor is of `G` alone — a different pattern — so the
    // cache starts empty rather than seeded.)
    let mut jac_lu: Option<SparseLu> = None;
    let mut lu_ws = LuWorkspace::new();
    let mut residual = vec![0.0; n];
    let mut delta = vec![0.0; n];

    let mut recorder = Recorder::new(probes, options.record_full_states);
    let mut x = dc.state;
    let mut t = 0.0_f64;
    recorder.record(t, &x);

    // Previous derivative estimate used by the forward-Euler predictor for
    // local-truncation-error control.
    let mut prev_derivative: Option<Vec<f64>> = None;
    let mut h = options.h_init;

    while !reached_end(t, options.t_stop) {
        let eval_k = circuit.evaluate(&x)?;
        stats.device_evaluations += 1;
        let u_k = circuit.input_vector(t);
        let bu_k = b.mul_vec(&u_k);

        let mut accepted = false;
        while !accepted {
            let h_step = clamp_step(t, h.min(options.h_max), options.t_stop, &breakpoints);
            if h_step < options.h_min {
                return Err(SimError::StepSizeUnderflow {
                    time: t,
                    step: h_step,
                });
            }
            let u_next = circuit.input_vector(t + h_step);
            let bu_next = b.mul_vec(&u_next);

            // --- Newton–Raphson iterations for the implicit step. ---
            let mut xi = x.clone();
            let mut converged = false;
            let mut iterations = 0usize;
            while iterations < options.newton_max_iterations {
                iterations += 1;
                let ev = circuit.evaluate(&xi)?;
                stats.device_evaluations += 1;
                // Residual T(x) of Eq. (2) generalized to the θ-method.
                for i in 0..n {
                    residual[i] = (ev.q[i] - eval_k.q[i]) / h_step
                        + theta * (ev.f[i] - bu_next[i])
                        + (1.0 - theta) * (eval_k.f[i] - bu_k[i]);
                }
                // Jacobian C/h + θ·G — this is the matrix whose LU dominates
                // BENR's cost on densely coupled circuits.
                let jac = CsrMatrix::linear_combination(1.0 / h_step, &ev.c, theta, &ev.g)?;
                refresh_lu(&mut jac_lu, &jac, &lu_options, &mut lu_ws, &mut stats)?;
                let lu = jac_lu.as_ref().expect("refresh_lu populated the cache");
                lu.solve_into(&residual, &mut delta, &mut lu_ws)?;
                stats.linear_solves += 1;
                vector::scale(-1.0, &mut delta);
                let update = vector::norm_inf(&delta);
                vector::axpy(1.0, &delta, &mut xi);
                stats.newton_iterations += 1;
                if !update.is_finite() {
                    break;
                }
                if update < options.newton_tolerance {
                    converged = true;
                    break;
                }
            }

            if !converged {
                stats.rejected_steps += 1;
                h *= options.shrink_factor;
                if h < options.h_min {
                    return Err(SimError::NewtonDidNotConverge {
                        time: t,
                        step: h_step,
                        iterations: options.newton_max_iterations,
                    });
                }
                continue;
            }

            // --- Local truncation error control via a forward-Euler predictor. ---
            let lte = match &prev_derivative {
                Some(dxdt) => {
                    let mut err = 0.0_f64;
                    for i in 0..n {
                        let predicted = x[i] + h_step * dxdt[i];
                        err = err.max((xi[i] - predicted).abs());
                    }
                    err * 0.5
                }
                None => 0.0,
            };
            if lte > options.error_budget && h_step > 2.0 * options.h_min {
                stats.rejected_steps += 1;
                h = h_step * options.shrink_factor;
                continue;
            }

            // Accept the step.
            let mut derivative = prev_derivative.take().unwrap_or_else(|| vec![0.0; n]);
            for i in 0..n {
                derivative[i] = (xi[i] - x[i]) / h_step;
            }
            prev_derivative = Some(derivative);
            x = xi;
            t += h_step;
            stats.accepted_steps += 1;
            recorder.record(t, &x);
            accepted = true;

            // Easy step: grow the step size for the next attempt.
            if iterations <= options.easy_step_threshold + 1 && lte < 0.5 * options.error_budget {
                h = (h_step * options.growth_factor).min(options.h_max);
            } else {
                h = h_step;
            }
        }
    }

    stats.runtime = started.elapsed();
    Ok(recorder.finish(x, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_netlist::{generators, Waveform};

    #[test]
    fn backward_euler_matches_rc_analytic_solution() {
        let (r, c, v) = (1e3, 1e-12, 1.0);
        let tau = r * c;
        let options = TransientOptions {
            t_stop: 5.0 * tau,
            h_init: tau / 200.0,
            h_max: tau / 100.0,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        // Use a fast PWL ramp so the interesting charging happens after t = 0
        // (a DC source would already be charged at the operating point).
        let mut ckt2 = Circuit::new();
        let vin = ckt2.node("in");
        let out = ckt2.node("out");
        let gnd = ckt2.node("0");
        ckt2.add_voltage_source(
            "V1",
            vin,
            gnd,
            Waveform::Pwl(vec![(0.0, 0.0), (tau * 1e-3, v)]),
        )
        .unwrap();
        ckt2.add_resistor("R1", vin, out, r).unwrap();
        ckt2.add_capacitor("C1", out, gnd, c).unwrap();
        let result =
            run_implicit(&ckt2, ImplicitScheme::BackwardEuler, &options, &["out"]).unwrap();
        let p = result.probe_index("out").unwrap();
        let t_check = 2.0 * tau;
        let expected = v * (1.0 - (-(t_check - tau * 1e-3) / tau).exp());
        let got = result.sample_at(p, t_check);
        assert!(
            (got - expected).abs() < 0.02,
            "got {got}, expected {expected}"
        );
        assert!(result.stats.accepted_steps > 100);
        assert!(result.stats.lu_factorizations >= result.stats.accepted_steps);
        // The Jacobian pattern is fixed: one symbolic analysis for the DC
        // solve, one for the transient Jacobian, everything else numeric.
        assert!(result.stats.symbolic_analyses <= 2, "{:?}", result.stats);
        assert!(result.stats.lu_refactorizations > result.stats.accepted_steps / 2);
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_backward_euler_at_equal_steps() {
        let (r, c, v) = (1e3, 1e-12, 1.0);
        let tau = r * c;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source(
            "V1",
            vin,
            gnd,
            Waveform::Pwl(vec![(0.0, 0.0), (tau * 1e-3, v)]),
        )
        .unwrap();
        ckt.add_resistor("R1", vin, out, r).unwrap();
        ckt.add_capacitor("C1", out, gnd, c).unwrap();
        let options = TransientOptions {
            t_stop: 3.0 * tau,
            h_init: tau / 20.0,
            h_max: tau / 20.0,
            error_budget: 1.0, // effectively disable LTE rejection for this comparison
            ..TransientOptions::default()
        };
        let be = run_implicit(&ckt, ImplicitScheme::BackwardEuler, &options, &["out"]).unwrap();
        let tr = run_implicit(&ckt, ImplicitScheme::Trapezoidal, &options, &["out"]).unwrap();
        let exact = |t: f64| v * (1.0 - (-(t - tau * 1e-3) / tau).exp());
        let p = be.probe_index("out").unwrap();
        let t_check = tau;
        let be_err = (be.sample_at(p, t_check) - exact(t_check)).abs();
        let tr_err = (tr.sample_at(p, t_check) - exact(t_check)).abs();
        assert!(tr_err < be_err, "tr {tr_err} should beat be {be_err}");
    }

    #[test]
    fn benr_counts_multiple_newton_iterations_on_nonlinear_circuits() {
        let spec = generators::InverterChainSpec {
            stages: 2,
            ..generators::InverterChainSpec::default()
        };
        let ckt = generators::inverter_chain(&spec).unwrap();
        let options = TransientOptions {
            t_stop: 2e-10,
            h_init: 2e-12,
            h_max: 1e-11,
            error_budget: 1e-2,
            ..TransientOptions::default()
        };
        let result =
            run_implicit(&ckt, ImplicitScheme::BackwardEuler, &options, &["s1", "s2"]).unwrap();
        assert!(result.stats.accepted_steps > 10);
        assert!(result.stats.avg_newton_iterations() >= 1.0);
        // Output of the first inverter should stay within the rails.
        let p = result.probe_index("s1").unwrap();
        for (_, value) in result.waveform(p) {
            assert!(value > -0.3 && value < 1.3, "s1 = {value}");
        }
    }

    #[test]
    fn fill_budget_failure_is_reported() {
        let spec = generators::CoupledLinesSpec {
            lines: 4,
            segments: 8,
            random_couplings: 60,
            mosfet_drivers: false,
            ..generators::CoupledLinesSpec::default()
        };
        let ckt = generators::coupled_lines(&spec).unwrap();
        let options = TransientOptions {
            t_stop: 1e-10,
            h_init: 1e-12,
            fill_budget: Some(10),
            ..TransientOptions::default()
        };
        let err = run_implicit(&ckt, ImplicitScheme::BackwardEuler, &options, &[]).unwrap_err();
        assert!(matches!(
            err,
            SimError::Sparse(exi_sparse::SparseError::FillBudgetExceeded { .. })
        ));
    }
}
