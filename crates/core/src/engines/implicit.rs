//! Low-order implicit integration: backward Euler and trapezoidal rule with
//! Newton–Raphson iterations (the paper's BENR baseline, Sec. II-A).
//!
//! Every Newton iteration assembles and LU-factorizes the combined matrix
//! `C(x)/h + θ·G(x)` — the operation whose cost (and factor fill, Fig. 1)
//! the exponential framework avoids. The *sparsity pattern* of that matrix is
//! nevertheless fixed as long as exact cancellations do not occur, so the
//! baseline also benefits from the cached symbolic analysis: after the first
//! Newton iteration the factorizations run through the numeric-only
//! refactorization path (for any step size `h` — the pattern of `C/h + G`
//! does not depend on `h`). The remaining per-iteration cost asymmetry
//! against ER is the *numeric* elimination on the much denser factors, which
//! is exactly the paper's argument.
//!
//! The engine is exposed as the incremental [`ImplicitStepper`] (one accepted
//! step per [`Engine::advance`] call); [`run_implicit`] remains as a
//! deprecated one-shot wrapper.

use std::sync::Arc;
use std::time::Instant;

use exi_netlist::{Circuit, EvalPlan, Evaluation};
use exi_sparse::{vector, CsrMatrix, LuOptions};

use crate::engines::{clamp_step, prepare, reached_end, refresh_lu, Engine, StepOutcome};
use crate::error::{SimError, SimResult};
use crate::observer::Observer;
use crate::options::TransientOptions;
use crate::output::TransientResult;
use crate::session::SessionCaches;
use crate::stats::RunStats;

/// Implicit one-step discretization parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ImplicitScheme {
    /// Backward Euler (θ = 1), paper's BENR baseline.
    BackwardEuler,
    /// Trapezoidal rule (θ = ½).
    Trapezoidal,
}

impl ImplicitScheme {
    fn theta(self) -> f64 {
        match self {
            ImplicitScheme::BackwardEuler => 1.0,
            ImplicitScheme::Trapezoidal => 0.5,
        }
    }
}

/// Incremental implicit (BE or TR) stepper with Newton–Raphson iterations and
/// adaptive step control.
///
/// Created by [`Simulator::stepper`](crate::Simulator::stepper) with
/// [`Method::BackwardEuler`](crate::Method::BackwardEuler) or
/// [`Method::Trapezoidal`](crate::Method::Trapezoidal); driven through the
/// [`Engine`] trait. Each [`Engine::advance`] performs one accepted step
/// (with the full Newton/LTE retry loop inside). All hot-loop state lives in
/// the struct, so a paused stepper resumes bit-identically.
#[derive(Debug)]
pub struct ImplicitStepper<'a> {
    circuit: &'a Circuit,
    caches: &'a mut SessionCaches,
    /// The session's compiled stamping plan (shared handle; every Newton
    /// iteration restamps through it instead of COO assembly).
    plan: Arc<EvalPlan>,
    options: TransientOptions,
    theta: f64,
    lu_options: LuOptions,
    breakpoints: Vec<f64>,
    n: usize,
    // Circuit-sized scratch buffers, allocated once per stepper.
    eval_k: Evaluation,
    eval_i: Evaluation,
    /// Reusable buffer for the implicit Jacobian `C/h + θ·G`, combined
    /// value-wise over the evaluation's patterns without allocation.
    jac: CsrMatrix,
    u_k: Vec<f64>,
    u_next: Vec<f64>,
    bu_k: Vec<f64>,
    bu_next: Vec<f64>,
    xi: Vec<f64>,
    residual: Vec<f64>,
    delta: Vec<f64>,
    /// Previous derivative estimate used by the forward-Euler predictor for
    /// local-truncation-error control.
    prev_derivative: Option<Vec<f64>>,
    x: Vec<f64>,
    t: f64,
    h: f64,
    stats: RunStats,
    finished: bool,
    finalized: bool,
    assembly_alloc_baseline: usize,
}

impl<'a> ImplicitStepper<'a> {
    /// Builds a stepper over the session caches; `dc_stats` is the DC cost
    /// charged to this run (zeroed when the session reused a cached DC
    /// solution).
    pub(crate) fn new(
        circuit: &'a Circuit,
        caches: &'a mut SessionCaches,
        scheme: ImplicitScheme,
        options: TransientOptions,
        dc_stats: RunStats,
    ) -> SimResult<Self> {
        let breakpoints = prepare(circuit, &options)?;
        let n = circuit.num_unknowns();
        let lu_options = LuOptions {
            ordering: options.ordering,
            fill_budget: options.fill_budget,
            ..LuOptions::default()
        };
        let plan = Arc::clone(
            caches
                .plan
                .as_ref()
                .expect("session compiled the evaluation plan"),
        );
        let input_dim = plan.input_matrix().cols();
        let assembly_alloc_baseline = caches.eval_ws.allocations();
        Ok(ImplicitStepper {
            circuit,
            caches,
            options,
            theta: scheme.theta(),
            lu_options,
            breakpoints,
            n,
            eval_k: plan.new_evaluation(),
            eval_i: plan.new_evaluation(),
            jac: CsrMatrix::zeros(0, 0),
            u_k: vec![0.0; input_dim],
            u_next: vec![0.0; input_dim],
            bu_k: vec![0.0; n],
            bu_next: vec![0.0; n],
            xi: vec![0.0; n],
            plan,
            residual: vec![0.0; n],
            delta: vec![0.0; n],
            prev_derivative: None,
            x: vec![0.0; n],
            t: 0.0,
            h: 0.0,
            stats: dc_stats,
            finished: true, // until init() places the stepper
            finalized: false,
            assembly_alloc_baseline,
        })
    }
}

impl Engine for ImplicitStepper<'_> {
    fn init(&mut self, t0: f64, x0: &[f64], observer: &mut dyn Observer) -> SimResult<()> {
        if x0.len() != self.n {
            return Err(SimError::InvalidOptions {
                message: format!(
                    "initial state has {} entries, circuit has {} unknowns",
                    x0.len(),
                    self.n
                ),
            });
        }
        self.x.copy_from_slice(x0);
        self.t = t0;
        self.h = self.options.h_init;
        self.prev_derivative = None;
        self.finished = reached_end(t0, self.options.t_stop);
        self.finalized = false;
        self.stats.observer_callbacks += 1;
        observer.on_dc(t0, &self.x);
        Ok(())
    }

    fn advance(&mut self, observer: &mut dyn Observer) -> SimResult<StepOutcome> {
        // Runtime accumulates only active solver time; pauses between
        // advance() calls are not charged.
        let started = Instant::now();
        let result = self.advance_step(observer);
        self.stats.runtime += started.elapsed();
        result
    }

    fn state(&self) -> &[f64] {
        &self.x
    }

    fn time(&self) -> f64 {
        self.t
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut RunStats {
        &mut self.stats
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn finish(&mut self, observer: &mut dyn Observer) -> RunStats {
        if !self.finalized {
            self.finalized = true;
            self.stats.assembly_workspace_allocations =
                self.caches.eval_ws.allocations() - self.assembly_alloc_baseline;
            self.stats.observer_callbacks += 1;
            observer.on_finish(&self.x, &self.stats);
        }
        self.stats.clone()
    }
}

impl ImplicitStepper<'_> {
    /// One accepted step of the θ-method (with its Newton/LTE retry loop).
    fn advance_step(&mut self, observer: &mut dyn Observer) -> SimResult<StepOutcome> {
        if self.finished {
            return Ok(StepOutcome::Finished);
        }
        let n = self.n;
        let theta = self.theta;
        let caches = &mut *self.caches;
        let plan = Arc::clone(&self.plan);

        self.stats.restamped_entries +=
            plan.evaluate_into(&self.x, &mut caches.eval_ws, &mut self.eval_k)?;
        self.stats.device_evaluations += 1;
        #[cfg(feature = "fault-injection")]
        crate::fault::on_device_eval(&mut self.eval_k);
        let b = plan.input_matrix();
        self.circuit.input_vector_into(self.t, &mut self.u_k);
        b.mul_vec_into(&self.u_k, &mut self.bu_k);

        loop {
            let h_step = clamp_step(
                self.t,
                self.h.min(self.options.h_max),
                self.options.t_stop,
                &self.breakpoints,
            );
            if h_step < self.options.h_min {
                return Err(SimError::StepSizeUnderflow {
                    time: self.t,
                    step: h_step,
                });
            }
            self.circuit
                .input_vector_into(self.t + h_step, &mut self.u_next);
            b.mul_vec_into(&self.u_next, &mut self.bu_next);

            // --- Newton–Raphson iterations for the implicit step. ---
            self.xi.copy_from_slice(&self.x);
            let mut converged = false;
            let mut iterations = 0usize;
            while iterations < self.options.newton_max_iterations {
                iterations += 1;
                self.stats.restamped_entries +=
                    plan.evaluate_into(&self.xi, &mut caches.eval_ws, &mut self.eval_i)?;
                self.stats.device_evaluations += 1;
                let ev = &self.eval_i;
                // Residual T(x) of Eq. (2) generalized to the θ-method.
                for i in 0..n {
                    self.residual[i] = (ev.q[i] - self.eval_k.q[i]) / h_step
                        + theta * (ev.f[i] - self.bu_next[i])
                        + (1.0 - theta) * (self.eval_k.f[i] - self.bu_k[i]);
                }
                // Jacobian C/h + θ·G — this is the matrix whose LU dominates
                // BENR's cost on densely coupled circuits. Combined
                // value-wise into the reusable buffer over the evaluation's
                // patterns (bit-identical to the allocating form).
                CsrMatrix::linear_combination_into(
                    1.0 / h_step,
                    &ev.c,
                    theta,
                    &ev.g,
                    &mut self.jac,
                )?;
                refresh_lu(
                    &mut caches.jac_lu,
                    &mut caches.retained,
                    caches.shared.as_deref(),
                    &self.jac,
                    &self.lu_options,
                    &mut caches.lu_ws,
                    &mut self.stats,
                )?;
                let lu = caches.jac_lu.get().expect("refresh_lu populated the cache");
                lu.solve_into(&self.residual, &mut self.delta, &mut caches.lu_ws)?;
                self.stats.linear_solves += 1;
                vector::scale(-1.0, &mut self.delta);
                let update = vector::norm_inf(&self.delta);
                vector::axpy(1.0, &self.delta, &mut self.xi);
                self.stats.newton_iterations += 1;
                if !update.is_finite() {
                    break;
                }
                if update < self.options.newton_tolerance {
                    converged = true;
                    break;
                }
            }

            if !converged {
                self.stats.rejected_steps += 1;
                self.stats.observer_callbacks += 1;
                observer.on_step_rejected(self.t, h_step);
                self.h *= self.options.shrink_factor;
                if self.h < self.options.h_min {
                    return Err(SimError::NewtonDidNotConverge {
                        time: self.t,
                        step: h_step,
                        iterations: self.options.newton_max_iterations,
                    });
                }
                continue;
            }

            // --- Local truncation error control via a forward-Euler predictor. ---
            let lte = match &self.prev_derivative {
                Some(dxdt) => {
                    let mut err = 0.0_f64;
                    for (i, d) in dxdt.iter().enumerate() {
                        let predicted = self.x[i] + h_step * d;
                        err = err.max((self.xi[i] - predicted).abs());
                    }
                    err * 0.5
                }
                None => 0.0,
            };
            if lte > self.options.error_budget && h_step > 2.0 * self.options.h_min {
                self.stats.rejected_steps += 1;
                self.stats.observer_callbacks += 1;
                observer.on_step_rejected(self.t, h_step);
                self.h = h_step * self.options.shrink_factor;
                continue;
            }

            // Accept the step.
            let mut derivative = self.prev_derivative.take().unwrap_or_else(|| vec![0.0; n]);
            for (i, d) in derivative.iter_mut().enumerate() {
                *d = (self.xi[i] - self.x[i]) / h_step;
            }
            self.prev_derivative = Some(derivative);
            std::mem::swap(&mut self.x, &mut self.xi);
            self.t += h_step;
            // Solution-boundary guard: a converged-but-non-finite Newton
            // state must surface as NonFinite, not propagate silently.
            if self.x.iter().any(|v| !v.is_finite()) {
                return Err(SimError::NonFinite {
                    time: self.t,
                    device: None,
                });
            }
            self.stats.accepted_steps += 1;
            self.stats.observer_callbacks += 1;
            #[cfg(feature = "fault-injection")]
            crate::fault::maybe_panic_on_accept();
            observer.on_step_accepted(self.t, &self.x);

            // Easy step: grow the step size for the next attempt.
            if iterations <= self.options.easy_step_threshold + 1
                && lte < 0.5 * self.options.error_budget
            {
                self.h = (h_step * self.options.growth_factor).min(self.options.h_max);
            } else {
                self.h = h_step;
            }

            if reached_end(self.t, self.options.t_stop) {
                self.finished = true;
            }
            return Ok(StepOutcome::Advanced {
                t: self.t,
                h: h_step,
            });
        }
    }
}

/// Runs an implicit (BE or TR) transient analysis with Newton–Raphson
/// iterations and adaptive step control.
///
/// # Errors
///
/// * [`SimError::NewtonDidNotConverge`] if Newton fails even at `h_min`.
/// * [`SimError::Sparse`] for factorization failures; a
///   [`exi_sparse::SparseError::FillBudgetExceeded`] surfaces when the
///   configured fill budget is exhausted (the Table I "out of memory" cases).
/// * Option-validation and netlist errors.
#[deprecated(
    since = "0.2.0",
    note = "create a `Simulator` and call `transient(Method::BackwardEuler | Method::Trapezoidal, …)` \
            — a session reuses LU caches and workspaces across runs"
)]
pub fn run_implicit(
    circuit: &Circuit,
    scheme: ImplicitScheme,
    options: &TransientOptions,
    probe_names: &[&str],
) -> SimResult<TransientResult> {
    let method = match scheme {
        ImplicitScheme::BackwardEuler => crate::Method::BackwardEuler,
        ImplicitScheme::Trapezoidal => crate::Method::Trapezoidal,
    };
    crate::Simulator::new(circuit).transient(method, options, probe_names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Simulator;
    use crate::transient::Method;
    use exi_netlist::{generators, Waveform};

    fn run_scheme(
        ckt: &Circuit,
        scheme: ImplicitScheme,
        options: &TransientOptions,
        probes: &[&str],
    ) -> SimResult<TransientResult> {
        let method = match scheme {
            ImplicitScheme::BackwardEuler => Method::BackwardEuler,
            ImplicitScheme::Trapezoidal => Method::Trapezoidal,
        };
        Simulator::new(ckt).transient(method, options, probes)
    }

    #[test]
    fn backward_euler_matches_rc_analytic_solution() {
        let (r, c, v) = (1e3, 1e-12, 1.0);
        let tau = r * c;
        let options = TransientOptions {
            t_stop: 5.0 * tau,
            h_init: tau / 200.0,
            h_max: tau / 100.0,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        // Use a fast PWL ramp so the interesting charging happens after t = 0
        // (a DC source would already be charged at the operating point).
        let mut ckt2 = Circuit::new();
        let vin = ckt2.node("in");
        let out = ckt2.node("out");
        let gnd = ckt2.node("0");
        ckt2.add_voltage_source(
            "V1",
            vin,
            gnd,
            Waveform::Pwl(vec![(0.0, 0.0), (tau * 1e-3, v)]),
        )
        .unwrap();
        ckt2.add_resistor("R1", vin, out, r).unwrap();
        ckt2.add_capacitor("C1", out, gnd, c).unwrap();
        let result = run_scheme(&ckt2, ImplicitScheme::BackwardEuler, &options, &["out"]).unwrap();
        let p = result.probe_index("out").unwrap();
        let t_check = 2.0 * tau;
        let expected = v * (1.0 - (-(t_check - tau * 1e-3) / tau).exp());
        let got = result.sample_at(p, t_check);
        assert!(
            (got - expected).abs() < 0.02,
            "got {got}, expected {expected}"
        );
        assert!(result.stats.accepted_steps > 100);
        assert!(result.stats.lu_factorizations >= result.stats.accepted_steps);
        // The Jacobian pattern is fixed: one symbolic analysis for the DC
        // solve, one for the transient Jacobian, everything else numeric.
        assert!(result.stats.symbolic_analyses <= 2, "{:?}", result.stats);
        assert!(result.stats.lu_refactorizations > result.stats.accepted_steps / 2);
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_backward_euler_at_equal_steps() {
        let (r, c, v) = (1e3, 1e-12, 1.0);
        let tau = r * c;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source(
            "V1",
            vin,
            gnd,
            Waveform::Pwl(vec![(0.0, 0.0), (tau * 1e-3, v)]),
        )
        .unwrap();
        ckt.add_resistor("R1", vin, out, r).unwrap();
        ckt.add_capacitor("C1", out, gnd, c).unwrap();
        let options = TransientOptions {
            t_stop: 3.0 * tau,
            h_init: tau / 20.0,
            h_max: tau / 20.0,
            error_budget: 1.0, // effectively disable LTE rejection for this comparison
            ..TransientOptions::default()
        };
        let be = run_scheme(&ckt, ImplicitScheme::BackwardEuler, &options, &["out"]).unwrap();
        let tr = run_scheme(&ckt, ImplicitScheme::Trapezoidal, &options, &["out"]).unwrap();
        let exact = |t: f64| v * (1.0 - (-(t - tau * 1e-3) / tau).exp());
        let p = be.probe_index("out").unwrap();
        let t_check = tau;
        let be_err = (be.sample_at(p, t_check) - exact(t_check)).abs();
        let tr_err = (tr.sample_at(p, t_check) - exact(t_check)).abs();
        assert!(tr_err < be_err, "tr {tr_err} should beat be {be_err}");
    }

    #[test]
    fn benr_counts_multiple_newton_iterations_on_nonlinear_circuits() {
        let spec = generators::InverterChainSpec {
            stages: 2,
            ..generators::InverterChainSpec::default()
        };
        let ckt = generators::inverter_chain(&spec).unwrap();
        let options = TransientOptions {
            t_stop: 2e-10,
            h_init: 2e-12,
            h_max: 1e-11,
            error_budget: 1e-2,
            ..TransientOptions::default()
        };
        let result =
            run_scheme(&ckt, ImplicitScheme::BackwardEuler, &options, &["s1", "s2"]).unwrap();
        assert!(result.stats.accepted_steps > 10);
        assert!(result.stats.avg_newton_iterations() >= 1.0);
        // Output of the first inverter should stay within the rails.
        let p = result.probe_index("s1").unwrap();
        for (_, value) in result.waveform(p) {
            assert!(value > -0.3 && value < 1.3, "s1 = {value}");
        }
    }

    #[test]
    fn fill_budget_failure_is_reported() {
        let spec = generators::CoupledLinesSpec {
            lines: 4,
            segments: 8,
            random_couplings: 60,
            mosfet_drivers: false,
            ..generators::CoupledLinesSpec::default()
        };
        let ckt = generators::coupled_lines(&spec).unwrap();
        let options = TransientOptions {
            t_stop: 1e-10,
            h_init: 1e-12,
            fill_budget: Some(10),
            ..TransientOptions::default()
        };
        let err = run_scheme(&ckt, ImplicitScheme::BackwardEuler, &options, &[]).unwrap_err();
        assert!(matches!(
            err,
            SimError::Sparse(exi_sparse::SparseError::FillBudgetExceeded { .. })
        ));
    }

    #[test]
    fn deprecated_wrapper_matches_session_run() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source(
            "V1",
            vin,
            gnd,
            Waveform::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]),
        )
        .unwrap();
        ckt.add_resistor("R1", vin, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, gnd, 1e-12).unwrap();
        let options = TransientOptions {
            t_stop: 2e-9,
            h_init: 1e-12,
            h_max: 1e-10,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        #[allow(deprecated)]
        let wrapped =
            run_implicit(&ckt, ImplicitScheme::BackwardEuler, &options, &["out"]).unwrap();
        let session = run_scheme(&ckt, ImplicitScheme::BackwardEuler, &options, &["out"]).unwrap();
        assert_eq!(wrapped.times, session.times);
        assert_eq!(wrapped.samples, session.samples);
    }
}
