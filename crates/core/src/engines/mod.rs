//! Transient integration engines.
//!
//! * [`implicit`] — the low-order implicit baselines: backward Euler with
//!   Newton–Raphson (BENR, the paper's comparison method) and the trapezoidal
//!   rule.
//! * [`er`] — the paper's contribution: exponential Rosenbrock–Euler (ER) and
//!   its corrected variant (ER-C), with invert-Krylov MEVP evaluation and
//!   LU-free step-size control (Algorithm 2).

pub mod er;
pub mod implicit;

use exi_netlist::Circuit;
use exi_sparse::{CsrMatrix, LuOptions, LuWorkspace, SparseError, SparseLu};

use crate::error::{SimError, SimResult};
use crate::options::TransientOptions;
use crate::output::{Probe, TransientResult};
use crate::stats::RunStats;

/// Relative tolerance used when deciding that the simulation reached `t_stop`
/// or a breakpoint.
const TIME_EPSILON: f64 = 1e-12;

/// Resolves probe names to unknown indices.
///
/// # Errors
///
/// Returns a netlist error if a probe name does not exist (ground probes are
/// silently skipped, their value is identically zero).
pub(crate) fn resolve_probes(circuit: &Circuit, names: &[&str]) -> SimResult<Vec<Probe>> {
    let mut probes = Vec::with_capacity(names.len());
    for name in names {
        match circuit.find_node(name) {
            Some(node) => {
                if let Some(idx) = node.unknown() {
                    probes.push(Probe::new(*name, idx));
                }
            }
            None => {
                return Err(SimError::Netlist(exi_netlist::NetlistError::UnknownNode {
                    name: (*name).to_string(),
                }))
            }
        }
    }
    Ok(probes)
}

/// Accumulates accepted time points into a [`TransientResult`].
#[derive(Debug)]
pub(crate) struct Recorder {
    probes: Vec<Probe>,
    times: Vec<f64>,
    samples: Vec<Vec<f64>>,
    full_states: Vec<Vec<f64>>,
    record_full: bool,
}

impl Recorder {
    pub(crate) fn new(probes: Vec<Probe>, record_full: bool) -> Self {
        Recorder {
            probes,
            times: Vec::new(),
            samples: Vec::new(),
            full_states: Vec::new(),
            record_full,
        }
    }

    /// Records an accepted state at time `t`.
    pub(crate) fn record(&mut self, t: f64, x: &[f64]) {
        self.times.push(t);
        self.samples
            .push(self.probes.iter().map(|p| x[p.unknown]).collect());
        if self.record_full {
            self.full_states.push(x.to_vec());
        }
    }

    /// Finalizes the result.
    pub(crate) fn finish(self, final_state: Vec<f64>, stats: RunStats) -> TransientResult {
        TransientResult {
            times: self.times,
            probes: self.probes,
            samples: self.samples,
            full_states: self.full_states,
            final_state,
            stats,
        }
    }
}

/// Computes the largest step that may be taken from `t` without overshooting
/// `t_stop` or stepping across the next waveform breakpoint.
pub(crate) fn clamp_step(t: f64, h: f64, t_stop: f64, breakpoints: &[f64]) -> f64 {
    let mut h = h.min(t_stop - t);
    let guard = TIME_EPSILON * t_stop.max(1e-30);
    for &bp in breakpoints {
        if bp > t + guard {
            if bp < t + h - guard {
                h = bp - t;
            }
            break;
        }
    }
    h.max(0.0)
}

/// Returns `true` when the simulation time has reached the stop time.
pub(crate) fn reached_end(t: f64, t_stop: f64) -> bool {
    t >= t_stop * (1.0 - TIME_EPSILON)
}

/// Obtains an LU factorization of `a`, preferring the cheap numeric-only
/// refactorization path when `cache` already holds a factor whose symbolic
/// analysis matches `a`'s sparsity pattern.
///
/// Falls back to a fresh factorization (with re-pivoting) whenever the
/// refactorization is rejected — pattern change, vanished pivot or excessive
/// element growth. Counts both paths into `stats` so runs expose how much
/// symbolic work they actually reused.
pub(crate) fn refresh_lu(
    cache: &mut Option<SparseLu>,
    a: &CsrMatrix,
    options: &LuOptions,
    ws: &mut LuWorkspace,
    stats: &mut RunStats,
) -> SimResult<()> {
    if let Some(lu) = cache.as_mut() {
        if lu.refactorize_with(a, ws).is_ok() {
            // The fill of a pattern-preserving refactorization is identical
            // to the pilot's, but a budget configured *after* the pilot (or a
            // factor seeded from another analysis) must still be honored.
            if let Some(budget) = options.fill_budget {
                if lu.fill() > budget {
                    return Err(SimError::Sparse(SparseError::FillBudgetExceeded {
                        reached: lu.fill(),
                        budget,
                    }));
                }
            }
            stats.lu_factorizations += 1;
            stats.lu_refactorizations += 1;
            return Ok(());
        }
        // Stale symbolic analysis: discard and re-pivot from scratch.
        *cache = None;
    }
    *cache = Some(SparseLu::factorize_with(a, options)?);
    stats.lu_factorizations += 1;
    stats.symbolic_analyses += 1;
    Ok(())
}

/// Validates options and resolves probes; shared preamble of every engine.
pub(crate) fn prepare(
    circuit: &Circuit,
    options: &TransientOptions,
    probe_names: &[&str],
) -> SimResult<(Vec<Probe>, Vec<f64>)> {
    options.validate()?;
    let probes = resolve_probes(circuit, probe_names)?;
    let breakpoints = circuit.breakpoints(options.t_stop);
    Ok((probes, breakpoints))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_netlist::Waveform;

    #[test]
    fn clamp_step_respects_stop_time_and_breakpoints() {
        let bps = vec![1.0, 2.0, 3.0];
        // Far from any breakpoint.
        assert_eq!(clamp_step(0.0, 0.5, 10.0, &bps), 0.5);
        // Would cross the breakpoint at 1.0.
        assert_eq!(clamp_step(0.8, 0.5, 10.0, &bps), 1.0 - 0.8);
        // Sitting exactly on a breakpoint: the next one limits the step.
        let h = clamp_step(1.0, 5.0, 10.0, &bps);
        assert!((h - 1.0).abs() < 1e-9);
        // Near the end of the interval.
        assert!((clamp_step(9.9, 1.0, 10.0, &[]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reached_end_is_tolerant() {
        assert!(reached_end(1.0, 1.0));
        assert!(reached_end(1.0 - 1e-15, 1.0));
        assert!(!reached_end(0.5, 1.0));
    }

    #[test]
    fn probes_resolve_and_reject_unknown_names() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V1", a, gnd, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, gnd, 1.0).unwrap();
        let probes = resolve_probes(&ckt, &["a", "0"]).unwrap();
        assert_eq!(probes.len(), 1); // ground probe silently dropped
        assert!(resolve_probes(&ckt, &["nope"]).is_err());
    }

    #[test]
    fn recorder_collects_samples() {
        let probes = vec![Probe::new("a", 0)];
        let mut rec = Recorder::new(probes, true);
        rec.record(0.0, &[1.0, 2.0]);
        rec.record(1.0, &[3.0, 4.0]);
        let result = rec.finish(vec![3.0, 4.0], RunStats::new());
        assert_eq!(result.len(), 2);
        assert_eq!(result.samples[1][0], 3.0);
        assert_eq!(result.full_states.len(), 2);
        assert_eq!(result.final_state, vec![3.0, 4.0]);
    }
}
