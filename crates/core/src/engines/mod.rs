//! Transient integration engines.
//!
//! * [`implicit`] — the low-order implicit baselines: backward Euler with
//!   Newton–Raphson (BENR, the paper's comparison method) and the trapezoidal
//!   rule.
//! * [`er`] — the paper's contribution: exponential Rosenbrock–Euler (ER) and
//!   its corrected variant (ER-C), with invert-Krylov MEVP evaluation and
//!   LU-free step-size control (Algorithm 2).
//!
//! Both engines expose the same incremental [`Engine`] interface: a stepper
//! is initialized at `(t0, x0)`, advanced one accepted step at a time, can be
//! queried (and paused) between steps, and is finalized into a
//! [`RunStats`]. Simulation events stream to an
//! [`Observer`]. The [`Simulator`](crate::Simulator) session object
//! owns the reusable caches the steppers borrow.

pub mod er;
pub mod implicit;

use std::collections::HashMap;

use exi_netlist::Circuit;
use exi_sparse::{
    pattern_fingerprint, CsrMatrix, FactorSource, LuOptions, LuWorkspace, OrderingMethod,
    SparseError, SparseLu, SymbolicCache,
};

use crate::error::{SimError, SimResult};
use crate::observer::Observer;
use crate::options::TransientOptions;
use crate::output::Probe;
use crate::stats::RunStats;

/// Relative tolerance used when deciding that the simulation reached `t_stop`
/// or a breakpoint.
pub(crate) const TIME_EPSILON: f64 = 1e-12;

/// Outcome of advancing (or driving) a stepper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepOutcome {
    /// One step was accepted; the simulation advanced to time `t` with
    /// accepted step size `h`.
    Advanced {
        /// New simulation time.
        t: f64,
        /// Size of the accepted step.
        h: f64,
    },
    /// The stepper paused before `t_stop` (only produced by
    /// [`Engine::run_until`]); it can be queried and resumed.
    Paused {
        /// Simulation time at the pause point.
        t: f64,
    },
    /// The stepper reached `t_stop`; further calls are no-ops.
    Finished,
}

/// Incremental time-integration interface shared by every engine (BENR, TRNR,
/// ER and ER-C).
///
/// A stepper is created by [`crate::Simulator::stepper`] with all reusable
/// caches wired up, then driven through this trait:
///
/// 1. [`Engine::init`] places the stepper at `(t0, x0)` — steppers obtained
///    from a [`crate::Simulator`] also auto-initialize at the DC operating
///    point on the first [`Engine::advance`];
/// 2. [`Engine::advance`] performs exactly one accepted step (with its
///    internal rejection/retry loop) and reports it to the observer;
/// 3. [`Engine::state`] / [`Engine::time`] / [`Engine::stats`] can be queried
///    at any step boundary — a paused stepper holds all its hot-loop state
///    and resumes bit-identically;
/// 4. [`Engine::finish`] finalizes the counters and emits
///    [`Observer::on_finish`].
pub trait Engine {
    /// Initializes (or re-initializes, e.g. from a checkpoint) the stepper at
    /// time `t0` with state `x0`, emitting [`Observer::on_dc`].
    ///
    /// # Errors
    ///
    /// Currently infallible for the built-in engines; the `Result` leaves
    /// room for engines that must validate `x0`.
    fn init(&mut self, t0: f64, x0: &[f64], observer: &mut dyn Observer) -> SimResult<()>;

    /// Advances the simulation by one accepted step, or returns
    /// [`StepOutcome::Finished`] when `t_stop` has been reached.
    ///
    /// # Errors
    ///
    /// Step-size underflow, Newton non-convergence and kernel failures, as
    /// documented on the concrete engines.
    fn advance(&mut self, observer: &mut dyn Observer) -> SimResult<StepOutcome>;

    /// The current state vector (valid at any step boundary).
    fn state(&self) -> &[f64];

    /// The current simulation time.
    fn time(&self) -> f64;

    /// The statistics accumulated so far.
    fn stats(&self) -> &RunStats;

    /// Mutable access to the statistics (used by the provided driver methods
    /// to account pauses and resumes).
    fn stats_mut(&mut self) -> &mut RunStats;

    /// Returns `true` once the stepper has reached `t_stop`.
    fn is_finished(&self) -> bool;

    /// Finalizes the run: fixes up the final counters (runtime, workspace
    /// allocations), emits [`Observer::on_finish`] once, and returns the
    /// statistics. Idempotent — later calls return the same statistics
    /// without re-emitting the event.
    fn finish(&mut self, observer: &mut dyn Observer) -> RunStats;

    /// Drives the stepper until the simulation time reaches `t_pause` (or
    /// `t_stop`, whichever comes first). Returns [`StepOutcome::Paused`] when
    /// stopped short of `t_stop`.
    ///
    /// Calling `run_until` again on a stepper that already advanced counts as
    /// a resume ([`RunStats::resumed_runs`]); the continuation is
    /// bit-identical to an uninterrupted run because all hot-loop state is
    /// retained across the pause.
    ///
    /// # Errors
    ///
    /// Propagates [`Engine::advance`] errors.
    fn run_until(&mut self, t_pause: f64, observer: &mut dyn Observer) -> SimResult<StepOutcome> {
        // Count a resume only when this call will actually advance the
        // stepper — a no-op poll (t_pause already reached) is not a resume.
        if self.stats().accepted_steps > 0
            && !self.is_finished()
            && self.time() < t_pause * (1.0 - TIME_EPSILON)
        {
            self.stats_mut().resumed_runs += 1;
        }
        while !self.is_finished() && self.time() < t_pause * (1.0 - TIME_EPSILON) {
            if let StepOutcome::Finished = self.advance(observer)? {
                return Ok(StepOutcome::Finished);
            }
        }
        if self.is_finished() {
            Ok(StepOutcome::Finished)
        } else {
            Ok(StepOutcome::Paused { t: self.time() })
        }
    }

    /// Drives the stepper to `t_stop` and finalizes it.
    ///
    /// Like [`Engine::run_until`], continuing a stepper that already advanced
    /// (and has not finished) counts as a resume.
    ///
    /// # Errors
    ///
    /// Propagates [`Engine::advance`] errors.
    fn run_to_end(&mut self, observer: &mut dyn Observer) -> SimResult<RunStats> {
        if self.stats().accepted_steps > 0 && !self.is_finished() {
            self.stats_mut().resumed_runs += 1;
        }
        while !matches!(self.advance(observer)?, StepOutcome::Finished) {}
        Ok(self.finish(observer))
    }
}

/// Resolves probe names to [`Probe`]s over the circuit's unknown indices —
/// what [`crate::Simulator::transient`] does with its `probe_names` argument,
/// exposed for front-ends driving an [`crate::Observer`] directly.
///
/// # Errors
///
/// Returns a netlist error if a probe name does not exist (ground probes are
/// silently skipped, their value is identically zero).
pub fn resolve_probes(circuit: &Circuit, names: &[&str]) -> SimResult<Vec<Probe>> {
    let mut probes = Vec::with_capacity(names.len());
    for name in names {
        match circuit.find_node(name) {
            Some(node) => {
                if let Some(idx) = node.unknown() {
                    probes.push(Probe::new(*name, idx));
                }
            }
            None => {
                return Err(SimError::Netlist(exi_netlist::NetlistError::UnknownNode {
                    name: (*name).to_string(),
                }))
            }
        }
    }
    Ok(probes)
}

/// Computes the largest step that may be taken from `t` without overshooting
/// `t_stop` or stepping across the next waveform breakpoint.
pub(crate) fn clamp_step(t: f64, h: f64, t_stop: f64, breakpoints: &[f64]) -> f64 {
    let mut h = h.min(t_stop - t);
    let guard = TIME_EPSILON * t_stop.max(1e-30);
    for &bp in breakpoints {
        if bp > t + guard {
            if bp < t + h - guard {
                h = bp - t;
            }
            break;
        }
    }
    h.max(0.0)
}

/// Returns `true` when the simulation time has reached the stop time.
pub(crate) fn reached_end(t: f64, t_stop: f64) -> bool {
    t >= t_stop * (1.0 - TIME_EPSILON)
}

/// The cache key of one LU pattern: the shared cache's own
/// [`pattern_fingerprint`] plus the fill-reducing ordering (a different
/// ordering is a different analysis).
pub(crate) type LuPatternKey = (u64, OrderingMethod);

/// One engine-facing LU cache slot: the current factor plus — for sessions
/// attached to a shared [`SymbolicCache`] — the pattern key it was built
/// under, so a displaced factor can be retired into the session's
/// [`RetainedFactors`] pool instead of being discarded.
#[derive(Debug, Default)]
pub(crate) struct LuSlot {
    /// The cached factorization; `None` until the first [`refresh_lu`].
    pub(crate) factor: Option<SparseLu>,
    /// Pattern key of `factor`. Only maintained for shared sessions (it
    /// costs a pattern hash); `None` otherwise.
    key: Option<LuPatternKey>,
}

impl LuSlot {
    /// The cached factor, if any.
    pub(crate) fn get(&self) -> Option<&SparseLu> {
        self.factor.as_ref()
    }
}

/// Session-local pool of LU factors displaced from a [`LuSlot`] by a
/// mid-run sparsity-pattern change (e.g. a MOSFET crossing regions), keyed
/// like the shared [`SymbolicCache`].
///
/// This is what keeps warm lookups off the shared cache's blocking lock on
/// the step hot path: a pattern the session has factorized before is revived
/// with a **local, lock-free** numeric refactorization — bit-identical to
/// the `from_symbolic` derivation the shared cache would perform, because
/// both replay the same recorded elimination on the same values. Only
/// populated for sessions attached to a shared cache; unshared sessions keep
/// their original discard-and-re-analyze behavior (and bit-exact output).
#[derive(Debug, Default)]
pub(crate) struct RetainedFactors {
    factors: HashMap<LuPatternKey, SparseLu>,
}

impl RetainedFactors {
    /// Patterns a session plausibly alternates between; beyond this the
    /// displaced factor is dropped (the shared cache still serves the
    /// pattern, at the cost of its lock).
    const CAPACITY: usize = 8;

    fn retire(&mut self, key: LuPatternKey, factor: SparseLu) {
        if self.factors.len() < Self::CAPACITY {
            self.factors.insert(key, factor);
        }
    }

    fn revive(&mut self, key: &LuPatternKey) -> Option<SparseLu> {
        self.factors.remove(key)
    }
}

/// Obtains an LU factorization of `a`, preferring the cheap numeric-only
/// refactorization path when `slot` already holds a factor whose symbolic
/// analysis matches `a`'s sparsity pattern.
///
/// The lookup ladder, cheapest first — the step hot path (fixed pattern)
/// never goes past the first rung, and no rung before the shared pool takes
/// a lock:
///
/// 1. **In-place refactorization** of the slot's current factor (pattern
///    unchanged — no hashing, no locks).
/// 2. **Retained-factor revival** (shared sessions only): a pattern this
///    session factorized earlier in the run is refactorized locally instead
///    of re-locking the shared cache.
/// 3. **Shared pool** ([`SymbolicCache`], once per pattern per session): a
///    hit derives the factor from the published analysis — counted as a
///    refactorization plus a [`RunStats::shared_symbolic_hits`], with any
///    blocked time charged to [`RunStats::cache_wait`] — and a miss runs
///    the pilot analysis, publishing it for the fleet.
/// 4. **Fresh analysis** (unshared sessions).
///
/// Falls back to a fresh factorization (with re-pivoting) whenever a
/// refactorization is rejected — pattern change, vanished pivot or excessive
/// element growth. Counts every path into `stats` so runs expose how much
/// symbolic work they actually reused.
pub(crate) fn refresh_lu(
    slot: &mut LuSlot,
    retained: &mut RetainedFactors,
    shared: Option<&SymbolicCache>,
    a: &CsrMatrix,
    options: &LuOptions,
    ws: &mut LuWorkspace,
    stats: &mut RunStats,
) -> SimResult<()> {
    if let Some(lu) = slot.factor.as_mut() {
        if lu.refactorize_with(a, ws).is_ok() {
            // The fill of a pattern-preserving refactorization is identical
            // to the pilot's, but a budget configured *after* the pilot (or a
            // factor seeded from another analysis) must still be honored.
            check_fill_budget(lu, options)?;
            stats.lu_factorizations += 1;
            stats.lu_refactorizations += 1;
            return Ok(());
        }
        // Stale symbolic analysis. Shared sessions retire the factor for a
        // lock-free revival should the run flip back to its pattern;
        // unshared sessions discard and re-pivot from scratch, as always.
        let displaced = slot.factor.take();
        let displaced_key = slot.key.take();
        if shared.is_some() {
            if let (Some(key), Some(old)) = (displaced_key, displaced) {
                retained.retire(key, old);
            }
        }
    }
    match shared {
        Some(pool) => {
            let key = (pattern_fingerprint(a), options.ordering);
            if let Some(mut lu) = retained.revive(&key) {
                if lu.refactorize_with(a, ws).is_ok() {
                    check_fill_budget(&lu, options)?;
                    stats.lu_factorizations += 1;
                    stats.lu_refactorizations += 1;
                    slot.key = Some(key);
                    slot.factor = Some(lu);
                    return Ok(());
                }
                // Frozen pivots no longer viable for these values: drop the
                // retired factor and let the pool decide (it re-pivots).
            }
            let (lu, source, wait) = pool.factorize_timed(a, options, ws)?;
            stats.lu_factorizations += 1;
            stats.cache_wait += wait.blocked;
            stats.shared_symbolic_wait_events += wait.events;
            match source {
                FactorSource::Shared => {
                    stats.lu_refactorizations += 1;
                    stats.shared_symbolic_hits += 1;
                }
                FactorSource::Analyzed => stats.symbolic_analyses += 1,
            }
            slot.key = Some(key);
            slot.factor = Some(lu);
        }
        None => {
            slot.factor = Some(SparseLu::factorize_with(a, options)?);
            stats.lu_factorizations += 1;
            stats.symbolic_analyses += 1;
        }
    }
    Ok(())
}

/// Rejects a factor whose fill exceeds the configured budget.
fn check_fill_budget(lu: &SparseLu, options: &LuOptions) -> SimResult<()> {
    if let Some(budget) = options.fill_budget {
        if lu.fill() > budget {
            return Err(SimError::Sparse(SparseError::FillBudgetExceeded {
                reached: lu.fill(),
                budget,
            }));
        }
    }
    Ok(())
}

/// Validates options and computes waveform breakpoints; shared preamble of
/// every engine.
pub(crate) fn prepare(circuit: &Circuit, options: &TransientOptions) -> SimResult<Vec<f64>> {
    options.validate()?;
    Ok(circuit.breakpoints(options.t_stop))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_netlist::Waveform;

    #[test]
    fn clamp_step_respects_stop_time_and_breakpoints() {
        let bps = vec![1.0, 2.0, 3.0];
        // Far from any breakpoint.
        assert_eq!(clamp_step(0.0, 0.5, 10.0, &bps), 0.5);
        // Would cross the breakpoint at 1.0.
        assert_eq!(clamp_step(0.8, 0.5, 10.0, &bps), 1.0 - 0.8);
        // Sitting exactly on a breakpoint: the next one limits the step.
        let h = clamp_step(1.0, 5.0, 10.0, &bps);
        assert!((h - 1.0).abs() < 1e-9);
        // Near the end of the interval.
        assert!((clamp_step(9.9, 1.0, 10.0, &[]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reached_end_is_tolerant() {
        assert!(reached_end(1.0, 1.0));
        assert!(reached_end(1.0 - 1e-15, 1.0));
        assert!(!reached_end(0.5, 1.0));
    }

    #[test]
    fn probes_resolve_and_reject_unknown_names() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V1", a, gnd, Waveform::Dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, gnd, 1.0).unwrap();
        let probes = resolve_probes(&ckt, &["a", "0"]).unwrap();
        assert_eq!(probes.len(), 1); // ground probe silently dropped
        assert!(resolve_probes(&ckt, &["nope"]).is_err());
    }
}
