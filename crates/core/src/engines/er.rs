//! Exponential Rosenbrock–Euler transient engines (ER and ER-C).
//!
//! This is the paper's contribution (Sec. III–IV, Algorithm 2). Per accepted
//! step the engine:
//!
//! 1. evaluates the devices at `x_k` and LU-factorizes **only** `G_k`
//!    (Algorithm 2 line 5) — never `C_k` nor `C_k/h + G_k`;
//! 2. builds invert-Krylov subspaces for the φ₁/φ₂ terms of Eq. (14) with
//!    the residual test of Eq. (22);
//! 3. checks the local nonlinear error estimator of Eq. (15)/(24) and, if it
//!    exceeds the budget, shrinks the step *without any new factorization*
//!    (scaling-invariance of the Krylov decomposition);
//! 4. optionally applies the φ₂ correction term of Eq. (16)/(25) (ER-C).
//!
//! Because `G`'s sparsity pattern is fixed for the whole run, only the very
//! first factorization performs the symbolic analysis (ordering, pivot
//! search, reachability DFS) — every later step reuses it through the
//! numeric-only [`SparseLu::refactorize_with`] path, and the engine even
//! seeds its cache with the factor the DC solve already computed. All
//! triangular solves, matrix–vector products, Krylov subspace builds **and
//! device evaluations** (restamped through the session's precompiled
//! [`EvalPlan`] — no COO assembly, no sort) run through reusable
//! workspaces, so the hot loop performs no circuit-sized allocation in
//! steady state. The caches live in the [`Simulator`](crate::Simulator)
//! session, so they also survive across runs.
//!
//! The engine is exposed as the incremental [`ErStepper`] (one accepted step
//! per [`Engine::advance`] call); [`run_exponential_rosenbrock`] remains as a
//! deprecated one-shot wrapper.
//!
//! All `C⁻¹` factors that appear in the paper's formulas cancel analytically
//! against the φ denominators, so a singular capacitance matrix needs no
//! regularization — the implementation only ever solves with `G_k`:
//!
//! ```text
//! x_{k+1} = x_k + (e^{hJ} − I)·w₁ + (φ₁(hJ) − I)·w₂,
//!     w₁ = G_k⁻¹ (f(x_k) − B·u(t_k)),          w₂ = −G_k⁻¹ B·(u(t_{k+1}) − u(t_k)),
//! err     = −(e^{hJ} − I)·w₃,                  w₃ = G_k⁻¹ ΔF_k,
//! D_k     = −γ·(φ₁(hJ) − I)·w₃                  (ER-C correction)
//! ```

use std::sync::Arc;
use std::time::Instant;

use exi_krylov::{mevp_invert_krylov_with, KrylovDecomposition, MevpOptions, MevpWorkspace};
use exi_netlist::{Circuit, EvalPlan, Evaluation};
use exi_sparse::{vector, LuOptions, SparseLu};

use crate::engines::{clamp_step, prepare, reached_end, refresh_lu, Engine, StepOutcome};
use crate::error::{SimError, SimResult};
use crate::observer::Observer;
use crate::options::TransientOptions;
use crate::output::TransientResult;
use crate::session::SessionCaches;
use crate::stats::RunStats;

/// Threshold below which a Krylov start vector is treated as zero (its
/// contribution to the step is exactly representable as zero).
const NEGLIGIBLE_NORM: f64 = 1e-300;

/// Incremental exponential Rosenbrock–Euler stepper (ER, and ER-C with the
/// φ₂ correction).
///
/// Created by [`Simulator::stepper`](crate::Simulator::stepper) with
/// [`Method::ExponentialRosenbrock`](crate::Method::ExponentialRosenbrock) or
/// [`Method::ExponentialRosenbrockCorrected`](crate::Method::ExponentialRosenbrockCorrected);
/// driven through the [`Engine`] trait. Each [`Engine::advance`] performs one
/// accepted step of Algorithm 2 (including its LU-free rejection loop). All
/// hot-loop state lives in the struct, so a paused stepper resumes
/// bit-identically.
#[derive(Debug)]
pub struct ErStepper<'a> {
    circuit: &'a Circuit,
    caches: &'a mut SessionCaches,
    /// The session's compiled stamping plan (shared handle; the per-step
    /// restamps go through it instead of COO assembly).
    plan: Arc<EvalPlan>,
    options: TransientOptions,
    correction: bool,
    lu_options: LuOptions,
    mevp_options: MevpOptions,
    breakpoints: Vec<f64>,
    n: usize,
    // Circuit-sized scratch buffers, allocated once per stepper.
    eval_k: Evaluation,
    eval_next: Evaluation,
    u_k: Vec<f64>,
    u_next: Vec<f64>,
    bu_k: Vec<f64>,
    rhs: Vec<f64>,
    bdu: Vec<f64>,
    w1: Vec<f64>,
    w2: Vec<f64>,
    w3: Vec<f64>,
    candidate: Vec<f64>,
    dx: Vec<f64>,
    delta_f: Vec<f64>,
    kry: Vec<f64>,
    du: Vec<f64>,
    x: Vec<f64>,
    t: f64,
    h: f64,
    stats: RunStats,
    finished: bool,
    finalized: bool,
    alloc_baseline: usize,
    assembly_alloc_baseline: usize,
}

impl<'a> ErStepper<'a> {
    /// Builds a stepper over the session caches; `dc_stats` is the DC cost
    /// charged to this run (zeroed when the session reused a cached DC
    /// solution).
    pub(crate) fn new(
        circuit: &'a Circuit,
        caches: &'a mut SessionCaches,
        correction: bool,
        options: TransientOptions,
        dc_stats: RunStats,
    ) -> SimResult<Self> {
        let breakpoints = prepare(circuit, &options)?;
        let n = circuit.num_unknowns();
        let lu_options = LuOptions {
            ordering: options.ordering,
            fill_budget: options.fill_budget,
            ..LuOptions::default()
        };
        let mevp_options = MevpOptions {
            tolerance: options.krylov_tolerance,
            max_dimension: options.krylov_max_dimension,
            min_dimension: 2,
            allow_unconverged: true,
        };
        let plan = Arc::clone(
            caches
                .plan
                .as_ref()
                .expect("session compiled the evaluation plan"),
        );
        let input_dim = plan.input_matrix().cols();
        let du = vec![0.0; input_dim];
        let alloc_baseline = caches.mevp_ws.allocations();
        let assembly_alloc_baseline = caches.eval_ws.allocations();
        Ok(ErStepper {
            circuit,
            caches,
            options,
            correction,
            lu_options,
            mevp_options,
            breakpoints,
            n,
            eval_k: plan.new_evaluation(),
            eval_next: plan.new_evaluation(),
            u_k: vec![0.0; input_dim],
            u_next: vec![0.0; input_dim],
            plan,
            bu_k: vec![0.0; n],
            rhs: vec![0.0; n],
            bdu: vec![0.0; n],
            w1: vec![0.0; n],
            w2: vec![0.0; n],
            w3: vec![0.0; n],
            candidate: vec![0.0; n],
            dx: vec![0.0; n],
            delta_f: vec![0.0; n],
            kry: vec![0.0; n],
            du,
            x: vec![0.0; n],
            t: 0.0,
            h: 0.0,
            stats: dc_stats,
            finished: true, // until init() places the stepper
            finalized: false,
            alloc_baseline,
            assembly_alloc_baseline,
        })
    }
}

impl Engine for ErStepper<'_> {
    fn init(&mut self, t0: f64, x0: &[f64], observer: &mut dyn Observer) -> SimResult<()> {
        if x0.len() != self.n {
            return Err(SimError::InvalidOptions {
                message: format!(
                    "initial state has {} entries, circuit has {} unknowns",
                    x0.len(),
                    self.n
                ),
            });
        }
        self.x.copy_from_slice(x0);
        self.t = t0;
        self.h = self.options.h_init;
        self.finished = reached_end(t0, self.options.t_stop);
        self.finalized = false;
        self.stats.observer_callbacks += 1;
        observer.on_dc(t0, &self.x);
        Ok(())
    }

    fn advance(&mut self, observer: &mut dyn Observer) -> SimResult<StepOutcome> {
        let started = Instant::now();
        let mut dec1 = None;
        let mut dec2 = None;
        let mut dec3 = None;
        let result = self.advance_step(observer, &mut dec1, &mut dec2, &mut dec3);
        // On an error exit, return any outstanding subspace bases to the
        // session arena (it outlives the run); the success path already
        // recycled them in order and left the slots empty.
        for dec in [dec1, dec2, dec3].into_iter().flatten() {
            self.caches.mevp_ws.recycle(dec);
        }
        // Runtime accumulates only active solver time: pauses between
        // advance() calls (checkpointing, co-simulation interleaves) and the
        // idle life of the stepper are not charged.
        self.stats.runtime += started.elapsed();
        result
    }

    fn state(&self) -> &[f64] {
        &self.x
    }

    fn time(&self) -> f64 {
        self.t
    }

    fn stats(&self) -> &RunStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut RunStats {
        &mut self.stats
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn finish(&mut self, observer: &mut dyn Observer) -> RunStats {
        if !self.finalized {
            self.finalized = true;
            self.stats.krylov_workspace_allocations =
                self.caches.mevp_ws.allocations() - self.alloc_baseline;
            self.stats.assembly_workspace_allocations =
                self.caches.eval_ws.allocations() - self.assembly_alloc_baseline;
            self.stats.observer_callbacks += 1;
            observer.on_finish(&self.x, &self.stats);
        }
        self.stats.clone()
    }
}

impl ErStepper<'_> {
    /// One accepted step of Algorithm 2. The three Krylov decompositions are
    /// handed in as caller-owned slots so [`Engine::advance`] can recycle
    /// whatever is still checked out of the arena when an error unwinds.
    fn advance_step(
        &mut self,
        observer: &mut dyn Observer,
        dec1: &mut Option<KrylovDecomposition>,
        dec2: &mut Option<KrylovDecomposition>,
        dec3: &mut Option<KrylovDecomposition>,
    ) -> SimResult<StepOutcome> {
        if self.finished {
            return Ok(StepOutcome::Finished);
        }
        let n = self.n;
        let caches = &mut *self.caches;
        let plan = Arc::clone(&self.plan);

        // --- Algorithm 2 lines 4-6: linearize, factorize G, build subspaces. ---
        self.stats.restamped_entries +=
            plan.evaluate_into(&self.x, &mut caches.eval_ws, &mut self.eval_k)?;
        self.stats.device_evaluations += 1;
        #[cfg(feature = "fault-injection")]
        crate::fault::on_device_eval(&mut self.eval_k);
        let b = plan.input_matrix();
        self.circuit.input_vector_into(self.t, &mut self.u_k);
        b.mul_vec_into(&self.u_k, &mut self.bu_k);
        refresh_lu(
            &mut caches.g_lu,
            &mut caches.retained,
            caches.shared.as_deref(),
            &self.eval_k.g,
            &self.lu_options,
            &mut caches.lu_ws,
            &mut self.stats,
        )?;
        let g_lu_ref = caches.g_lu.get().expect("refresh_lu populated the cache");

        // w1 = G⁻¹ (f(x_k) − B·u_k): the "distance to quasi-equilibrium".
        for i in 0..n {
            self.rhs[i] = self.eval_k.f[i] - self.bu_k[i];
        }
        g_lu_ref.solve_into(&self.rhs, &mut self.w1, &mut caches.lu_ws)?;
        self.stats.linear_solves += 1;
        *dec1 = build_subspace(
            &self.eval_k,
            g_lu_ref,
            &self.w1,
            self.t,
            self.h,
            &self.mevp_options,
            &mut self.stats,
            &mut caches.mevp_ws,
        )?;

        // The step-size loop (Algorithm 2 lines 8-21): no LU, no new w1 subspace.
        let h_base = clamp_step(
            self.t,
            self.h.min(self.options.h_max),
            self.options.t_stop,
            &self.breakpoints,
        );
        if h_base < self.options.h_min {
            return Err(SimError::StepSizeUnderflow {
                time: self.t,
                step: h_base,
            });
        }
        let mut h_step = h_base;
        // w2 is proportional to Δu = u(t+h) − u(t); within one breakpoint
        // interval the input is piecewise linear, so when h shrinks the vector
        // only scales and the subspace can be reused.
        self.circuit
            .input_vector_into(self.t + h_step, &mut self.u_next);
        for (d, (un, uk)) in self
            .du
            .iter_mut()
            .zip(self.u_next.iter().zip(self.u_k.iter()))
        {
            *d = un - uk;
        }
        b.mul_vec_into(&self.du, &mut self.bdu);
        g_lu_ref.solve_into(&self.bdu, &mut self.w2, &mut caches.lu_ws)?;
        self.stats.linear_solves += 1;
        vector::scale(-1.0, &mut self.w2);
        *dec2 = build_subspace(
            &self.eval_k,
            g_lu_ref,
            &self.w2,
            self.t,
            h_step,
            &self.mevp_options,
            &mut self.stats,
            &mut caches.mevp_ws,
        )?;
        let h_ref_for_w2 = h_step;

        let mut rejections = 0usize;
        let accepted_h = loop {
            // --- Candidate x_{k+1} from Eq. (14). ---
            self.candidate.copy_from_slice(&self.x);
            if let Some(dec) = &dec1 {
                dec.eval_expv_into(h_step, &mut self.kry)?;
                for i in 0..n {
                    self.candidate[i] += self.kry[i] - self.w1[i];
                }
            }
            if let Some(dec) = &dec2 {
                // Rescale w2 for the (possibly reduced) step: w2(h) = w2(h_ref)·h/h_ref.
                let scale = h_step / h_ref_for_w2;
                dec.eval_phi_into(1, h_step, &mut self.kry)?;
                for i in 0..n {
                    self.candidate[i] += scale * (self.kry[i] - self.w2[i]);
                }
            }

            // --- Error estimator of Eq. (15)/(24). ---
            self.stats.restamped_entries +=
                plan.evaluate_into(&self.candidate, &mut caches.eval_ws, &mut self.eval_next)?;
            self.stats.device_evaluations += 1;
            // ΔF_k = G_k·(x_{k+1} − x_k) − (f(x_{k+1}) − f(x_k)).
            for i in 0..n {
                self.dx[i] = self.candidate[i] - self.x[i];
            }
            self.eval_k.g.mul_vec_into(&self.dx, &mut self.delta_f);
            for (i, df) in self.delta_f.iter_mut().enumerate() {
                *df -= self.eval_next.f[i] - self.eval_k.f[i];
            }
            g_lu_ref.solve_into(&self.delta_f, &mut self.w3, &mut caches.lu_ws)?;
            self.stats.linear_solves += 1;
            *dec3 = build_subspace(
                &self.eval_k,
                g_lu_ref,
                &self.w3,
                self.t,
                h_step,
                &self.mevp_options,
                &mut self.stats,
                &mut caches.mevp_ws,
            )?;

            let error_norm = match &*dec3 {
                Some(dec) => {
                    dec.eval_expv_into(h_step, &mut self.kry)?;
                    let mut err = 0.0_f64;
                    for i in 0..n {
                        err = err.max((self.kry[i] - self.w3[i]).abs());
                    }
                    if self.correction && err <= self.options.error_budget {
                        // D_k = −γ·(φ₁(hJ) − I)·w₃  (Eq. 25); x_{k+1,c} = x_{k+1} − D_k.
                        dec.eval_phi_into(1, h_step, &mut self.kry)?;
                        for i in 0..n {
                            self.candidate[i] +=
                                self.options.correction_gamma * (self.kry[i] - self.w3[i]);
                        }
                    }
                    err
                }
                None => 0.0,
            };
            if let Some(dec) = dec3.take() {
                caches.mevp_ws.recycle(dec);
            }

            if error_norm <= self.options.error_budget {
                break h_step;
            }
            // Reject: shrink the step. No LU decomposition and no rebuild of
            // the w1/w2 subspaces is needed (Algorithm 2 lines 20).
            rejections += 1;
            self.stats.rejected_steps += 1;
            self.stats.observer_callbacks += 1;
            observer.on_step_rejected(self.t, h_step);
            h_step *= self.options.shrink_factor;
            if h_step < self.options.h_min {
                return Err(SimError::StepSizeUnderflow {
                    time: self.t,
                    step: h_step,
                });
            }
        };

        self.x.copy_from_slice(&self.candidate);
        self.t += accepted_h;
        // Solution-boundary guard: a non-finite accepted state means a
        // matrix-exponential evaluation overflowed past the w-vector checks.
        if self.x.iter().any(|v| !v.is_finite()) {
            return Err(SimError::NonFinite {
                time: self.t,
                device: None,
            });
        }
        self.stats.accepted_steps += 1;
        self.stats.observer_callbacks += 1;
        #[cfg(feature = "fault-injection")]
        crate::fault::maybe_panic_on_accept();
        observer.on_step_accepted(self.t, &self.x);
        // Hand the step's subspace bases back to the arena for the next step.
        if let Some(dec) = dec1.take() {
            caches.mevp_ws.recycle(dec);
        }
        if let Some(dec) = dec2.take() {
            caches.mevp_ws.recycle(dec);
        }

        // Algorithm 2 lines 23-25: an easy step earns a larger next step.
        if rejections <= self.options.easy_step_threshold {
            self.h = (accepted_h * self.options.growth_factor).min(self.options.h_max);
        } else {
            self.h = accepted_h;
        }

        if reached_end(self.t, self.options.t_stop) {
            self.finished = true;
        }
        Ok(StepOutcome::Advanced {
            t: self.t,
            h: accepted_h,
        })
    }
}

/// Runs an exponential Rosenbrock–Euler transient analysis.
///
/// With `correction = false` this is the plain **ER** method (paper Eq. 14);
/// with `correction = true` it is **ER-C** (Eq. 17/25), which reuses the
/// error-estimator subspace to add a φ₂ correction term.
///
/// # Errors
///
/// * [`SimError::StepSizeUnderflow`] if the nonlinear error cannot be brought
///   below the budget even at `h_min`.
/// * [`SimError::Sparse`] / [`SimError::Krylov`] / [`SimError::Netlist`] for
///   kernel failures.
#[deprecated(
    since = "0.2.0",
    note = "create a `Simulator` and call `transient(Method::ExponentialRosenbrock[Corrected], …)` \
            — a session reuses LU caches and workspaces across runs"
)]
pub fn run_exponential_rosenbrock(
    circuit: &Circuit,
    correction: bool,
    options: &TransientOptions,
    probe_names: &[&str],
) -> SimResult<TransientResult> {
    let method = if correction {
        crate::Method::ExponentialRosenbrockCorrected
    } else {
        crate::Method::ExponentialRosenbrock
    };
    crate::Simulator::new(circuit).transient(method, options, probe_names)
}

/// Builds an invert-Krylov subspace for vector `v`, or `None` when the vector
/// is (numerically) zero and its contribution vanishes.
#[allow(clippy::too_many_arguments)]
fn build_subspace(
    eval: &exi_netlist::Evaluation,
    g_lu: &SparseLu,
    v: &[f64],
    t: f64,
    h: f64,
    mevp_options: &MevpOptions,
    stats: &mut RunStats,
    ws: &mut MevpWorkspace,
) -> SimResult<Option<KrylovDecomposition>> {
    if vector::norm2(v) < NEGLIGIBLE_NORM {
        return Ok(None);
    }
    if v.iter().any(|x| !x.is_finite()) {
        // A non-finite vector here means an upstream evaluation overflowed.
        return Err(SimError::NonFinite {
            time: t,
            device: None,
        });
    }
    #[cfg(feature = "fault-injection")]
    if crate::fault::krylov_breakdown_due() {
        return Err(SimError::Krylov(exi_krylov::KrylovError::Breakdown {
            dimension: 0,
        }));
    }
    let outcome = mevp_invert_krylov_with(&eval.c, &eval.g, g_lu, v, h, mevp_options, ws)?;
    stats.krylov_subspaces += 1;
    stats.krylov_dimension_total += outcome.dimension;
    stats.peak_krylov_dimension = stats.peak_krylov_dimension.max(outcome.dimension);
    // The engine evaluates through the decomposition; the eagerly computed
    // product is not needed, so its storage goes straight back to the pool.
    ws.recycle_vec(outcome.mevp);
    Ok(Some(outcome.decomposition))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::implicit::ImplicitScheme;
    use crate::session::Simulator;
    use crate::transient::Method;
    use exi_netlist::{generators, Waveform};

    fn run_er(
        ckt: &Circuit,
        correction: bool,
        options: &TransientOptions,
        probes: &[&str],
    ) -> SimResult<TransientResult> {
        let method = if correction {
            Method::ExponentialRosenbrockCorrected
        } else {
            Method::ExponentialRosenbrock
        };
        Simulator::new(ckt).transient(method, options, probes)
    }

    fn run_implicit(
        ckt: &Circuit,
        scheme: ImplicitScheme,
        options: &TransientOptions,
        probes: &[&str],
    ) -> SimResult<TransientResult> {
        let method = match scheme {
            ImplicitScheme::BackwardEuler => Method::BackwardEuler,
            ImplicitScheme::Trapezoidal => Method::Trapezoidal,
        };
        Simulator::new(ckt).transient(method, options, probes)
    }

    fn rc_ramp_circuit(r: f64, c: f64, v: f64, ramp: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source("V1", vin, gnd, Waveform::Pwl(vec![(0.0, 0.0), (ramp, v)]))
            .unwrap();
        ckt.add_resistor("R1", vin, out, r).unwrap();
        ckt.add_capacitor("C1", out, gnd, c).unwrap();
        ckt
    }

    #[test]
    fn er_matches_rc_analytic_solution_with_large_steps() {
        // ER is exact for linear circuits with piecewise-linear inputs (up to
        // Krylov tolerance), even with steps far beyond the circuit's time
        // constant.
        let (r, c, v) = (1e3, 1e-12, 1.0);
        let tau = r * c;
        let ramp = tau / 100.0;
        let ckt = rc_ramp_circuit(r, c, v, ramp);
        let options = TransientOptions {
            t_stop: 5.0 * tau,
            h_init: tau / 2.0,
            h_max: tau,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        let result = run_er(&ckt, false, &options, &["out"]).unwrap();
        let p = result.probe_index("out").unwrap();
        // Compare at the accepted time points themselves (interpolating
        // between the deliberately huge steps would only measure the
        // interpolation error, not the integrator's).
        let mut checked = 0usize;
        for (t_i, got) in result.waveform(p) {
            if t_i <= ramp {
                continue;
            }
            let expected = v * (1.0 - (-(t_i - ramp) / tau).exp());
            assert!(
                (got - expected).abs() < 5e-3,
                "t = {t_i:.2e}: got {got}, expected {expected}"
            );
            checked += 1;
        }
        assert!(
            checked >= 3,
            "expected several accepted points past the ramp"
        );
        // Far fewer steps than an implicit method would need for this accuracy.
        assert!(result.stats.accepted_steps < 50);
        // Exactly one LU per accepted step plus the DC solve.
        assert!(
            result.stats.lu_factorizations
                <= result.stats.accepted_steps + result.stats.newton_iterations + 1
        );
    }

    #[test]
    fn er_reuses_one_symbolic_analysis_for_the_whole_run() {
        // Linear circuit: the conductance pattern never changes, so the DC
        // solve performs the single symbolic analysis and every transient
        // step refactorizes numerically.
        let (r, c, v) = (1e3, 1e-12, 1.0);
        let tau = r * c;
        let ckt = rc_ramp_circuit(r, c, v, tau / 100.0);
        let options = TransientOptions {
            t_stop: 5.0 * tau,
            h_init: tau / 2.0,
            h_max: tau,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        let result = run_er(&ckt, false, &options, &["out"]).unwrap();
        let s = &result.stats;
        assert_eq!(s.symbolic_analyses, 1, "{s:?}");
        assert_eq!(s.lu_refactorizations, s.lu_factorizations - 1);
        assert!(s.lu_refactorizations >= s.accepted_steps);
        // The Krylov workspace reaches steady state: far fewer fresh
        // allocations than subspace builds.
        assert!(
            s.krylov_workspace_allocations < (s.peak_krylov_dimension + 3) * 2 + s.krylov_subspaces,
            "{s:?}"
        );
    }

    #[test]
    fn er_and_benr_agree_on_inverter_chain() {
        let spec = generators::InverterChainSpec {
            stages: 3,
            ..generators::InverterChainSpec::default()
        };
        let ckt = generators::inverter_chain(&spec).unwrap();
        let options = TransientOptions {
            t_stop: 3e-10,
            h_init: 1e-12,
            h_max: 5e-12,
            error_budget: 5e-3,
            ..TransientOptions::default()
        };
        let er = run_er(&ckt, false, &options, &["s3"]).unwrap();
        let benr = run_implicit(&ckt, ImplicitScheme::BackwardEuler, &options, &["s3"]).unwrap();
        let p = 0;
        let err = er.max_error_vs(&benr, p);
        assert!(err < 0.1, "ER and BENR should agree on s3, max diff {err}");
        // ER performs no Newton iterations during the transient (only the DC
        // solve contributes).
        assert!(er.stats.avg_krylov_dimension() > 0.0);
    }

    #[test]
    fn er_c_is_at_least_as_accurate_as_er() {
        let spec = generators::InverterChainSpec {
            stages: 2,
            ..generators::InverterChainSpec::default()
        };
        let ckt = generators::inverter_chain(&spec).unwrap();
        // Reference: BENR with very small fixed steps.
        let fine = TransientOptions {
            t_stop: 2e-10,
            h_init: 5e-14,
            h_max: 5e-14,
            error_budget: 1.0,
            ..TransientOptions::default()
        };
        let reference = run_implicit(&ckt, ImplicitScheme::BackwardEuler, &fine, &["s2"]).unwrap();
        let coarse = TransientOptions {
            t_stop: 2e-10,
            h_init: 2e-12,
            h_max: 4e-12,
            error_budget: 1e-2,
            ..TransientOptions::default()
        };
        let er = run_er(&ckt, false, &coarse, &["s2"]).unwrap();
        let erc = run_er(&ckt, true, &coarse, &["s2"]).unwrap();
        let er_err = er.rms_error_vs(&reference, 0);
        let erc_err = erc.rms_error_vs(&reference, 0);
        // The correction must not make things worse by more than a hair, and
        // both must be reasonably accurate.
        assert!(er_err < 0.05, "er rms error {er_err}");
        assert!(
            erc_err < er_err * 1.5 + 1e-4,
            "erc {erc_err} vs er {er_err}"
        );
    }

    #[test]
    fn er_handles_singular_capacitance_without_regularization() {
        // Nodes with no capacitance at all make C singular; the standard
        // matrix-exponential approach would need a regularization pass.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let mid = ckt.node("mid");
        let out = ckt.node("out");
        let gnd = ckt.node("0");
        ckt.add_voltage_source(
            "V1",
            a,
            gnd,
            Waveform::single_pulse(0.0, 1.0, 1e-11, 1e-12, 1e-12, 1e-9),
        )
        .unwrap();
        ckt.add_resistor("R1", a, mid, 1e3).unwrap();
        // "mid" is a purely resistive node: no capacitor attached.
        ckt.add_resistor("R2", mid, out, 1e3).unwrap();
        ckt.add_capacitor("C1", out, gnd, 1e-13).unwrap();
        let options = TransientOptions {
            t_stop: 1e-9,
            h_init: 1e-12,
            h_max: 2e-11,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        let result = run_er(&ckt, false, &options, &["mid", "out"]).unwrap();
        assert!(result.final_state.iter().all(|v| v.is_finite()));
        // Final value approaches the resistive divider limit 0.5 as the cap charges.
        let p_out = result.probe_index("out").unwrap();
        let v_end = result.sample_at(p_out, 1e-9);
        assert!(v_end > 0.8, "out should charge towards 1.0, got {v_end}");
    }

    #[test]
    fn step_size_underflow_is_reported() {
        let options = TransientOptions {
            t_stop: 1e-9,
            h_init: 1e-12,
            h_min: 1e-12,
            // Impossible error budget forces endless rejections.
            error_budget: 1e-30,
            ..TransientOptions::default()
        };
        // A nonlinear circuit with an impossible budget must fail cleanly.
        let spec = generators::InverterChainSpec {
            stages: 1,
            ..generators::InverterChainSpec::default()
        };
        let inv = generators::inverter_chain(&spec).unwrap();
        let err = run_er(&inv, false, &options, &[]).unwrap_err();
        assert!(matches!(err, SimError::StepSizeUnderflow { .. }));
    }

    #[test]
    fn deprecated_wrapper_still_runs() {
        let ckt = rc_ramp_circuit(1e3, 1e-12, 1.0, 1e-14);
        let options = TransientOptions {
            t_stop: 2e-9,
            h_init: 1e-12,
            h_max: 1e-10,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        #[allow(deprecated)]
        let wrapped = run_exponential_rosenbrock(&ckt, false, &options, &["out"]).unwrap();
        let session = run_er(&ckt, false, &options, &["out"]).unwrap();
        assert_eq!(wrapped.times, session.times);
        assert_eq!(wrapped.samples, session.samples);
        assert_eq!(wrapped.final_state, session.final_state);
    }
}
