//! Deck analysis-card → solver-options mapping.
//!
//! The single source of truth for how a parsed SPICE deck's `.tran` cards
//! and `.options reltol` become [`TransientOptions`]. Every deck driver —
//! `exi-cli run`/`sweep` and the `exi-serve` daemon — goes through these two
//! functions, which is what makes a waveform obtained through any of them
//! bit-identical to the others (and to the generator-built sessions the
//! round-trip tests compare against).

use exi_netlist::{Analysis, Deck};

use crate::options::TransientOptions;

/// Maps a `.tran <step> <stop> [hmax]` card to [`TransientOptions`]: `step`
/// becomes the initial step, `stop` the interval end, and `hmax` (when
/// given) overrides the default `stop / 10` step ceiling. All other knobs
/// keep their defaults — the deck-vs-generator bit-identity tests rely on
/// this mapping being the single source of truth.
pub fn tran_options(step: f64, stop: f64, h_max: Option<f64>) -> TransientOptions {
    let mut options = TransientOptions::new(stop, step);
    if let Some(h) = h_max {
        options.h_max = h;
    }
    options
}

/// The [`TransientOptions`] a deck's analysis card runs with: the
/// [`tran_options`] card mapping plus the deck's `.options reltol` as the
/// error budget. `None` for non-transient cards.
pub fn analysis_options(deck: &Deck, analysis: &Analysis) -> Option<TransientOptions> {
    match analysis {
        Analysis::Tran { step, stop, h_max } => {
            let mut options = tran_options(*step, *stop, *h_max);
            if let Some(reltol) = deck.reltol {
                options.error_budget = reltol;
            }
            Some(options)
        }
        Analysis::OperatingPoint => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exi_netlist::parse_deck;

    #[test]
    fn tran_options_mapping_matches_the_session_constructor() {
        let plain = tran_options(1e-12, 5e-10, None);
        assert_eq!(plain, TransientOptions::new(5e-10, 1e-12));
        let capped = tran_options(1e-12, 5e-10, Some(2e-11));
        assert_eq!(capped.h_max, 2e-11);
        assert_eq!(
            TransientOptions {
                h_max: 2e-11,
                ..TransientOptions::new(5e-10, 1e-12)
            },
            capped
        );
    }

    #[test]
    fn reltol_card_becomes_the_error_budget() {
        let deck = parse_deck(
            "V1 a 0 DC 1\n\
             R1 a b 1k\n\
             C1 b 0 1f\n\
             .options reltol=1e-4\n\
             .tran 1p 500p\n",
        )
        .unwrap();
        let options = analysis_options(&deck, &deck.analyses[0]).unwrap();
        assert_eq!(options.error_budget, 1e-4);
        assert_eq!(options.h_init, 1e-12);
        assert_eq!(options.t_stop, 5e-10);
    }

    #[test]
    fn op_cards_map_to_no_transient_options() {
        let deck = parse_deck(
            "V1 a 0 DC 1\n\
             R1 a 0 1k\n\
             .op\n",
        )
        .unwrap();
        assert_eq!(analysis_options(&deck, &deck.analyses[0]), None);
    }
}
