//! Fig. 1 reproduction: nonzero structure of the post-layout matrices and of
//! their LU factors.
//!
//! The paper visualizes, for the FreeCPU post-extraction netlist, how much
//! denser the capacitance matrix `C` and the backward-Euler matrix `C/h + G`
//! are than the conductance matrix `G`, and how the LU factors amplify the
//! difference. This binary prints the same quantities (nnz instead of spy
//! plots) for the synthetic post-layout structure.
//!
//! Usage: `cargo run --release -p exi-bench --bin fig1 [scale]`

use exi_bench::{fig1_circuit, TextTable};
use exi_sparse::{factor_fill, CsrMatrix, OrderingMethod};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let circuit = fig1_circuit(scale).expect("fig1 circuit generation");
    let n = circuit.num_unknowns();
    let x = vec![0.0; n];
    let eval = circuit
        .compile_plan()
        .and_then(|plan| plan.evaluate(&x))
        .expect("circuit evaluation");
    let h = 1e-12;
    let benr_matrix =
        CsrMatrix::linear_combination(1.0 / h, &eval.c, 1.0, &eval.g).expect("C/h + G assembly");

    println!("Fig. 1 reproduction: matrix and LU-factor fill of a post-layout structure");
    println!(
        "circuit: {} unknowns, {} devices\n",
        n,
        circuit.num_devices()
    );

    let mut table = TextTable::new(vec!["matrix", "nnz", "nnz(L)", "nnz(U)", "fill vs G"]);
    let g_fill = factor_fill(&eval.g, OrderingMethod::Rcm).expect("LU of G");
    let mut report = |label: &str, m: &CsrMatrix| match factor_fill(m, OrderingMethod::Rcm) {
        Ok((l, u)) => {
            let rel = (l + u) as f64 / (g_fill.0 + g_fill.1) as f64;
            table.add_row(vec![
                label.to_string(),
                m.nnz().to_string(),
                l.to_string(),
                u.to_string(),
                format!("{rel:.2}x"),
            ]);
        }
        Err(e) => {
            table.add_row(vec![
                label.to_string(),
                m.nnz().to_string(),
                "-".to_string(),
                "-".to_string(),
                format!("({e})"),
            ]);
        }
    };
    report("C (capacitance)", &eval.c);
    report("G (conductance)", &eval.g);
    report("C/h + G (BENR)", &benr_matrix);
    print!("{table}");
    println!();
    println!("Paper's qualitative claim to check: nnz(C) and nnz(LU(C/h+G)) are much larger than");
    println!("nnz(G) and nnz(LU(G)); only the latter is factorized by the ER/ER-C framework.");
}
