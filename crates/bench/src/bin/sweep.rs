//! Batch-sweep throughput harness: a Monte-Carlo corner sweep of one
//! power-grid topology through the [`exi_sim::BatchRunner`], at one worker
//! thread and at full parallelism.
//!
//! Reports the fleet-level amortization (one symbolic analysis for the whole
//! sweep, `shared_symbolic_hits` for everything else) and the parallel
//! speedup, and writes the machine-readable **`BENCH_sweep.json`** so
//! successive revisions have a sweep-throughput trajectory to regress
//! against (the batch analogue of `BENCH_table1.json`).
//!
//! Usage: `cargo run --release -p exi-bench --bin sweep [jobs] [threads]`
//! (`jobs` defaults to 12, `threads` to the hardware parallelism)

use exi_netlist::generators::{power_grid, PowerGridSpec};
use exi_sim::{BatchPlan, BatchResult, BatchRunner, Method, TransientOptions};

/// File the machine-readable results are written to (working directory).
const JSON_OUTPUT: &str = "BENCH_sweep.json";

fn sweep_plan(jobs: usize) -> BatchPlan {
    let mut plan = BatchPlan::new();
    for k in 0..jobs {
        // Monte-Carlo corners: same 24x24 grid topology, varied sink load
        // and placement — the regime where the shared symbolic cache turns N
        // analyses into one.
        let spec = PowerGridSpec {
            rows: 24,
            cols: 24,
            num_sinks: 48,
            sink_current: 4e-3 + 0.5e-3 * (k % 4) as f64,
            seed: 100 + k as u64,
            ..PowerGridSpec::default()
        };
        let circuit = power_grid(&spec).expect("power grid builds");
        let options = TransientOptions {
            t_stop: 4e-9,
            h_init: 1e-12,
            h_max: 2e-11,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        plan.push(
            exi_sim::BatchJob::new(
                format!(
                    "mc{k} isink={:.1}mA seed={}",
                    spec.sink_current * 1e3,
                    spec.seed
                ),
                circuit,
                Method::ExponentialRosenbrock,
                options,
            )
            .probe("g_5_5"),
        );
    }
    plan
}

fn jobs_json(result: &BatchResult) -> String {
    let rows: Vec<String> = result
        .jobs
        .iter()
        .map(|j| match &j.result {
            Ok(_) => format!(
                concat!(
                    "    {{\"label\":\"{}\",\"status\":\"ok\",\"steps\":{},",
                    "\"lu_factorizations\":{},\"shared_symbolic_hits\":{},\"runtime_s\":{:.6}}}"
                ),
                j.label,
                j.stats.accepted_steps,
                j.stats.lu_factorizations,
                j.stats.shared_symbolic_hits,
                j.stats.runtime_seconds()
            ),
            Err(e) => format!(
                "    {{\"label\":\"{}\",\"status\":\"failed\",\"error\":\"{}\"}}",
                j.label,
                e.to_string().replace('"', "'")
            ),
        })
        .collect();
    rows.join(",\n")
}

fn merged_json(result: &BatchResult) -> String {
    let s = &result.stats;
    // Per-worker attribution of the active solver time: an uneven schedule
    // (the 0.97x scaling regression, ROADMAP item 1) shows up here as one
    // worker's entry dwarfing the rest.
    let per_worker: Vec<String> = result
        .worker_active()
        .iter()
        .map(|t| format!("{t:.6}"))
        .collect();
    format!(
        concat!(
            "{{\"batch_jobs\":{},\"worker_threads\":{},\"accepted_steps\":{},",
            "\"lu_factorizations\":{},\"symbolic_analyses\":{},\"lu_refactorizations\":{},",
            "\"shared_symbolic_hits\":{},\"active_solver_s\":{:.6},",
            "\"active_solver_s_per_worker\":[{}],\"wall_s\":{:.6}}}"
        ),
        s.batch_jobs,
        s.worker_threads,
        s.accepted_steps,
        s.lu_factorizations,
        s.symbolic_analyses,
        s.lu_refactorizations,
        s.shared_symbolic_hits,
        s.runtime_seconds(),
        per_worker.join(","),
        result.wall_time.as_secs_f64(),
    )
}

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let runner = BatchRunner::new().worker_threads(threads);
    let threads = runner.effective_worker_threads();
    println!("batch sweep: {jobs} Monte-Carlo corners, 24x24 power grid, ER\n");

    // Baseline: the identical plan at one worker.
    let baseline = BatchRunner::new().worker_threads(1).run(&sweep_plan(jobs));
    let parallel = runner.run(&sweep_plan(jobs));
    for (tag, result) in [("1 thread", &baseline), ("parallel", &parallel)] {
        let s = &result.stats;
        println!(
            "{tag:>9} ({} workers): wall {:.3} s | {} steps | {} LU ({} symbolic, {} shared hits) | {} failed",
            s.worker_threads,
            result.wall_time.as_secs_f64(),
            s.accepted_steps,
            s.lu_factorizations,
            s.symbolic_analyses,
            s.shared_symbolic_hits,
            result.failed(),
        );
    }
    let speedup = baseline.wall_time.as_secs_f64() / parallel.wall_time.as_secs_f64().max(1e-9);
    let throughput = jobs as f64 / parallel.wall_time.as_secs_f64().max(1e-9);
    println!("\nspeedup: {speedup:.2}x | throughput: {throughput:.1} jobs/s");
    println!(
        "fleet amortization: {} symbolic analyses for {} jobs ({} shared hits)",
        parallel.stats.symbolic_analyses, jobs, parallel.stats.shared_symbolic_hits
    );

    let json = format!(
        concat!(
            "{{\n  \"jobs\": {},\n  \"worker_threads\": {},\n",
            "  \"wall_s\": {:.6},\n  \"baseline_wall_s\": {:.6},\n",
            "  \"speedup\": {:.3},\n  \"throughput_jobs_per_s\": {:.3},\n",
            "  \"merged\": {},\n  \"baseline_merged\": {},\n",
            "  \"jobs_detail\": [\n{}\n  ]\n}}\n"
        ),
        jobs,
        threads,
        parallel.wall_time.as_secs_f64(),
        baseline.wall_time.as_secs_f64(),
        speedup,
        throughput,
        merged_json(&parallel),
        merged_json(&baseline),
        jobs_json(&parallel),
    );
    match std::fs::write(JSON_OUTPUT, &json) {
        Ok(()) => println!("\nmachine-readable results written to {JSON_OUTPUT}"),
        Err(e) => eprintln!("could not write {JSON_OUTPUT}: {e}"),
    }
}
