//! Batch-sweep throughput harness: a Monte-Carlo corner sweep of one
//! power-grid topology through the [`exi_sim::BatchRunner`], at one worker
//! thread and at full parallelism.
//!
//! Reports the fleet-level amortization (one symbolic analysis for the whole
//! sweep, `shared_symbolic_hits` for everything else) and the parallel
//! speedup, and writes the machine-readable **`BENCH_sweep.json`** so
//! successive revisions have a sweep-throughput trajectory to regress
//! against (the batch analogue of `BENCH_table1.json`).
//!
//! Besides the Monte-Carlo corner sweep, the harness runs a **batch-scaling
//! curve**: fleets of same-pattern RC-mesh jobs from ~1.6·10³ up to 10⁴
//! unknowns, each at 1 and 2 worker threads (plus full hardware parallelism
//! when the host offers more). The curve lands in the JSON as `scaling`, and
//! `scaling_gate` distills the one number CI regresses on — the 2-worker
//! speedup at the largest grid, alongside the host parallelism so
//! single-core runners can be recognised and skipped.
//!
//! Usage: `cargo run --release -p exi-bench --bin sweep [jobs] [threads]`
//! (`jobs` defaults to 12, `threads` to the hardware parallelism)

use exi_netlist::generators::{power_grid, rc_mesh, PowerGridSpec, RcMeshSpec};
use exi_sim::{BatchPlan, BatchResult, BatchRunner, LanePolicy, Method, TransientOptions};

/// File the machine-readable results are written to (working directory).
const JSON_OUTPUT: &str = "BENCH_sweep.json";

fn sweep_plan(jobs: usize) -> BatchPlan {
    let mut plan = BatchPlan::new();
    for k in 0..jobs {
        // Monte-Carlo corners: same 24x24 grid topology, varied sink load
        // and placement — the regime where the shared symbolic cache turns N
        // analyses into one.
        let spec = PowerGridSpec {
            rows: 24,
            cols: 24,
            num_sinks: 48,
            sink_current: 4e-3 + 0.5e-3 * (k % 4) as f64,
            seed: 100 + k as u64,
            ..PowerGridSpec::default()
        };
        let circuit = power_grid(&spec).expect("power grid builds");
        let options = TransientOptions {
            t_stop: 4e-9,
            h_init: 1e-12,
            h_max: 2e-11,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        plan.push(
            exi_sim::BatchJob::new(
                format!(
                    "mc{k} isink={:.1}mA seed={}",
                    spec.sink_current * 1e3,
                    spec.seed
                ),
                circuit,
                Method::ExponentialRosenbrock,
                options,
            )
            .probe("g_5_5"),
        );
    }
    plan
}

fn jobs_json(result: &BatchResult) -> String {
    let rows: Vec<String> = result
        .jobs
        .iter()
        .map(|j| match &j.result {
            Ok(_) => format!(
                concat!(
                    "    {{\"label\":\"{}\",\"status\":\"ok\",\"steps\":{},",
                    "\"lu_factorizations\":{},\"shared_symbolic_hits\":{},\"runtime_s\":{:.6},",
                    "\"active_solver_s\":{:.6},\"cache_wait_s\":{:.6}}}"
                ),
                j.label,
                j.stats.accepted_steps,
                j.stats.lu_factorizations,
                j.stats.shared_symbolic_hits,
                j.stats.runtime_seconds(),
                j.stats.active_solver_seconds(),
                j.stats.cache_wait_seconds()
            ),
            Err(e) => format!(
                "    {{\"label\":\"{}\",\"status\":\"failed\",\"error\":\"{}\"}}",
                j.label,
                e.to_string().replace('"', "'")
            ),
        })
        .collect();
    rows.join(",\n")
}

fn merged_json(result: &BatchResult) -> String {
    let s = &result.stats;
    // Per-worker attribution of the active solver time: an uneven schedule
    // (the 0.97x scaling regression, ROADMAP item 1) shows up here as one
    // worker's entry dwarfing the rest. Cache-wait time is reported
    // separately so lock contention can never masquerade as solver work.
    let per_worker: Vec<String> = result
        .worker_active()
        .iter()
        .map(|t| format!("{t:.6}"))
        .collect();
    let per_worker_wait: Vec<String> = result
        .worker_cache_wait()
        .iter()
        .map(|t| format!("{t:.6}"))
        .collect();
    format!(
        concat!(
            "{{\"batch_jobs\":{},\"worker_threads\":{},\"accepted_steps\":{},",
            "\"lu_factorizations\":{},\"symbolic_analyses\":{},\"lu_refactorizations\":{},",
            "\"shared_symbolic_hits\":{},\"shared_symbolic_wait_events\":{},",
            "\"active_solver_s\":{:.6},\"cache_wait_s\":{:.6},",
            "\"active_solver_s_per_worker\":[{}],\"cache_wait_s_per_worker\":[{}],",
            "\"wall_s\":{:.6}}}"
        ),
        s.batch_jobs,
        s.worker_threads,
        s.accepted_steps,
        s.lu_factorizations,
        s.symbolic_analyses,
        s.lu_refactorizations,
        s.shared_symbolic_hits,
        s.shared_symbolic_wait_events,
        s.active_solver_seconds(),
        s.cache_wait_seconds(),
        per_worker.join(","),
        per_worker_wait.join(","),
        result.wall_time.as_secs_f64(),
    )
}

/// Same-pattern RC-mesh fleet for the scaling curve: one topology, distinct
/// step-control corners, so the whole fleet rides a single pre-published
/// symbolic analysis — the regime the ISSUE's 2-worker gate is defined over.
/// Mirrors the `integration_scaling` regression test.
fn scaling_plan(rows: usize, cols: usize, jobs: usize) -> BatchPlan {
    let mut plan = BatchPlan::new();
    for k in 0..jobs {
        let circuit = rc_mesh(&RcMeshSpec {
            rows,
            cols,
            ..RcMeshSpec::default()
        })
        .expect("mesh builds");
        let options = TransientOptions {
            t_stop: 3e-10 + k as f64 * 2e-11,
            h_init: 1e-12,
            h_max: 2e-11,
            error_budget: 1e-3 / (1.0 + k as f64 * 0.2),
            ..TransientOptions::default()
        };
        plan.push(
            exi_sim::BatchJob::new(
                format!("mesh{rows}x{cols} corner{k}"),
                circuit,
                Method::ExponentialRosenbrock,
                options,
            )
            .probe(format!("m_{}_{}", rows - 1, cols - 1)),
        );
    }
    plan
}

/// One grid size of the scaling curve: the fleet at each worker count, with
/// the 1-worker wall time as the speedup denominator. Returns the JSON
/// object for this grid and the measured 2-worker speedup.
fn scaling_grid(rows: usize, cols: usize, jobs: usize, worker_counts: &[usize]) -> (String, f64) {
    let unknowns = scaling_plan(rows, cols, 1).jobs()[0].circuit.num_unknowns();
    // Warm-up run: absorb one-time costs (allocator growth, page faults) so
    // the timed points compare schedules, not process start-up.
    let warmup = BatchRunner::new()
        .worker_threads(1)
        .run(&scaling_plan(rows, cols, 1));
    assert!(warmup.all_ok(), "scaling warm-up failed on {rows}x{cols}");

    let mut wall_1 = f64::NAN;
    let mut speedup_2 = f64::NAN;
    let mut points = Vec::new();
    for &workers in worker_counts {
        let result = BatchRunner::new()
            .worker_threads(workers)
            .run(&scaling_plan(rows, cols, jobs));
        assert!(result.all_ok(), "scaling run failed on {rows}x{cols}");
        let wall = result.wall_time.as_secs_f64();
        if workers == 1 {
            wall_1 = wall;
        }
        let speedup = wall_1 / wall.max(1e-9);
        if workers == 2 {
            speedup_2 = speedup;
        }
        println!(
            "  {rows}x{cols} ({unknowns} unknowns), {workers} worker(s): wall {wall:.3} s | \
             speedup {speedup:.2}x | {} wait events",
            result.stats.shared_symbolic_wait_events,
        );
        points.push(format!(
            concat!(
                "      {{\"worker_threads\":{},\"wall_s\":{:.6},\"speedup\":{:.3},",
                "\"throughput_jobs_per_s\":{:.3},\"active_solver_s\":{:.6},",
                "\"cache_wait_s\":{:.6},\"shared_symbolic_wait_events\":{}}}"
            ),
            workers,
            wall,
            speedup,
            jobs as f64 / wall.max(1e-9),
            result.stats.active_solver_seconds(),
            result.stats.cache_wait_seconds(),
            result.stats.shared_symbolic_wait_events,
        ));
    }
    let json = format!(
        concat!("    {{\"grid\":\"{}x{}\",\"unknowns\":{},\"jobs\":{},\"points\":[\n{}\n    ]}}"),
        rows,
        cols,
        unknowns,
        jobs,
        points.join(",\n"),
    );
    (json, speedup_2)
}

/// Same-fingerprint corner fleet for the value-lane curve: one 40x40 mesh
/// topology (1602 unknowns), tiny drive-amplitude perturbations so every
/// lane is bitwise distinct yet stays in lockstep, Backward Euler so the
/// fleet rides `refactorize_lanes` (ER lanes intentionally run scalar).
fn lanes_plan(side: usize, jobs: usize) -> BatchPlan {
    let mut plan = BatchPlan::new();
    for k in 0..jobs {
        let circuit = rc_mesh(&RcMeshSpec {
            rows: side,
            cols: side,
            amplitude: 1.0 + 1e-4 * k as f64,
            ..RcMeshSpec::default()
        })
        .expect("mesh builds");
        let options = TransientOptions {
            t_stop: 3e-10,
            h_init: 1e-12,
            h_max: 2e-11,
            error_budget: 1e-3,
            ..TransientOptions::default()
        };
        plan.push(
            exi_sim::BatchJob::new(
                format!("lane-corner{k}"),
                circuit,
                Method::BackwardEuler,
                options,
            )
            .probe(format!("m_{}_{}", side - 1, side - 1)),
        );
    }
    plan
}

/// The lanes-vs-scalar throughput curve at one worker: the identical
/// same-fingerprint fleet with lane coalescing off and at widths 2/4/8.
/// Returns the JSON object and the K=8 throughput ratio (the gate number).
fn lanes_curve(side: usize, jobs: usize) -> (String, f64) {
    let plan = lanes_plan(side, jobs);
    let unknowns = plan.jobs()[0].circuit.num_unknowns();
    // Warm-up, then the scalar baseline every ratio is measured against.
    let warmup = BatchRunner::new()
        .worker_threads(1)
        .run(&lanes_plan(side, 1));
    assert!(warmup.all_ok(), "lane warm-up failed");
    let scalar = BatchRunner::new().worker_threads(1).run(&plan);
    assert!(scalar.all_ok(), "scalar lane baseline failed");
    let scalar_wall = scalar.wall_time.as_secs_f64();
    println!("\nvalue lanes: {jobs} same-fingerprint corners, {side}x{side} mesh ({unknowns} unknowns), BENR");
    println!("  lanes off: wall {scalar_wall:.3} s");

    let mut points = Vec::new();
    let mut ratio_8 = f64::NAN;
    for width in [2usize, 4, 8] {
        let result = BatchRunner::new()
            .worker_threads(1)
            .lane_policy(LanePolicy::Fixed(width))
            .run(&plan);
        assert!(result.all_ok(), "lane run failed at width {width}");
        let wall = result.wall_time.as_secs_f64();
        let ratio = scalar_wall / wall.max(1e-9);
        if width == 8 {
            ratio_8 = ratio;
        }
        let s = &result.stats;
        println!(
            "  lanes {width}: wall {wall:.3} s | {ratio:.2}x vs scalar | {} lane batches | \
             {:.1} lanes/refactorization | {} detaches",
            s.lane_batches,
            s.lanes_per_refactorization(),
            s.lane_detaches,
        );
        points.push(format!(
            concat!(
                "      {{\"width\":{},\"wall_s\":{:.6},\"throughput_ratio\":{:.3},",
                "\"lane_batches\":{},\"lane_refactorization_passes\":{},",
                "\"lanes_per_refactorization\":{:.2},\"lane_detaches\":{},",
                "\"symbolic_analyses\":{}}}"
            ),
            width,
            wall,
            ratio,
            s.lane_batches,
            s.lane_refactorization_passes,
            s.lanes_per_refactorization(),
            s.lane_detaches,
            s.symbolic_analyses,
        ));
    }
    let json = format!(
        concat!(
            "{{\"grid\":\"{}x{}\",\"unknowns\":{},\"jobs\":{},\"method\":\"benr\",",
            "\"worker_threads\":1,\"scalar_wall_s\":{:.6},\"points\":[\n{}\n    ]}}"
        ),
        side,
        side,
        unknowns,
        jobs,
        scalar_wall,
        points.join(",\n"),
    );
    (json, ratio_8)
}

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let runner = BatchRunner::new().worker_threads(threads);
    let threads = runner.effective_worker_threads();
    println!("batch sweep: {jobs} Monte-Carlo corners, 24x24 power grid, ER\n");

    // Baseline: the identical plan at one worker.
    let baseline = BatchRunner::new().worker_threads(1).run(&sweep_plan(jobs));
    let parallel = runner.run(&sweep_plan(jobs));
    for (tag, result) in [("1 thread", &baseline), ("parallel", &parallel)] {
        let s = &result.stats;
        println!(
            "{tag:>9} ({} workers): wall {:.3} s | {} steps | {} LU ({} symbolic, {} shared hits) | {} failed",
            s.worker_threads,
            result.wall_time.as_secs_f64(),
            s.accepted_steps,
            s.lu_factorizations,
            s.symbolic_analyses,
            s.shared_symbolic_hits,
            result.failed(),
        );
    }
    let speedup = baseline.wall_time.as_secs_f64() / parallel.wall_time.as_secs_f64().max(1e-9);
    let throughput = jobs as f64 / parallel.wall_time.as_secs_f64().max(1e-9);
    println!("\nspeedup: {speedup:.2}x | throughput: {throughput:.1} jobs/s");
    println!(
        "fleet amortization: {} symbolic analyses for {} jobs ({} shared hits)",
        parallel.stats.symbolic_analyses, jobs, parallel.stats.shared_symbolic_hits
    );

    // Batch-scaling curve: same-pattern RC-mesh fleets at increasing size,
    // each at 1 and 2 workers (plus full hardware parallelism when the host
    // has more). The largest grid clears the ISSUE's 10^4-unknown floor and
    // its 2-worker speedup becomes the `scaling_gate` number CI regresses on.
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut worker_counts = vec![1usize, 2];
    if host_parallelism > 2 {
        worker_counts.push(host_parallelism);
    }
    const SCALING_JOBS: usize = 8;
    println!("\nbatch scaling: {SCALING_JOBS} same-pattern RC-mesh corners per point");
    let mut scaling_rows = Vec::new();
    let mut gate_speedup = f64::NAN;
    let mut gate_unknowns = 0usize;
    for (rows, cols) in [(40usize, 40usize), (100, 100)] {
        let (json, speedup_2) = scaling_grid(rows, cols, SCALING_JOBS, &worker_counts);
        scaling_rows.push(json);
        gate_speedup = speedup_2;
        gate_unknowns = rows * cols + 2;
    }
    println!(
        "scaling gate: {gate_speedup:.2}x at {gate_unknowns} unknowns \
         (host parallelism {host_parallelism})"
    );

    // Value-lane curve: the same-fingerprint fleet with lane coalescing off
    // and at widths 2/4/8, single worker — lane wins are per-worker, so this
    // number is honest on host_parallelism < 2 runners too.
    const LANE_JOBS: usize = 8;
    let (lanes_json, lanes_ratio_8) = lanes_curve(40, LANE_JOBS);
    println!("lanes gate: {lanes_ratio_8:.2}x at K=8 vs scalar batch (1 worker)");

    let json = format!(
        concat!(
            "{{\n  \"jobs\": {},\n  \"worker_threads\": {},\n",
            "  \"wall_s\": {:.6},\n  \"baseline_wall_s\": {:.6},\n",
            "  \"speedup\": {:.3},\n  \"throughput_jobs_per_s\": {:.3},\n",
            "  \"merged\": {},\n  \"baseline_merged\": {},\n",
            "  \"jobs_detail\": [\n{}\n  ],\n",
            "  \"scaling\": [\n{}\n  ],\n",
            "  \"scaling_gate\": {{\"unknowns\": {}, \"speedup_2_workers\": {:.3}, ",
            "\"host_parallelism\": {}}},\n",
            "  \"lanes\": [\n    {}\n  ],\n",
            "  \"lanes_gate\": {{\"width\": 8, \"throughput_ratio_vs_scalar\": {:.3}, ",
            "\"worker_threads\": 1, \"host_parallelism\": {}}}\n}}\n"
        ),
        jobs,
        threads,
        parallel.wall_time.as_secs_f64(),
        baseline.wall_time.as_secs_f64(),
        speedup,
        throughput,
        merged_json(&parallel),
        merged_json(&baseline),
        jobs_json(&parallel),
        scaling_rows.join(",\n"),
        gate_unknowns,
        gate_speedup,
        host_parallelism,
        lanes_json,
        lanes_ratio_8,
        host_parallelism,
    );
    match std::fs::write(JSON_OUTPUT, &json) {
        Ok(()) => println!("\nmachine-readable results written to {JSON_OUTPUT}"),
        Err(e) => eprintln!("could not write {JSON_OUTPUT}: {e}"),
    }
}
