//! Ablation A: convergence of the invert, standard and rational Krylov
//! subspaces for the MEVP on a stiff post-layout-style circuit (DESIGN.md
//! ablation A; motivates Sec. IV of the paper).
//!
//! For a sweep of step sizes `h` the table reports the subspace dimension
//! each method needs to reach the same tolerance, and the resulting error
//! against a reference computed with a much tighter tolerance.
//!
//! Usage: `cargo run --release -p exi-bench --bin krylov_ablation [scale]`

use exi_bench::TextTable;
use exi_krylov::{mevp_invert_krylov, mevp_rational_krylov, mevp_standard_krylov, MevpOptions};
use exi_sparse::{vector, SparseLu};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let circuit = exi_bench::fig1_circuit(scale.min(0.6)).expect("ablation circuit");
    let n = circuit.num_unknowns();
    let x = vec![0.0; n];
    let eval = circuit
        .compile_plan()
        .and_then(|plan| plan.evaluate(&x))
        .expect("evaluation");
    // Make C non-singular for the *standard* Krylov baseline by keeping only
    // rows that already have capacitance; the invert method does not need this.
    let g_lu = SparseLu::factorize(&eval.g).expect("LU of G");
    let c_lu = SparseLu::factorize(&eval.c);

    let v: Vec<f64> = (0..n).map(|i| ((i % 7) as f64 - 3.0) / 3.0).collect();
    let options = MevpOptions {
        tolerance: 1e-7,
        max_dimension: 200,
        ..MevpOptions::default()
    };
    let tight = MevpOptions {
        tolerance: 1e-11,
        max_dimension: 400,
        ..MevpOptions::default()
    };

    println!("Ablation A: Krylov subspace flavours for the MEVP ({n} unknowns)");
    println!("tolerance = {:.0e}\n", options.tolerance);
    let mut table = TextTable::new(vec![
        "h (s)",
        "invert m",
        "invert err",
        "rational m",
        "rational err",
        "standard m",
        "standard err",
    ]);

    for h in [1e-12, 5e-12, 2e-11, 1e-10] {
        // Reference with a very tight tolerance (invert flavour).
        let reference =
            mevp_invert_krylov(&eval.c, &eval.g, &g_lu, &v, h, &tight).expect("reference MEVP");
        let err_vs_ref = |got: &[f64]| vector::max_abs_diff(got, &reference.mevp);

        let invert = mevp_invert_krylov(&eval.c, &eval.g, &g_lu, &v, h, &options);
        let rational = mevp_rational_krylov(&eval.c, &eval.g, h / 2.0, &v, h, &options);
        let standard = match &c_lu {
            Ok(lu) => mevp_standard_krylov(&eval.g, lu, &v, h, &options).map_err(|e| e.to_string()),
            Err(_) => Err("C is singular".to_string()),
        };

        let fmt = |m: usize, err: f64| (m.to_string(), format!("{err:.2e}"));
        let (im, ie) = invert
            .as_ref()
            .map(|o| fmt(o.dimension, err_vs_ref(&o.mevp)))
            .unwrap_or(("-".into(), "failed".into()));
        let (rm, re) = rational
            .as_ref()
            .map(|o| fmt(o.dimension, err_vs_ref(&o.mevp)))
            .unwrap_or(("-".into(), "failed".into()));
        let (sm, se) = standard
            .as_ref()
            .map(|o| fmt(o.dimension, err_vs_ref(&o.mevp)))
            .unwrap_or_else(|e| ("-".into(), e.clone()));
        table.add_row(vec![format!("{h:.0e}"), im, ie, rm, re, sm, se]);
    }
    print!("{table}");
    println!();
    println!("Expected shape (paper Sec. IV): the rational subspace converges in the fewest");
    println!("dimensions, the invert subspace is a close second with a much cheaper basis");
    println!("(only G factorized), and the standard subspace needs the largest dimension and");
    println!("breaks down entirely when C is singular.");
}
