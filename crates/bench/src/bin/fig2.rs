//! Fig. 2 reproduction: waveform accuracy of BENR, ER and ER-C against a
//! fine-step reference on a stiff inverter chain, plus a γ ablation for the
//! ER-C correction term (DESIGN.md ablation B).
//!
//! Usage: `cargo run --release -p exi-bench --bin fig2 [stages] [--gamma-sweep]`

use exi_bench::TextTable;
use exi_sim::{Method, Simulator, TransientOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let stages: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let gamma_sweep = args.iter().any(|a| a == "--gamma-sweep");

    let circuit = exi_bench::fig2_circuit(stages).expect("fig2 circuit generation");
    let observed = format!("s{stages}");
    let probes = [observed.as_str()];
    let t_stop = 1.5e-9;

    // Reference: BENR with a 10x smaller fixed step (the paper uses 1e-14 s
    // against 1e-13 s for the compared methods).
    let reference_options = TransientOptions {
        t_stop,
        h_init: 2e-13,
        h_max: 2e-13,
        error_budget: 1.0,
        ..TransientOptions::default()
    };
    let compared_options = TransientOptions {
        t_stop,
        h_init: 2e-12,
        h_max: 2e-12,
        error_budget: 5e-2,
        ..TransientOptions::default()
    };
    // ER-C is run at twice the step of BENR/ER, as in the paper.
    let erc_options = TransientOptions {
        h_init: 4e-12,
        h_max: 4e-12,
        ..compared_options.clone()
    };

    println!("Fig. 2 reproduction: accuracy on a {stages}-stage inverter chain (node {observed})");
    println!("reference: BENR @ h = {:.0e} s\n", reference_options.h_init);

    // One session serves the reference, all compared methods and the gamma
    // sweep: the DC solution and LU caches are shared across every run.
    let mut sim = Simulator::new(&circuit);
    let reference = sim
        .transient(Method::BackwardEuler, &reference_options, &probes)
        .expect("reference run");
    let p = reference.probe_index(&observed).expect("observed probe");

    let mut table = TextTable::new(vec![
        "method",
        "step (s)",
        "#steps",
        "max err (V)",
        "rms err (V)",
    ]);
    for (method, options) in [
        (Method::BackwardEuler, &compared_options),
        (Method::ExponentialRosenbrock, &compared_options),
        (Method::ExponentialRosenbrockCorrected, &erc_options),
    ] {
        let result = sim.transient(method, options, &probes).expect("method run");
        let max_err = result.max_error_vs(&reference, p);
        let rms_err = result.rms_error_vs(&reference, p);
        table.add_row(vec![
            method.label().to_string(),
            format!("{:.1e}", options.h_init),
            result.stats.accepted_steps.to_string(),
            format!("{max_err:.4}"),
            format!("{rms_err:.4}"),
        ]);
    }
    print!("{table}");
    println!();
    println!("Expected shape (paper Fig. 2): ER and ER-C track the reference more closely than");
    println!("BENR at the same step; ER-C holds its accuracy even at twice the step size.");

    if gamma_sweep {
        println!("\nAblation B: effect of the correction coefficient gamma (ER-C)");
        let mut table = TextTable::new(vec!["gamma", "max err (V)", "rms err (V)"]);
        for gamma in [0.0, 0.05, 0.1, 0.2, 0.5] {
            let options = TransientOptions {
                correction_gamma: gamma,
                ..erc_options.clone()
            };
            let result = sim
                .transient(Method::ExponentialRosenbrockCorrected, &options, &probes)
                .expect("gamma sweep run");
            table.add_row(vec![
                format!("{gamma:.2}"),
                format!("{:.4}", result.max_error_vs(&reference, p)),
                format!("{:.4}", result.rms_error_vs(&reference, p)),
            ]);
        }
        print!("{table}");
    }
}
