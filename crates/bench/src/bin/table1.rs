//! Table I reproduction: runtime, step counts and capability of BENR vs
//! ER/ER-C on the eight Table-I analogue circuits.
//!
//! The BENR baseline is given a factor-fill budget (a stand-in for the
//! paper's 32 GB memory limit); on the densely coupled cases its LU of
//! `C/h + G` exceeds the budget and the row reports "Out of Memory", while
//! ER/ER-C — which only factorize `G` — complete.
//!
//! Besides the human-readable table, the binary writes
//! `BENCH_table1.json` (per-case unknown counts, nonzeros, and per-method
//! steps / LU counters / refactorization counters / runtimes) so successive
//! revisions have a machine-readable performance trajectory to regress
//! against.
//!
//! Usage: `cargo run --release -p exi-bench --bin table1 [scale]`
//! (`scale` defaults to 1.0; use e.g. 0.5 for a quicker run)

use exi_bench::{run_case, table1_cases, CaseOutcome, TextTable};
use exi_sim::Method;

/// Fill budget handed to the BENR baseline, in nonzeros per unknown. The
/// ER methods get no budget: they only factorize the much sparser `G`.
const BENR_FILL_PER_UNKNOWN: usize = 18;

/// File the machine-readable results are written to (in the working
/// directory).
const JSON_OUTPUT: &str = "BENCH_table1.json";

fn outcome_cells(
    outcome: &CaseOutcome,
    baseline_runtime: Option<f64>,
) -> (String, String, String, String) {
    match outcome {
        CaseOutcome::Completed {
            steps,
            avg_newton,
            avg_krylov,
            runtime,
            ..
        } => {
            let detail = if *avg_krylov > 0.0 {
                format!("{avg_krylov:.1}")
            } else {
                format!("{avg_newton:.1}")
            };
            let speedup = match baseline_runtime {
                Some(base) if *runtime > 0.0 => format!("{:.1}x", base / runtime),
                _ => "NA".to_string(),
            };
            (steps.to_string(), detail, format!("{runtime:.2}"), speedup)
        }
        CaseOutcome::OutOfMemory => ("-".into(), "-".into(), "Out of Memory".into(), "NA".into()),
        CaseOutcome::Failed(msg) => (
            "-".into(),
            "-".into(),
            format!("failed: {msg}"),
            "NA".into(),
        ),
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let cases = table1_cases(scale);

    println!("Table I reproduction (scale = {scale}): BENR vs ER vs ER-C");
    println!(
        "BENR fill budget: {} nonzeros per unknown (memory-limit analogue); ER/ER-C unlimited\n",
        BENR_FILL_PER_UNKNOWN
    );

    let mut table = TextTable::new(vec![
        "case",
        "#N",
        "#Dev",
        "nnzC",
        "nnzG", // specification
        "BE #step",
        "BE #NRa",
        "BE RT(s)", // BENR
        "ER #step",
        "ER #ma",
        "ER RT(s)",
        "ER SP", // ER
        "ERC #step",
        "ERC #ma",
        "ERC RT(s)",
        "ERC SP", // ER-C
    ]);

    let mut json_cases: Vec<String> = Vec::new();

    for case in &cases {
        let circuit = case.build().expect("case circuit");
        let n = circuit.num_unknowns();
        let x = vec![0.0; n];
        let plan = circuit.compile_plan().expect("case plan");
        let eval = plan.evaluate(&x).expect("case evaluation");
        // Per-case device-evaluation cost through the stamping plan: the
        // steady-state restamp the engines pay per step / Newton iteration.
        let mut ws = plan.new_workspace();
        let mut scratch_eval = plan.new_evaluation();
        let evaluate_restamp_s = {
            let reps = 50;
            let start = std::time::Instant::now();
            for _ in 0..reps {
                plan.evaluate_into(&x, &mut ws, &mut scratch_eval)
                    .expect("restamp");
            }
            start.elapsed().as_secs_f64() / reps as f64
        };
        let budget = Some(BENR_FILL_PER_UNKNOWN * n);

        let benr = run_case(case, Method::BackwardEuler, budget);
        let er = run_case(case, Method::ExponentialRosenbrock, None);
        let erc = run_case(case, Method::ExponentialRosenbrockCorrected, None);

        let benr_rt = benr.runtime();
        let (be_steps, be_nr, be_rt, _) = outcome_cells(&benr, None);
        let (er_steps, er_m, er_rt, er_sp) = outcome_cells(&er, benr_rt);
        let (erc_steps, erc_m, erc_rt, erc_sp) = outcome_cells(&erc, benr_rt);

        json_cases.push(format!(
            concat!(
                "    {{\"name\":\"{}\",\"mirrors\":\"{}\",\"unknowns\":{},",
                "\"nonlinear_devices\":{},\"nnz_c\":{},\"nnz_g\":{},",
                "\"nonlinear_stamps\":{},\"evaluate_restamp_us\":{:.3},\"methods\":{{",
                "\"BENR\":{},\"ER\":{},\"ER-C\":{}}}}}"
            ),
            case.name,
            case.mirrors,
            n,
            circuit.num_nonlinear_devices(),
            eval.c.nnz(),
            eval.g.nnz(),
            plan.nonlinear_stamp_count(),
            evaluate_restamp_s * 1e6,
            benr.to_json(),
            er.to_json(),
            erc.to_json(),
        ));

        table.add_row(vec![
            case.name.to_string(),
            n.to_string(),
            circuit.num_nonlinear_devices().to_string(),
            eval.c.nnz().to_string(),
            eval.g.nnz().to_string(),
            be_steps,
            be_nr,
            be_rt,
            er_steps,
            er_m,
            er_rt,
            er_sp,
            erc_steps,
            erc_m,
            erc_rt,
            erc_sp,
        ]);
        eprintln!("finished {}", case.name);
    }

    print!("{table}");
    println!();
    println!("Expected shape (paper Table I): modest ER/ER-C speedups on the sparsely coupled");
    println!("cases (tc1-tc3), growing speedups as nnz(C) rises (tc4-tc5), and 'Out of Memory'");
    println!("for BENR on the densely coupled cases (tc6-tc8) which ER/ER-C still complete.");

    let json = format!(
        "{{\n  \"scale\": {scale},\n  \"benr_fill_per_unknown\": {BENR_FILL_PER_UNKNOWN},\n  \"cases\": [\n{}\n  ]\n}}\n",
        json_cases.join(",\n")
    );
    match std::fs::write(JSON_OUTPUT, &json) {
        Ok(()) => println!("\nmachine-readable results written to {JSON_OUTPUT}"),
        Err(e) => eprintln!("could not write {JSON_OUTPUT}: {e}"),
    }
}
