//! Minimal plain-text table formatting for the harness binaries.

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["case", "value"]);
        t.add_row(vec!["tc1", "1.5"]);
        t.add_row(vec!["a-long-name", "2"]);
        let s = t.render();
        assert!(s.contains("case"));
        assert!(s.contains("a-long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Every line of the body is at least as wide as the longest cell.
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        assert!(t.render().lines().count() == 3);
    }
}
