//! Runs one benchmark case with one method and collects Table-I row data.

use exi_netlist::Circuit;
use exi_sim::{Method, SimError, Simulator, TransientOptions};
use exi_sparse::SparseError;

use crate::cases::CaseSpec;

/// Result of running one (case, method) pair.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// The run completed.
    Completed {
        /// Accepted steps (`#step`).
        steps: usize,
        /// Average Newton iterations per step (`#NRa`, implicit methods only).
        avg_newton: f64,
        /// Average Krylov dimension (`#m_a`, exponential methods only).
        avg_krylov: f64,
        /// Number of LU factorizations (fresh + numeric-only).
        lu_count: usize,
        /// Number of full symbolic analyses among them.
        symbolic_analyses: usize,
        /// Number of numeric-only refactorizations among them.
        lu_refactorizations: usize,
        /// Number of full device evaluations performed.
        device_evaluations: usize,
        /// Number of stamping-plan compilations (one per topology).
        plan_compilations: usize,
        /// Total nonlinear matrix entries rewritten across all evaluations.
        restamped_entries: usize,
        /// Wall-clock runtime in seconds.
        runtime: f64,
    },
    /// The run hit the configured fill (memory) budget — the analogue of the
    /// paper's "Out of Memory" entries.
    OutOfMemory,
    /// The run failed for another reason.
    Failed(String),
}

impl CaseOutcome {
    /// Runtime if the run completed.
    pub fn runtime(&self) -> Option<f64> {
        match self {
            CaseOutcome::Completed { runtime, .. } => Some(*runtime),
            _ => None,
        }
    }

    /// `true` if the run completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, CaseOutcome::Completed { .. })
    }

    /// Serializes the outcome as a JSON object (used by the `table1` binary
    /// to emit the machine-readable `BENCH_table1.json`).
    pub fn to_json(&self) -> String {
        match self {
            CaseOutcome::Completed {
                steps,
                avg_newton,
                avg_krylov,
                lu_count,
                symbolic_analyses,
                lu_refactorizations,
                device_evaluations,
                plan_compilations,
                restamped_entries,
                runtime,
            } => format!(
                concat!(
                    "{{\"status\":\"completed\",\"steps\":{},\"avg_newton\":{:.3},",
                    "\"avg_krylov\":{:.3},\"lu_factorizations\":{},\"symbolic_analyses\":{},",
                    "\"lu_refactorizations\":{},\"device_evaluations\":{},",
                    "\"plan_compilations\":{},\"restamped_entries\":{},\"runtime_s\":{:.6}}}"
                ),
                steps,
                avg_newton,
                avg_krylov,
                lu_count,
                symbolic_analyses,
                lu_refactorizations,
                device_evaluations,
                plan_compilations,
                restamped_entries,
                runtime
            ),
            CaseOutcome::OutOfMemory => "{\"status\":\"out_of_memory\"}".to_string(),
            CaseOutcome::Failed(msg) => {
                format!(
                    "{{\"status\":\"failed\",\"error\":\"{}\"}}",
                    msg.replace('"', "'")
                )
            }
        }
    }
}

/// Default transient options used by the Table-I harness.
pub fn table1_options(t_stop: f64, fill_budget: Option<usize>) -> TransientOptions {
    TransientOptions {
        t_stop,
        h_init: 1e-12,
        h_max: 2e-11,
        h_min: 1e-16,
        error_budget: 2e-3,
        krylov_tolerance: 1e-7,
        fill_budget,
        ..TransientOptions::default()
    }
}

/// Runs `method` on `case` and converts the result into a table row entry.
pub fn run_case(case: &CaseSpec, method: Method, fill_budget: Option<usize>) -> CaseOutcome {
    let circuit = match case.build() {
        Ok(c) => c,
        Err(e) => return CaseOutcome::Failed(e.to_string()),
    };
    run_circuit(
        &circuit,
        method,
        &table1_options(case.t_stop, fill_budget),
        &[],
    )
}

/// Runs `method` on an already-built circuit (throwaway [`Simulator`]
/// session; use [`run_circuit_in`] to share caches across runs).
pub fn run_circuit(
    circuit: &Circuit,
    method: Method,
    options: &TransientOptions,
    probes: &[&str],
) -> CaseOutcome {
    run_circuit_in(&mut Simulator::new(circuit), method, options, probes)
}

/// Runs `method` inside an existing [`Simulator`] session, reusing its LU
/// caches, Krylov workspaces and DC solution.
pub fn run_circuit_in(
    simulator: &mut Simulator<'_>,
    method: Method,
    options: &TransientOptions,
    probes: &[&str],
) -> CaseOutcome {
    match simulator.transient(method, options, probes) {
        Ok(result) => CaseOutcome::Completed {
            steps: result.stats.accepted_steps,
            avg_newton: result.stats.avg_newton_iterations(),
            avg_krylov: result.stats.avg_krylov_dimension(),
            lu_count: result.stats.lu_factorizations,
            symbolic_analyses: result.stats.symbolic_analyses,
            lu_refactorizations: result.stats.lu_refactorizations,
            device_evaluations: result.stats.device_evaluations,
            plan_compilations: result.stats.plan_compilations,
            restamped_entries: result.stats.restamped_entries,
            runtime: result.stats.runtime_seconds(),
        },
        Err(SimError::Sparse(SparseError::FillBudgetExceeded { .. })) => CaseOutcome::OutOfMemory,
        Err(e) => CaseOutcome::Failed(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::table1_cases;

    #[test]
    fn small_case_runs_with_er_and_benr() {
        let cases = table1_cases(0.2);
        let case = &cases[0];
        let er = run_case(case, Method::ExponentialRosenbrock, None);
        assert!(er.is_completed(), "{er:?}");
        let benr = run_case(case, Method::BackwardEuler, None);
        assert!(benr.is_completed(), "{benr:?}");
        if let (
            CaseOutcome::Completed {
                avg_krylov,
                symbolic_analyses,
                lu_refactorizations,
                lu_count,
                ..
            },
            CaseOutcome::Completed { avg_newton, .. },
        ) = (&er, &benr)
        {
            assert!(*avg_krylov > 0.0);
            assert!(*avg_newton >= 1.0);
            // The symbolic-reuse path carries the run.
            assert!(*symbolic_analyses < *lu_count / 2);
            assert_eq!(*lu_count, symbolic_analyses + lu_refactorizations);
        }
    }

    #[test]
    fn shared_session_reuses_symbolic_analysis_across_methods() {
        // tc3 is linear (no MOSFET drivers): the conductance pattern is fixed
        // for the whole session, so the reuse guarantee is exact.
        let cases = table1_cases(0.2);
        let circuit = cases[2].build().unwrap();
        let options = table1_options(cases[2].t_stop, None);
        let mut sim = Simulator::new(&circuit);
        let first = run_circuit_in(&mut sim, Method::ExponentialRosenbrock, &options, &[]);
        let second = run_circuit_in(&mut sim, Method::ExponentialRosenbrock, &options, &[]);
        assert!(first.is_completed() && second.is_completed());
        if let CaseOutcome::Completed {
            symbolic_analyses, ..
        } = &second
        {
            // The second run reuses the session's cached symbolic analysis.
            assert_eq!(*symbolic_analyses, 0, "{second:?}");
        }
        assert_eq!(sim.session_stats().symbolic_analyses, 1);
        assert_eq!(sim.completed_runs(), 2);
    }

    #[test]
    fn fill_budget_produces_out_of_memory_outcome() {
        let cases = table1_cases(0.2);
        let case = &cases[7];
        let outcome = run_case(case, Method::BackwardEuler, Some(64));
        assert!(matches!(outcome, CaseOutcome::OutOfMemory), "{outcome:?}");
        assert!(outcome.runtime().is_none());
    }

    #[test]
    fn outcomes_serialize_to_json() {
        let done = CaseOutcome::Completed {
            steps: 10,
            avg_newton: 2.0,
            avg_krylov: 0.0,
            lu_count: 12,
            symbolic_analyses: 1,
            lu_refactorizations: 11,
            device_evaluations: 31,
            plan_compilations: 1,
            restamped_entries: 62,
            runtime: 0.25,
        };
        let json = done.to_json();
        assert!(json.contains("\"status\":\"completed\""));
        assert!(json.contains("\"lu_refactorizations\":11"));
        assert!(json.contains("\"plan_compilations\":1"));
        assert!(json.contains("\"restamped_entries\":62"));
        assert_eq!(
            CaseOutcome::OutOfMemory.to_json(),
            "{\"status\":\"out_of_memory\"}"
        );
        assert!(CaseOutcome::Failed("a \"b\"".into())
            .to_json()
            .contains("a 'b'"));
    }
}
