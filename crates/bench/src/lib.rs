//! # exi-bench
//!
//! Benchmark harness regenerating the tables and figures of the DAC'15
//! exponential-integrator paper with the `exi-sim` workspace.
//!
//! * [`cases`] — the eight Table-I analogue circuits (`tc1`–`tc8`) plus the
//!   Fig. 1 post-layout structure and the Fig. 2 inverter chain, all scaled to
//!   laptop size (see DESIGN.md for the substitution rationale).
//! * [`table`] — plain-text table formatting shared by the harness binaries.
//! * [`runner`] — runs one circuit with one method and collects the Table-I
//!   row counters.
//!
//! The binaries `fig1`, `fig2`, `table1` and `krylov_ablation` print the
//! corresponding artifact; `sweep` runs a Monte-Carlo batch sweep through
//! `exi_sim::BatchRunner` and writes `BENCH_sweep.json` (fleet-level
//! symbolic-reuse counters plus parallel speedup). The Criterion benches
//! under `benches/` time the same kernels on reduced sizes.

pub mod cases;
pub mod runner;
pub mod table;

pub use cases::{fig1_circuit, fig2_circuit, table1_cases, CaseSpec};
pub use runner::{run_case, run_circuit, run_circuit_in, CaseOutcome};
pub use table::TextTable;
