//! Benchmark circuits: laptop-scale analogues of the paper's test cases.
//!
//! The paper's ckt1–ckt8 are proprietary post-layout netlists whose relevant
//! properties are (i) the number of nonlinear drivers, (ii) the density of
//! the capacitance matrix `C` (parasitic coupling), and (iii) size. The
//! `tc1`–`tc8` cases below mirror those *relative* properties with the
//! [`exi_netlist::generators::coupled_lines`] generator: tc1–tc3 have very
//! sparse `C` (few or no couplings), tc4–tc5 add moderate coupling, tc6–tc8
//! are densely coupled. The benchmark harness gives the BENR baseline a
//! factor-fill budget so that, as in the paper, the densest cases become
//! infeasible for BENR while ER/ER-C complete.

use exi_netlist::generators::{coupled_lines, inverter_chain, CoupledLinesSpec, InverterChainSpec};
use exi_netlist::{Circuit, NetlistError};

/// Description of one Table-I analogue case.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Case name (`tc1` … `tc8`).
    pub name: &'static str,
    /// Which paper case this mirrors.
    pub mirrors: &'static str,
    /// Generator parameters.
    pub spec: CoupledLinesSpec,
    /// Simulated time span in seconds.
    pub t_stop: f64,
    /// Whether the paper reports BENR running out of memory on the mirrored case.
    pub benr_expected_infeasible: bool,
}

impl CaseSpec {
    /// Builds the circuit for this case.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (invalid parameters), wrapped with the
    /// case name so sweep/batch failure reports name the offending case
    /// (e.g. `while building spec 'tc6': while building spec
    /// 'coupled_lines': …`).
    pub fn build(&self) -> Result<Circuit, NetlistError> {
        coupled_lines(&self.spec).map_err(|e| e.in_spec(self.name))
    }

    /// The node observed when recording waveforms for this case.
    pub fn observed_node(&self) -> String {
        format!("l0_{}", self.spec.segments - 1)
    }
}

/// The eight Table-I analogue cases.
///
/// `scale` multiplies the structural size (lines × segments); `1.0` gives the
/// default laptop-scale sizes used by the `table1` binary, smaller values are
/// used by the Criterion benches.
pub fn table1_cases(scale: f64) -> Vec<CaseSpec> {
    let lines = |base: usize| ((base as f64 * scale).round() as usize).max(2);
    let segs = |base: usize| ((base as f64 * scale).round() as usize).max(4);
    let base = CoupledLinesSpec::default();
    vec![
        CaseSpec {
            name: "tc1",
            mirrors: "ckt1 (sparse C, many drivers)",
            spec: CoupledLinesSpec {
                lines: lines(10),
                segments: segs(20),
                coupling_capacitance: 0.0,
                random_couplings: 0,
                mosfet_drivers: true,
                seed: 101,
                ..base.clone()
            },
            t_stop: 2e-9,
            benr_expected_infeasible: false,
        },
        CaseSpec {
            name: "tc2",
            mirrors: "ckt2 (largest, sparse C)",
            spec: CoupledLinesSpec {
                lines: lines(16),
                segments: segs(30),
                coupling_capacitance: 0.0,
                random_couplings: 0,
                mosfet_drivers: true,
                seed: 102,
                ..base.clone()
            },
            t_stop: 2e-9,
            benr_expected_infeasible: false,
        },
        CaseSpec {
            name: "tc3",
            mirrors: "ckt3 (few drivers, sparse C)",
            spec: CoupledLinesSpec {
                lines: lines(8),
                segments: segs(24),
                coupling_capacitance: 0.0,
                random_couplings: 0,
                mosfet_drivers: false,
                seed: 103,
                ..base.clone()
            },
            t_stop: 2e-9,
            benr_expected_infeasible: false,
        },
        CaseSpec {
            name: "tc4",
            mirrors: "ckt4 (many MOSFETs, moderate coupling)",
            spec: CoupledLinesSpec {
                lines: lines(10),
                segments: segs(20),
                coupling_capacitance: 2e-15,
                random_couplings: (160.0 * scale) as usize,
                mosfet_drivers: true,
                seed: 104,
                ..base.clone()
            },
            t_stop: 2e-9,
            benr_expected_infeasible: false,
        },
        CaseSpec {
            name: "tc5",
            mirrors: "ckt5 (FreeCPU interconnect, strong coupling)",
            spec: CoupledLinesSpec {
                lines: lines(8),
                segments: segs(24),
                coupling_capacitance: 2e-15,
                random_couplings: (600.0 * scale) as usize,
                mosfet_drivers: false,
                seed: 105,
                ..base.clone()
            },
            t_stop: 2e-9,
            benr_expected_infeasible: false,
        },
        CaseSpec {
            name: "tc6",
            mirrors: "ckt6 (dense parasitics, BENR OOM)",
            spec: CoupledLinesSpec {
                lines: lines(10),
                segments: segs(20),
                coupling_capacitance: 2e-15,
                random_couplings: (1500.0 * scale) as usize,
                mosfet_drivers: true,
                seed: 106,
                ..base.clone()
            },
            t_stop: 2e-9,
            benr_expected_infeasible: true,
        },
        CaseSpec {
            name: "tc7",
            mirrors: "ckt7 (larger, dense parasitics, BENR OOM)",
            spec: CoupledLinesSpec {
                lines: lines(14),
                segments: segs(26),
                coupling_capacitance: 2e-15,
                random_couplings: (2500.0 * scale) as usize,
                mosfet_drivers: true,
                seed: 107,
                ..base.clone()
            },
            t_stop: 2e-9,
            benr_expected_infeasible: true,
        },
        CaseSpec {
            name: "tc8",
            mirrors: "ckt8 (largest, dense parasitics, BENR OOM)",
            spec: CoupledLinesSpec {
                lines: lines(16),
                segments: segs(30),
                coupling_capacitance: 2e-15,
                random_couplings: (4000.0 * scale) as usize,
                mosfet_drivers: true,
                seed: 108,
                ..base
            },
            t_stop: 2e-9,
            benr_expected_infeasible: true,
        },
    ]
}

/// The Fig. 1 structure: a post-layout-style strongly coupled interconnect
/// whose `C` is much denser than its `G`.
///
/// # Errors
///
/// Propagates generator errors.
pub fn fig1_circuit(scale: f64) -> Result<Circuit, NetlistError> {
    let lines = ((12.0 * scale).round() as usize).max(2);
    let segments = ((25.0 * scale).round() as usize).max(4);
    coupled_lines(&CoupledLinesSpec {
        lines,
        segments,
        coupling_capacitance: 2e-15,
        random_couplings: (3000.0 * scale) as usize,
        mosfet_drivers: false,
        seed: 42,
        ..CoupledLinesSpec::default()
    })
}

/// The Fig. 2 circuit: a stiff nonlinear inverter chain.
///
/// # Errors
///
/// Propagates generator errors.
pub fn fig2_circuit(stages: usize) -> Result<Circuit, NetlistError> {
    inverter_chain(&InverterChainSpec {
        stages,
        wire_resistance: 200.0,
        wire_capacitance: 4e-15,
        load_capacitance: 3e-15,
        ..InverterChainSpec::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_build() {
        for case in table1_cases(0.3) {
            let ckt = case.build().unwrap();
            assert!(ckt.num_unknowns() > 10, "{} too small", case.name);
            assert!(
                ckt.unknown_of(&case.observed_node()).is_some(),
                "{}",
                case.name
            );
        }
    }

    #[test]
    fn coupling_density_increases_towards_tc8() {
        let cases = table1_cases(0.3);
        let nnz = |c: &CaseSpec| {
            let ckt = c.build().unwrap();
            let x = vec![0.0; ckt.num_unknowns()];
            ckt.compile_plan().unwrap().evaluate(&x).unwrap().c.nnz() as f64
                / ckt.num_unknowns() as f64
        };
        let sparse = nnz(&cases[2]);
        let dense = nnz(&cases[7]);
        assert!(dense > 2.0 * sparse, "dense {dense} vs sparse {sparse}");
    }

    #[test]
    fn fig_circuits_build() {
        let f1 = fig1_circuit(0.3).unwrap();
        assert!(f1.num_unknowns() > 10);
        let f2 = fig2_circuit(4).unwrap();
        assert_eq!(f2.num_nonlinear_devices(), 8);
    }
}
