//! Criterion bench behind the Fig. 1 reproduction: time the LU factorization
//! of `G` (what ER pays per step) vs `C/h + G` (what BENR pays per Newton
//! iteration) on a coupled post-layout structure.

use criterion::{criterion_group, criterion_main, Criterion};
use exi_sparse::{CsrMatrix, SparseLu};

fn bench_factorizations(c: &mut Criterion) {
    let circuit = exi_bench::fig1_circuit(0.5).expect("fig1 circuit");
    let n = circuit.num_unknowns();
    let x = vec![0.0; n];
    let eval = circuit
        .compile_plan()
        .and_then(|plan| plan.evaluate(&x))
        .expect("evaluation");
    let h = 1e-12;
    let benr_matrix =
        CsrMatrix::linear_combination(1.0 / h, &eval.c, 1.0, &eval.g).expect("C/h + G");

    let mut group = c.benchmark_group("fig1_lu_fill");
    group.sample_size(10);
    group.bench_function("lu_of_G", |b| {
        b.iter(|| SparseLu::factorize(&eval.g).expect("LU of G"))
    });
    group.bench_function("lu_of_C_over_h_plus_G", |b| {
        b.iter(|| SparseLu::factorize(&benr_matrix).expect("LU of C/h+G"))
    });
    group.finish();
}

criterion_group!(benches, bench_factorizations);
criterion_main!(benches);
