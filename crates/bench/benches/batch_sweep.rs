//! Criterion bench for the batch-sweep subsystem: the same six-corner
//! power-grid sweep executed as (a) isolated sequential sessions, (b) a
//! one-worker batch (measures batch overhead + shared-cache benefit), and
//! (c) a multi-worker batch (adds the parallel speedup).

use criterion::{criterion_group, criterion_main, Criterion};
use exi_netlist::generators::{power_grid, PowerGridSpec};
use exi_sim::{BatchJob, BatchPlan, BatchRunner, Method, Simulator, TransientOptions};

const JOBS: usize = 6;

fn sweep_options(k: usize) -> TransientOptions {
    TransientOptions {
        t_stop: 4e-10,
        h_init: 1e-12,
        h_max: 2e-11,
        error_budget: 1e-3 / (1.0 + k as f64 * 0.2),
        ..TransientOptions::default()
    }
}

fn sweep_plan() -> BatchPlan {
    let mut plan = BatchPlan::new();
    for k in 0..JOBS {
        let circuit = power_grid(&PowerGridSpec {
            rows: 6,
            cols: 6,
            num_sinks: 6,
            ..PowerGridSpec::default()
        })
        .expect("power grid builds");
        plan.push(
            BatchJob::new(
                format!("corner{k}"),
                circuit,
                Method::ExponentialRosenbrock,
                sweep_options(k),
            )
            .probe("g_3_3"),
        );
    }
    plan
}

fn bench_batch_sweep(c: &mut Criterion) {
    let plan = sweep_plan();
    let mut group = c.benchmark_group("batch_sweep");
    group.sample_size(10);

    // Isolated sequential sessions: N symbolic analyses, no sharing.
    group.bench_function("sequential_sessions", |b| {
        b.iter(|| {
            for job in plan.jobs() {
                Simulator::new(&job.circuit)
                    .transient(job.method, &job.options, &["g_3_3"])
                    .expect("sequential run");
            }
        })
    });

    // One worker: same wall-clock shape as sequential, but the fleet shares
    // one symbolic analysis through the cache.
    group.bench_function("batch_1_worker", |b| {
        b.iter(|| {
            let result = BatchRunner::new().worker_threads(1).run(&plan);
            assert!(result.all_ok());
            result
        })
    });

    // Multi-worker: shared analysis plus parallel execution.
    group.bench_function("batch_4_workers", |b| {
        b.iter(|| {
            let result = BatchRunner::new().worker_threads(4).run(&plan);
            assert!(result.all_ok());
            result
        })
    });

    group.finish();
}

criterion_group!(benches, bench_batch_sweep);
criterion_main!(benches);
