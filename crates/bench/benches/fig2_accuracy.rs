//! Criterion bench behind the Fig. 2 reproduction: time BENR, ER and ER-C on
//! the stiff inverter chain at the step sizes the figure compares.

use criterion::{criterion_group, criterion_main, Criterion};
use exi_sim::{run_transient, Method, TransientOptions};

fn bench_fig2_methods(c: &mut Criterion) {
    let circuit = exi_bench::fig2_circuit(4).expect("fig2 circuit");
    let options = TransientOptions {
        t_stop: 4e-10,
        h_init: 2e-12,
        h_max: 2e-12,
        error_budget: 5e-2,
        ..TransientOptions::default()
    };
    let mut group = c.benchmark_group("fig2_accuracy_methods");
    group.sample_size(10);
    for method in [
        Method::BackwardEuler,
        Method::ExponentialRosenbrock,
        Method::ExponentialRosenbrockCorrected,
    ] {
        group.bench_function(method.label(), |b| {
            b.iter(|| run_transient(&circuit, method, &options, &["s4"]).expect("transient run"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2_methods);
criterion_main!(benches);
