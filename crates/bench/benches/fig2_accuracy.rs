//! Criterion bench behind the Fig. 2 reproduction: time BENR, ER and ER-C on
//! the stiff inverter chain at the step sizes the figure compares.

use criterion::{criterion_group, criterion_main, Criterion};
use exi_sim::{Method, Simulator, TransientOptions};

fn bench_fig2_methods(c: &mut Criterion) {
    let circuit = exi_bench::fig2_circuit(4).expect("fig2 circuit");
    let options = TransientOptions {
        t_stop: 4e-10,
        h_init: 2e-12,
        h_max: 2e-12,
        error_budget: 5e-2,
        ..TransientOptions::default()
    };
    let mut group = c.benchmark_group("fig2_accuracy_methods");
    group.sample_size(10);
    for method in [
        Method::BackwardEuler,
        Method::ExponentialRosenbrock,
        Method::ExponentialRosenbrockCorrected,
    ] {
        group.bench_function(method.label(), |b| {
            b.iter(|| {
                Simulator::new(&circuit)
                    .transient(method, &options, &["s4"])
                    .expect("transient run")
            })
        });
    }
    group.finish();
}

/// Cross-run cache reuse: a shared `Simulator` session amortizes the DC
/// solve and the symbolic LU analysis across repeated ER runs; the
/// `NullObserver` variant additionally strips all recording overhead.
fn bench_session_reuse(c: &mut Criterion) {
    let circuit = exi_bench::fig2_circuit(4).expect("fig2 circuit");
    let options = TransientOptions {
        t_stop: 4e-10,
        h_init: 2e-12,
        h_max: 2e-12,
        error_budget: 5e-2,
        ..TransientOptions::default()
    };
    let mut group = c.benchmark_group("session_reuse");
    group.sample_size(10);
    group.bench_function("fresh_session_per_run", |b| {
        b.iter(|| {
            Simulator::new(&circuit)
                .transient(Method::ExponentialRosenbrock, &options, &["s4"])
                .expect("transient run")
        })
    });
    let mut shared = Simulator::new(&circuit);
    group.bench_function("shared_session", |b| {
        b.iter(|| {
            shared
                .transient(Method::ExponentialRosenbrock, &options, &["s4"])
                .expect("transient run")
        })
    });
    let mut throughput = Simulator::new(&circuit);
    group.bench_function("shared_session_null_observer", |b| {
        b.iter(|| {
            throughput
                .transient_observed(
                    Method::ExponentialRosenbrock,
                    &options,
                    &mut exi_sim::NullObserver,
                )
                .expect("transient run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2_methods, bench_session_reuse);
criterion_main!(benches);
