//! Criterion bench for the MNA assembly layer: one-time stamping-plan
//! compilation vs per-evaluation restamping vs the legacy COO path.
//!
//! The `assembly` group covers the two workload shapes the plan was built
//! for:
//!
//! * `power_grid` — linear-dominated (the plan restores every row by flat
//!   copies; `restamp` should beat `legacy_coo` by a wide margin),
//! * `coupled_mosfets` — nonlinear drivers on long RC lines (only the
//!   driver rows are re-deduplicated per evaluation; the win shrinks with
//!   the nonlinear fraction but must remain clear).
//!
//! A head-to-head ratio is printed after each subgroup; the plan-compile
//! timing shows how many evaluations amortize one compilation.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use exi_netlist::generators::{coupled_lines, power_grid, CoupledLinesSpec, PowerGridSpec};
use exi_netlist::Circuit;

fn grid_circuit() -> Circuit {
    power_grid(&PowerGridSpec {
        rows: 40,
        cols: 40,
        num_sinks: 60,
        ..PowerGridSpec::default()
    })
    .expect("power grid circuit")
}

fn mosfet_lines_circuit() -> Circuit {
    coupled_lines(&CoupledLinesSpec {
        lines: 16,
        segments: 30,
        random_couplings: 200,
        mosfet_drivers: true,
        ..CoupledLinesSpec::default()
    })
    .expect("coupled lines circuit")
}

fn bench_case(c: &mut Criterion, tag: &str, circuit: &Circuit) {
    let n = circuit.num_unknowns();
    let x: Vec<f64> = (0..n).map(|i| 0.3 + 0.5 * ((i % 7) as f64 / 7.0)).collect();
    let plan = circuit.compile_plan().expect("plan compiles");
    let mut ws = plan.new_workspace();
    let mut ev = plan.new_evaluation();

    let mut group = c.benchmark_group(format!("assembly/{tag}"));
    group.sample_size(10);
    group.bench_function("plan_compile", |b| {
        b.iter(|| criterion::black_box(circuit.compile_plan().expect("plan compiles")))
    });
    group.bench_function("plan_restamp", |b| {
        b.iter(|| plan.evaluate_into(&x, &mut ws, &mut ev).expect("restamp"))
    });
    group.bench_function("legacy_coo", |b| {
        b.iter(|| criterion::black_box(circuit.evaluate_reference(&x).expect("legacy eval")))
    });
    group.finish();

    // Head-to-head ratio on identical work, for the acceptance check.
    let reps = 50;
    let start = Instant::now();
    for _ in 0..reps {
        plan.evaluate_into(&x, &mut ws, &mut ev).expect("restamp");
    }
    let restamp = start.elapsed().as_secs_f64() / reps as f64;
    let start = Instant::now();
    for _ in 0..reps {
        criterion::black_box(circuit.evaluate_reference(&x).expect("legacy eval"));
    }
    let legacy = start.elapsed().as_secs_f64() / reps as f64;
    println!(
        "assembly/{tag}: legacy COO {:.3} us vs plan restamp {:.3} us -> {:.1}x speedup \
         (n = {n}, nnz(G) = {}, nonlinear stamps = {}, assembly allocations = {})",
        legacy * 1e6,
        restamp * 1e6,
        legacy / restamp,
        ev.g.nnz(),
        plan.nonlinear_stamp_count(),
        ws.allocations(),
    );
    assert_eq!(
        ws.allocations(),
        0,
        "steady-state restamps must not allocate"
    );
}

fn bench_assembly(c: &mut Criterion) {
    bench_case(c, "power_grid", &grid_circuit());
    bench_case(c, "coupled_mosfets", &mosfet_lines_circuit());
}

criterion_group!(benches, bench_assembly);
criterion_main!(benches);
