//! Criterion bench for the value-lane engine: the same eight-corner
//! same-fingerprint RC-mesh sweep executed (a) as a scalar one-worker batch
//! (shared symbolic cache, one session per job), (b) lane-coalesced through
//! [`BatchRunner`] at widths 2/4/8, and (c) directly through [`LaneRunner`]
//! (no batch scheduling overhead). Backward Euler throughout — the implicit
//! path is the one that rides `refactorize_lanes`; ER lanes intentionally
//! fall back to sequential scalar sessions.
//!
//! Set `LANE_SWEEP_SMOKE=1` to shrink the mesh and sample counts for CI
//! smoke runs; the printed `lanes-vs-scalar` ratio is the artifact CI keeps.

use criterion::{criterion_group, criterion_main, Criterion};
use exi_netlist::generators::{rc_mesh, RcMeshSpec};
use exi_netlist::Circuit;
use exi_sim::{BatchJob, BatchPlan, BatchRunner, LanePolicy, LaneRunner, Method, TransientOptions};
use std::time::Instant;

const JOBS: usize = 8;

fn smoke() -> bool {
    std::env::var_os("LANE_SWEEP_SMOKE").is_some_and(|v| v != "0")
}

fn mesh_side() -> usize {
    if smoke() {
        8
    } else {
        20
    }
}

fn sweep_options() -> TransientOptions {
    TransientOptions {
        t_stop: 3e-10,
        h_init: 1e-12,
        h_max: 2e-11,
        error_budget: 1e-3,
        ..TransientOptions::default()
    }
}

/// Eight same-fingerprint corners: tiny drive-amplitude perturbations keep
/// every lane bitwise distinct (no dedup shortcut in the refactorization
/// pass) while staying deep inside the lockstep regime (no detaches).
fn corner_circuits(side: usize) -> Vec<Circuit> {
    (0..JOBS)
        .map(|k| {
            rc_mesh(&RcMeshSpec {
                rows: side,
                cols: side,
                amplitude: 1.0 + 1e-4 * k as f64,
                ..RcMeshSpec::default()
            })
            .expect("mesh builds")
        })
        .collect()
}

fn sweep_plan(side: usize) -> BatchPlan {
    let mut plan = BatchPlan::new();
    for (k, circuit) in corner_circuits(side).into_iter().enumerate() {
        plan.push(
            BatchJob::new(
                format!("corner{k}"),
                circuit,
                Method::BackwardEuler,
                sweep_options(),
            )
            .probe(format!("m_{}_{}", side - 1, side - 1)),
        );
    }
    plan
}

fn bench_lane_sweep(c: &mut Criterion) {
    let side = mesh_side();
    let plan = sweep_plan(side);
    let probe = format!("m_{}_{}", side - 1, side - 1);
    let mut group = c.benchmark_group("lane_sweep");
    group.sample_size(if smoke() { 3 } else { 10 });

    // Scalar batch: one worker, shared caches, one session per corner.
    group.bench_function("scalar_batch_1_worker", |b| {
        b.iter(|| {
            let result = BatchRunner::new().worker_threads(1).run(&plan);
            assert!(result.all_ok());
            result
        })
    });

    for width in [2usize, 4, 8] {
        group.bench_function(format!("lane_batch_width_{width}"), |b| {
            b.iter(|| {
                let result = BatchRunner::new()
                    .worker_threads(1)
                    .lane_policy(LanePolicy::Fixed(width))
                    .run(&plan);
                assert!(result.all_ok());
                assert!(result.stats.lane_batches > 0);
                result
            })
        });
    }

    // LaneRunner without batch scheduling: the raw engine ceiling.
    let circuits = corner_circuits(side);
    let refs: Vec<&Circuit> = circuits.iter().collect();
    let options = sweep_options();
    group.bench_function("lane_runner_direct_k8", |b| {
        b.iter(|| {
            let batch = LaneRunner::new(&refs).expect("same fingerprint").transient(
                Method::BackwardEuler,
                &options,
                &[&probe],
            );
            assert!(batch.lanes.iter().all(Result::is_ok));
            batch
        })
    });

    group.finish();

    // The lanes-vs-scalar throughput ratio CI archives: one timed run each,
    // after the criterion passes above have warmed everything.
    let scalar = {
        let start = Instant::now();
        let result = BatchRunner::new().worker_threads(1).run(&plan);
        assert!(result.all_ok());
        start.elapsed().as_secs_f64()
    };
    let laned = {
        let start = Instant::now();
        let result = BatchRunner::new()
            .worker_threads(1)
            .lane_policy(LanePolicy::Fixed(8))
            .run(&plan);
        assert!(result.all_ok());
        start.elapsed().as_secs_f64()
    };
    println!(
        "lane_sweep/lanes-vs-scalar: {:.2}x (scalar {:.3} s, lanes(8) {:.3} s, \
         {side}x{side} mesh, {JOBS} corners)",
        scalar / laned.max(1e-9),
        scalar,
        laned,
    );
}

criterion_group!(benches, bench_lane_sweep);
criterion_main!(benches);
