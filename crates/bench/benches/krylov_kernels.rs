//! Criterion bench for the MEVP kernels and the symbolic-reuse LU path.
//!
//! Two groups:
//!
//! * `lu_refactorize` — the headline comparison for the symbolic/numeric
//!   split: a full `factorize_with` (ordering + pivoting + reachability DFS +
//!   numeric elimination) vs a numeric-only `refactorize_with` of the
//!   power-grid conductance matrix. The refactorization must be ≥2× faster;
//!   the measured ratio is printed alongside the timings.
//! * `krylov_mevp` — ablation A: invert vs standard vs rational Krylov
//!   subspaces on the same matrices, plus the workspace-reusing invert
//!   variant the ER engine actually runs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use exi_krylov::{
    mevp_invert_krylov, mevp_invert_krylov_with, mevp_rational_krylov, mevp_standard_krylov,
    MevpOptions, MevpWorkspace,
};
use exi_netlist::generators::{power_grid, PowerGridSpec};
use exi_sparse::{CsrMatrix, LuOptions, LuWorkspace, SparseLu};

/// The conductance matrix of a laptop-scale power-distribution mesh — the
/// workload whose per-step `G` factorization dominates the ER engine.
fn power_grid_conductance() -> CsrMatrix {
    let spec = PowerGridSpec {
        rows: 40,
        cols: 40,
        num_sinks: 60,
        ..PowerGridSpec::default()
    };
    let circuit = power_grid(&spec).expect("power grid circuit");
    let x = vec![0.0; circuit.num_unknowns()];
    circuit
        .compile_plan()
        .and_then(|plan| plan.evaluate(&x))
        .expect("evaluation")
        .g
}

fn bench_lu_refactorize(c: &mut Criterion) {
    let g = power_grid_conductance();
    let options = LuOptions::default();
    let mut refac = SparseLu::factorize_with(&g, &options).expect("pilot LU of G");
    let mut ws = LuWorkspace::new();

    let mut group = c.benchmark_group("lu_refactorize");
    group.sample_size(10);
    group.bench_function("factorize_full", |b| {
        b.iter(|| SparseLu::factorize_with(&g, &options).expect("full factorization"))
    });
    group.bench_function("refactorize_numeric", |b| {
        b.iter(|| {
            refac
                .refactorize_with(&g, &mut ws)
                .expect("numeric refactorization")
        })
    });
    group.finish();

    // Direct head-to-head ratio on identical work, for the acceptance check.
    let reps = 20;
    let start = Instant::now();
    for _ in 0..reps {
        criterion::black_box(SparseLu::factorize_with(&g, &options).expect("full"));
    }
    let full = start.elapsed().as_secs_f64() / reps as f64;
    let start = Instant::now();
    for _ in 0..reps {
        refac.refactorize_with(&g, &mut ws).expect("numeric");
    }
    let numeric = start.elapsed().as_secs_f64() / reps as f64;
    println!(
        "lu_refactorize: full {:.3} ms vs numeric-only {:.3} ms -> {:.1}x speedup (n = {}, nnz = {})",
        full * 1e3,
        numeric * 1e3,
        full / numeric,
        g.rows(),
        g.nnz()
    );
}

fn bench_mevp_kernels(c: &mut Criterion) {
    let circuit = exi_bench::fig1_circuit(0.4).expect("circuit");
    let n = circuit.num_unknowns();
    let x = vec![0.0; n];
    let eval = circuit
        .compile_plan()
        .and_then(|plan| plan.evaluate(&x))
        .expect("evaluation");
    let g_lu = SparseLu::factorize(&eval.g).expect("LU of G");
    let c_lu = SparseLu::factorize(&eval.c).ok();
    let v: Vec<f64> = (0..n).map(|i| ((i % 5) as f64 - 2.0) / 2.0).collect();
    let h = 2e-11;
    let options = MevpOptions {
        tolerance: 1e-7,
        max_dimension: 200,
        allow_unconverged: true,
        ..MevpOptions::default()
    };

    let mut group = c.benchmark_group("krylov_mevp");
    group.sample_size(10);
    group.bench_function("invert", |b| {
        b.iter(|| mevp_invert_krylov(&eval.c, &eval.g, &g_lu, &v, h, &options).expect("invert"))
    });
    let mut ws = MevpWorkspace::new();
    group.bench_function("invert_with_workspace", |b| {
        b.iter(|| {
            let out = mevp_invert_krylov_with(&eval.c, &eval.g, &g_lu, &v, h, &options, &mut ws)
                .expect("invert with workspace");
            let dimension = out.dimension;
            ws.recycle_vec(out.mevp);
            ws.recycle(out.decomposition);
            dimension
        })
    });
    group.bench_function("rational", |b| {
        b.iter(|| {
            mevp_rational_krylov(&eval.c, &eval.g, h / 2.0, &v, h, &options).expect("rational")
        })
    });
    if let Some(c_lu) = &c_lu {
        group.bench_function("standard", |b| {
            b.iter(|| {
                mevp_standard_krylov(&eval.g, c_lu, &v, h, &options)
                    .map(|o| o.dimension)
                    .unwrap_or(0)
            })
        });
    }
    group.finish();
}

/// SpMV kernel comparison: the sequential `mul_vec_into` (the engines' hot
/// path — its summation order is pinned by the golden-waveform suite)
/// against the 4-wide-accumulator `mul_vec_into_unrolled` variant (which
/// reassociates the sum and is offered for throughput-first consumers).
fn bench_spmv(c: &mut Criterion) {
    let g = power_grid_conductance();
    let n = g.rows();
    let x: Vec<f64> = (0..n).map(|i| ((i % 9) as f64 - 4.0) / 4.0).collect();
    let mut y = vec![0.0; n];

    let mut group = c.benchmark_group("spmv");
    group.sample_size(20);
    group.bench_function("scalar", |b| b.iter(|| g.mul_vec_into(&x, &mut y)));
    group.bench_function("unrolled_4wide", |b| {
        b.iter(|| g.mul_vec_into_unrolled(&x, &mut y))
    });
    group.finish();

    // Head-to-head ratio plus a drift check: the variants agree to
    // round-off, never bitwise by contract.
    let reps = 200;
    let start = Instant::now();
    for _ in 0..reps {
        g.mul_vec_into(&x, &mut y);
    }
    let scalar = start.elapsed().as_secs_f64() / reps as f64;
    let mut y2 = vec![0.0; n];
    let start = Instant::now();
    for _ in 0..reps {
        g.mul_vec_into_unrolled(&x, &mut y2);
    }
    let unrolled = start.elapsed().as_secs_f64() / reps as f64;
    let max_drift = y
        .iter()
        .zip(&y2)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "spmv: scalar {:.3} us vs 4-wide {:.3} us -> {:.2}x (n = {}, nnz = {}, max |drift| = {:.1e})",
        scalar * 1e6,
        unrolled * 1e6,
        scalar / unrolled,
        g.rows(),
        g.nnz(),
        max_drift
    );
    assert!(max_drift < 1e-12, "unrolled SpMV drifted: {max_drift:e}");
}

criterion_group!(
    benches,
    bench_lu_refactorize,
    bench_mevp_kernels,
    bench_spmv
);
criterion_main!(benches);
