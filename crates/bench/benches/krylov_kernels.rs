//! Criterion bench for the MEVP kernels and the symbolic-reuse LU path.
//!
//! Two groups:
//!
//! * `lu_refactorize` — the headline comparison for the symbolic/numeric
//!   split: a full `factorize_with` (ordering + pivoting + reachability DFS +
//!   numeric elimination) vs a numeric-only `refactorize_with` of the
//!   power-grid conductance matrix. The refactorization must be ≥2× faster;
//!   the measured ratio is printed alongside the timings.
//! * `krylov_mevp` — ablation A: invert vs standard vs rational Krylov
//!   subspaces on the same matrices, plus the workspace-reusing invert
//!   variant the ER engine actually runs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use exi_krylov::{
    mevp_invert_krylov, mevp_invert_krylov_with, mevp_rational_krylov, mevp_standard_krylov,
    MevpOptions, MevpWorkspace,
};
use exi_netlist::generators::{power_grid, PowerGridSpec};
use exi_sparse::{CsrMatrix, LuOptions, LuWorkspace, SparseLu};

/// The conductance matrix of a laptop-scale power-distribution mesh — the
/// workload whose per-step `G` factorization dominates the ER engine.
fn power_grid_conductance() -> CsrMatrix {
    let spec = PowerGridSpec {
        rows: 40,
        cols: 40,
        num_sinks: 60,
        ..PowerGridSpec::default()
    };
    let circuit = power_grid(&spec).expect("power grid circuit");
    let x = vec![0.0; circuit.num_unknowns()];
    circuit.evaluate(&x).expect("evaluation").g
}

fn bench_lu_refactorize(c: &mut Criterion) {
    let g = power_grid_conductance();
    let options = LuOptions::default();
    let mut refac = SparseLu::factorize_with(&g, &options).expect("pilot LU of G");
    let mut ws = LuWorkspace::new();

    let mut group = c.benchmark_group("lu_refactorize");
    group.sample_size(10);
    group.bench_function("factorize_full", |b| {
        b.iter(|| SparseLu::factorize_with(&g, &options).expect("full factorization"))
    });
    group.bench_function("refactorize_numeric", |b| {
        b.iter(|| {
            refac
                .refactorize_with(&g, &mut ws)
                .expect("numeric refactorization")
        })
    });
    group.finish();

    // Direct head-to-head ratio on identical work, for the acceptance check.
    let reps = 20;
    let start = Instant::now();
    for _ in 0..reps {
        criterion::black_box(SparseLu::factorize_with(&g, &options).expect("full"));
    }
    let full = start.elapsed().as_secs_f64() / reps as f64;
    let start = Instant::now();
    for _ in 0..reps {
        refac.refactorize_with(&g, &mut ws).expect("numeric");
    }
    let numeric = start.elapsed().as_secs_f64() / reps as f64;
    println!(
        "lu_refactorize: full {:.3} ms vs numeric-only {:.3} ms -> {:.1}x speedup (n = {}, nnz = {})",
        full * 1e3,
        numeric * 1e3,
        full / numeric,
        g.rows(),
        g.nnz()
    );
}

fn bench_mevp_kernels(c: &mut Criterion) {
    let circuit = exi_bench::fig1_circuit(0.4).expect("circuit");
    let n = circuit.num_unknowns();
    let x = vec![0.0; n];
    let eval = circuit.evaluate(&x).expect("evaluation");
    let g_lu = SparseLu::factorize(&eval.g).expect("LU of G");
    let c_lu = SparseLu::factorize(&eval.c).ok();
    let v: Vec<f64> = (0..n).map(|i| ((i % 5) as f64 - 2.0) / 2.0).collect();
    let h = 2e-11;
    let options = MevpOptions {
        tolerance: 1e-7,
        max_dimension: 200,
        allow_unconverged: true,
        ..MevpOptions::default()
    };

    let mut group = c.benchmark_group("krylov_mevp");
    group.sample_size(10);
    group.bench_function("invert", |b| {
        b.iter(|| mevp_invert_krylov(&eval.c, &eval.g, &g_lu, &v, h, &options).expect("invert"))
    });
    let mut ws = MevpWorkspace::new();
    group.bench_function("invert_with_workspace", |b| {
        b.iter(|| {
            let out = mevp_invert_krylov_with(&eval.c, &eval.g, &g_lu, &v, h, &options, &mut ws)
                .expect("invert with workspace");
            let dimension = out.dimension;
            ws.recycle_vec(out.mevp);
            ws.recycle(out.decomposition);
            dimension
        })
    });
    group.bench_function("rational", |b| {
        b.iter(|| {
            mevp_rational_krylov(&eval.c, &eval.g, h / 2.0, &v, h, &options).expect("rational")
        })
    });
    if let Some(c_lu) = &c_lu {
        group.bench_function("standard", |b| {
            b.iter(|| {
                mevp_standard_krylov(&eval.g, c_lu, &v, h, &options)
                    .map(|o| o.dimension)
                    .unwrap_or(0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lu_refactorize, bench_mevp_kernels);
criterion_main!(benches);
