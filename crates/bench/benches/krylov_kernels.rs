//! Criterion bench for the MEVP kernels (ablation A): invert vs standard vs
//! rational Krylov subspaces on the same matrices.

use criterion::{criterion_group, criterion_main, Criterion};
use exi_krylov::{mevp_invert_krylov, mevp_rational_krylov, mevp_standard_krylov, MevpOptions};
use exi_sparse::SparseLu;

fn bench_mevp_kernels(c: &mut Criterion) {
    let circuit = exi_bench::fig1_circuit(0.4).expect("circuit");
    let n = circuit.num_unknowns();
    let x = vec![0.0; n];
    let eval = circuit.evaluate(&x).expect("evaluation");
    let g_lu = SparseLu::factorize(&eval.g).expect("LU of G");
    let c_lu = SparseLu::factorize(&eval.c).ok();
    let v: Vec<f64> = (0..n).map(|i| ((i % 5) as f64 - 2.0) / 2.0).collect();
    let h = 2e-11;
    let options = MevpOptions {
        tolerance: 1e-7,
        max_dimension: 200,
        allow_unconverged: true,
        ..MevpOptions::default()
    };

    let mut group = c.benchmark_group("krylov_mevp");
    group.sample_size(10);
    group.bench_function("invert", |b| {
        b.iter(|| mevp_invert_krylov(&eval.c, &eval.g, &g_lu, &v, h, &options).expect("invert"))
    });
    group.bench_function("rational", |b| {
        b.iter(|| {
            mevp_rational_krylov(&eval.c, &eval.g, h / 2.0, &v, h, &options).expect("rational")
        })
    });
    if let Some(c_lu) = &c_lu {
        group.bench_function("standard", |b| {
            b.iter(|| {
                mevp_standard_krylov(&eval.g, c_lu, &v, h, &options)
                    .map(|o| o.dimension)
                    .unwrap_or(0)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mevp_kernels);
criterion_main!(benches);
