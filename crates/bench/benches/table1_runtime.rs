//! Criterion bench behind the Table I reproduction: BENR vs ER vs ER-C on a
//! sparsely coupled and a densely coupled case (reduced scale so the bench
//! suite stays fast; the `table1` binary runs the full-scale table).

use criterion::{criterion_group, criterion_main, Criterion};
use exi_bench::{run_case, table1_cases};
use exi_sim::Method;

fn bench_table1_cases(c: &mut Criterion) {
    let cases = table1_cases(0.25);
    let mut group = c.benchmark_group("table1_runtime");
    group.sample_size(10);
    // tc3: sparse C (small expected speedup); tc5: strongly coupled C.
    for idx in [2usize, 4usize] {
        let case = cases[idx].clone();
        for method in [Method::BackwardEuler, Method::ExponentialRosenbrock] {
            let id = format!("{}_{}", case.name, method.label());
            let case_ref = case.clone();
            group.bench_function(&id, move |b| {
                b.iter(|| {
                    let outcome = run_case(&case_ref, method, None);
                    assert!(outcome.is_completed(), "{outcome:?}");
                    outcome
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1_cases);
criterion_main!(benches);
