//! Property-based tests for the sparse linear algebra substrate.

use exi_sparse::{
    vector, CscMatrix, CsrMatrix, LuOptions, LuWorkspace, OrderingMethod, SparseLu, TripletMatrix,
};
use proptest::prelude::*;

/// Strategy: a random diagonally dominant sparse matrix (always factorizable)
/// together with a right-hand side.
fn dominant_system(max_n: usize) -> impl Strategy<Value = (CsrMatrix, Vec<f64>)> {
    (2usize..max_n).prop_flat_map(|n| {
        let entries = proptest::collection::vec((0..n, 0..n, -1.0f64..1.0f64), 0..(4 * n));
        let rhs = proptest::collection::vec(-10.0f64..10.0f64, n);
        (entries, rhs).prop_map(move |(entries, rhs)| {
            let mut t = TripletMatrix::new(n, n);
            let mut row_sum = vec![0.0f64; n];
            for (i, j, v) in entries {
                if i != j {
                    t.push(i, j, v);
                    row_sum[i] += v.abs();
                }
            }
            for (i, s) in row_sum.iter().enumerate() {
                t.push(i, i, s + 1.0);
            }
            (t.to_csr(), rhs)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LU-based solves reproduce the right-hand side: ‖Ax − b‖ small.
    #[test]
    fn lu_solve_has_small_residual((a, b) in dominant_system(40)) {
        let lu = SparseLu::factorize(&a).expect("dominant matrix factorizes");
        let x = lu.solve(&b).expect("solve");
        let r = vector::max_abs_diff(&a.mul_vec(&x), &b);
        prop_assert!(r < 1e-8, "residual {r}");
    }

    /// All fill-reducing orderings give the same solution.
    #[test]
    fn orderings_are_equivalent((a, b) in dominant_system(30)) {
        let mut solutions = Vec::new();
        for ordering in [OrderingMethod::Natural, OrderingMethod::Rcm, OrderingMethod::MinDegree] {
            let lu = SparseLu::factorize_with(&a, &LuOptions { ordering, ..LuOptions::default() })
                .expect("factorize");
            solutions.push(lu.solve(&b).expect("solve"));
        }
        for s in &solutions[1..] {
            prop_assert!(vector::max_abs_diff(&solutions[0], s) < 1e-7);
        }
    }

    /// CSR → CSC → CSR round-trips exactly.
    #[test]
    fn csr_csc_roundtrip((a, _b) in dominant_system(30)) {
        let csc = CscMatrix::from_csr(&a);
        prop_assert_eq!(csc.to_csr(), a);
    }

    /// Transposing twice is the identity, and (Aᵀ)x equals the transpose product.
    #[test]
    fn transpose_involution((a, b) in dominant_system(30)) {
        let t = a.transpose();
        prop_assert_eq!(t.transpose(), a.clone());
        let y1 = a.mul_vec_transpose(&b);
        let y2 = t.mul_vec(&b);
        prop_assert!(vector::max_abs_diff(&y1, &y2) < 1e-12);
    }

    /// Linear combination is consistent with dense arithmetic on the vector level:
    /// (αA + βA)x = (α+β)·Ax.
    #[test]
    fn linear_combination_matches_axpy((a, b) in dominant_system(30), alpha in -2.0f64..2.0, beta in -2.0f64..2.0) {
        let combo = CsrMatrix::linear_combination(alpha, &a, beta, &a).expect("combine");
        let lhs = combo.mul_vec(&b);
        let mut rhs = a.mul_vec(&b);
        vector::scale(alpha + beta, &mut rhs);
        prop_assert!(vector::max_abs_diff(&lhs, &rhs) < 1e-9);
    }

    /// Numeric refactorization on perturbed values matches a fresh
    /// factorization of the perturbed matrix: identical pivot order is still
    /// numerically viable for small perturbations, so the solves must agree
    /// to near machine precision.
    #[test]
    fn refactorize_matches_fresh_factorization(
        (a, b) in dominant_system(40),
        scale in 0.5f64..2.0,
        wobble in -0.25f64..0.25,
    ) {
        // Perturb every value (pattern untouched): a blend of global scaling
        // and an index-dependent wobble that keeps diagonal dominance.
        let perturbed_vals: Vec<f64> = a
            .values()
            .iter()
            .enumerate()
            .map(|(k, &v)| v * scale * (1.0 + wobble * (((k % 7) as f64 - 3.0) / 10.0)))
            .collect();
        let perturbed = CsrMatrix::try_from_raw(
            a.rows(),
            a.cols(),
            a.indptr().to_vec(),
            a.indices().to_vec(),
            perturbed_vals,
        )
        .expect("pattern is unchanged");

        let mut lu = SparseLu::factorize(&a).expect("pilot factorization");
        let mut ws = LuWorkspace::new();
        lu.refactorize_with(&perturbed, &mut ws).expect("refactorize");
        let fresh = SparseLu::factorize(&perturbed).expect("fresh factorization");

        let x_refac = lu.solve(&b).expect("solve via refactorization");
        let x_fresh = fresh.solve(&b).expect("solve via fresh factors");
        let diff = vector::max_abs_diff(&x_refac, &x_fresh);
        prop_assert!(diff < 1e-12, "refactorized vs fresh solve differ by {diff}");
        let residual = vector::max_abs_diff(&perturbed.mul_vec(&x_refac), &b);
        prop_assert!(residual < 1e-8, "residual {residual}");
    }

    /// Refactorizing with *unchanged* values reproduces the original solve
    /// bit for bit (same elimination, same operation order).
    #[test]
    fn refactorize_same_values_is_exact((a, b) in dominant_system(30)) {
        let fresh = SparseLu::factorize(&a).expect("factorize");
        let mut refac = fresh.clone();
        let mut ws = LuWorkspace::new();
        refac.refactorize_with(&a, &mut ws).expect("refactorize");
        let x_fresh = fresh.solve(&b).expect("solve fresh");
        let x_refac = refac.solve(&b).expect("solve refac");
        prop_assert_eq!(x_fresh, x_refac);
    }

    /// Triplet accumulation order does not matter.
    #[test]
    fn triplet_order_is_irrelevant(mut entries in proptest::collection::vec((0usize..10, 0usize..10, -5.0f64..5.0), 1..60)) {
        let build = |list: &[(usize, usize, f64)]| {
            let mut t = TripletMatrix::new(10, 10);
            for &(i, j, v) in list {
                t.push(i, j, v);
            }
            t.to_csr()
        };
        let a = build(&entries);
        entries.reverse();
        let b = build(&entries);
        // Compare entry-wise with a tolerance (summation order may differ).
        for i in 0..10 {
            for j in 0..10 {
                prop_assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-12);
            }
        }
    }
}
