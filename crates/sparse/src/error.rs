//! Error types for the sparse linear algebra substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by matrix construction, factorization and solves.
///
/// All public fallible operations in this crate return [`SparseError`] so that
/// callers (the simulator engines) can distinguish between recoverable
/// conditions (e.g. a fill budget being exceeded, which the benchmark harness
/// uses to emulate an out-of-memory condition) and genuine numerical failures
/// (structural or numerical singularity).
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A matrix dimension did not match what the operation required.
    DimensionMismatch {
        /// Human readable description of the operation that failed.
        op: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension that was actually supplied.
        found: usize,
    },
    /// An entry was addressed outside of the matrix bounds.
    IndexOutOfBounds {
        /// Row index requested.
        row: usize,
        /// Column index requested.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// The matrix is structurally or numerically singular.
    Singular {
        /// Column (in factorization order) at which no acceptable pivot was found.
        column: usize,
        /// The same column mapped back through the fill-reducing ordering to
        /// the **original** matrix column — for an MNA system this is the
        /// index of the unknown (node voltage or branch current) whose
        /// equation has no viable pivot. `None` when the factorization has no
        /// ordering to invert (dense kernels).
        unknown: Option<usize>,
    },
    /// The factorization exceeded the configured fill (memory) budget.
    FillBudgetExceeded {
        /// Number of nonzeros that the factorization reached.
        reached: usize,
        /// Configured budget.
        budget: usize,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// An iterative process failed to converge.
    ConvergenceFailure {
        /// Description of the process.
        what: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// A numeric refactorization was asked to reuse a symbolic analysis
    /// computed for a different sparsity pattern. The caller should fall back
    /// to a fresh factorization.
    PatternMismatch {
        /// Number of nonzeros the symbolic analysis expects.
        expected_nnz: usize,
        /// Number of nonzeros of the supplied matrix.
        found_nnz: usize,
    },
    /// Element growth during a pivot-order-preserving refactorization shows
    /// the frozen pivot sequence is no longer numerically viable; a fresh
    /// factorization (with re-pivoting) is required.
    UnstableRefactorization {
        /// Largest `|L|` entry observed.
        growth: f64,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { op, expected, found } => {
                write!(f, "dimension mismatch in {op}: expected {expected}, found {found}")
            }
            SparseError::IndexOutOfBounds { row, col, rows, cols } => {
                write!(f, "index ({row}, {col}) out of bounds for {rows}x{cols} matrix")
            }
            SparseError::Singular { column, unknown } => match unknown {
                Some(j) => write!(
                    f,
                    "matrix is singular (no pivot for unknown {j}; factorization column {column})"
                ),
                None => write!(f, "matrix is singular (no pivot found at column {column})"),
            },
            SparseError::FillBudgetExceeded { reached, budget } => {
                write!(f, "factorization fill {reached} exceeded budget {budget}")
            }
            SparseError::NotSquare { rows, cols } => {
                write!(f, "operation requires a square matrix, got {rows}x{cols}")
            }
            SparseError::ConvergenceFailure { what, iterations } => {
                write!(f, "{what} failed to converge after {iterations} iterations")
            }
            SparseError::PatternMismatch { expected_nnz, found_nnz } => write!(
                f,
                "refactorization pattern mismatch: symbolic analysis has {expected_nnz} nonzeros, matrix has {found_nnz}"
            ),
            SparseError::UnstableRefactorization { growth } => write!(
                f,
                "refactorization unstable with frozen pivots (element growth {growth:.3e}); re-pivot with a fresh factorization"
            ),
        }
    }
}

impl Error for SparseError {}

/// Convenient result alias used throughout the crate.
pub type SparseResult<T> = Result<T, SparseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SparseError::Singular {
            column: 3,
            unknown: None,
        };
        assert!(e.to_string().contains("singular"));
        let e = SparseError::Singular {
            column: 3,
            unknown: Some(7),
        };
        assert!(e.to_string().contains("unknown 7"), "{e}");
        let e = SparseError::FillBudgetExceeded {
            reached: 10,
            budget: 5,
        };
        assert!(e.to_string().contains("budget"));
        let e = SparseError::DimensionMismatch {
            op: "spmv",
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains("spmv"));
        let e = SparseError::IndexOutOfBounds {
            row: 9,
            col: 1,
            rows: 3,
            cols: 3,
        };
        assert!(e.to_string().contains("out of bounds"));
        let e = SparseError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("square"));
        let e = SparseError::ConvergenceFailure {
            what: "arnoldi",
            iterations: 7,
        };
        assert!(e.to_string().contains("converge"));
        let e = SparseError::PatternMismatch {
            expected_nnz: 10,
            found_nnz: 12,
        };
        assert!(e.to_string().contains("pattern mismatch"));
        let e = SparseError::UnstableRefactorization { growth: 1e12 };
        assert!(e.to_string().contains("re-pivot"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
