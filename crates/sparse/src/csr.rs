//! Compressed sparse row (CSR) matrices.
//!
//! CSR is the working format of the simulator: MNA matrices `G` and `C` are
//! assembled into CSR, matrix-vector products (the inner loop of Krylov
//! subspace construction) iterate rows contiguously, and linear combinations
//! such as `C/h + G` (needed by the backward-Euler baseline) are computed by
//! merging rows.

use crate::error::{SparseError, SparseResult};
use crate::DenseMatrix;

/// An immutable sparse matrix in compressed sparse row format.
///
/// Column indices within each row are sorted and unique.
///
/// # Examples
///
/// ```
/// use exi_sparse::{CsrMatrix, TripletMatrix};
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 2.0);
/// t.push(0, 1, -1.0);
/// t.push(1, 1, 3.0);
/// let a: CsrMatrix = t.to_csr();
/// assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![1.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty (all-zero) `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let indptr = (0..=n).collect();
        let indices = (0..n).collect();
        let values = vec![1.0; n];
        CsrMatrix {
            rows: n,
            cols: n,
            indptr,
            indices,
            values,
        }
    }

    /// Builds a CSR matrix from raw triplets, summing duplicates and dropping
    /// entries that sum to exactly zero.
    ///
    /// # Panics
    ///
    /// Panics if any triplet index is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        // Count entries per row (including duplicates first).
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r}, {c}) out of bounds");
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        // Bucket triplets by row.
        let mut col_buf = vec![0usize; triplets.len()];
        let mut val_buf = vec![0.0f64; triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            let pos = next[r];
            col_buf[pos] = c;
            val_buf[pos] = v;
            next[r] += 1;
        }
        // Sort each row by column and accumulate duplicates.
        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        for r in 0..rows {
            let start = counts[r];
            let end = counts[r + 1];
            let mut row: Vec<(usize, f64)> =
                (start..end).map(|k| (col_buf[k], val_buf[k])).collect();
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let col = row[i].0;
                let mut sum = 0.0;
                while i < row.len() && row[i].0 == col {
                    sum += row[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    indices.push(col);
                    values.push(sum);
                }
            }
            indptr[r + 1] = indices.len();
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Builds a CSR matrix directly from its raw components.
    ///
    /// # Errors
    ///
    /// Returns an error if the structure is inconsistent (wrong `indptr`
    /// length, unsorted or out-of-range column indices, value/index length
    /// mismatch).
    pub fn try_from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> SparseResult<Self> {
        if indptr.len() != rows + 1 {
            return Err(SparseError::DimensionMismatch {
                op: "csr indptr length",
                expected: rows + 1,
                found: indptr.len(),
            });
        }
        if indices.len() != values.len() {
            return Err(SparseError::DimensionMismatch {
                op: "csr indices/values length",
                expected: indices.len(),
                found: values.len(),
            });
        }
        if *indptr.last().unwrap_or(&0) != indices.len() {
            return Err(SparseError::DimensionMismatch {
                op: "csr indptr terminator",
                expected: indices.len(),
                found: *indptr.last().unwrap_or(&0),
            });
        }
        for r in 0..rows {
            if indptr[r] > indptr[r + 1] {
                return Err(SparseError::DimensionMismatch {
                    op: "csr indptr monotonicity",
                    expected: indptr[r],
                    found: indptr[r + 1],
                });
            }
            let mut prev: Option<usize> = None;
            for &c in &indices[indptr[r]..indptr[r + 1]] {
                if c >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c,
                        rows,
                        cols,
                    });
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(SparseError::DimensionMismatch {
                            op: "csr sorted columns",
                            expected: p + 1,
                            found: c,
                        });
                    }
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix directly from its raw components without
    /// validating them.
    ///
    /// This is the reassembly half of the allocation-free stamping path: a
    /// caller that obtained buffers via [`CsrMatrix::take_parts`] refills
    /// them and hands them back here, so the steady-state hot loop performs
    /// no allocation and no structural re-validation. The caller must uphold
    /// the CSR invariants checked by [`CsrMatrix::try_from_raw`] (correct
    /// `indptr` length and terminator, sorted unique in-range column indices
    /// per row); they are `debug_assert`ed, and a violating matrix makes
    /// later queries return wrong results or panic.
    pub fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1, "csr indptr length");
        debug_assert_eq!(indices.len(), values.len(), "csr indices/values length");
        debug_assert_eq!(
            *indptr.last().unwrap_or(&0),
            indices.len(),
            "csr indptr terminator"
        );
        #[cfg(debug_assertions)]
        {
            for r in 0..rows {
                debug_assert!(indptr[r] <= indptr[r + 1], "csr indptr monotonicity");
                let row = &indices[indptr[r]..indptr[r + 1]];
                debug_assert!(
                    row.windows(2).all(|w| w[0] < w[1]),
                    "csr columns sorted and unique in row {r}"
                );
                debug_assert!(row.iter().all(|&c| c < cols), "csr column range in row {r}");
            }
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Takes the raw `(indptr, indices, values)` buffers out of the matrix
    /// (previous contents included — clear before refilling), leaving it
    /// **dismantled**: a `0 × 0` placeholder whose `indptr` is empty rather
    /// than the canonical `[0]`. The dismantled state answers size queries
    /// (`rows`/`cols`/`nnz`) and compares unequal to any real matrix, but
    /// must not be used for element access; callers are expected to
    /// overwrite it via [`CsrMatrix::from_parts_unchecked`] right away.
    /// Deliberately no allocation happens on either side of the round trip —
    /// this is the storage-recycling half of the stamping-plan hot path, and
    /// the buffers keep their capacity.
    pub fn take_parts(&mut self) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        self.rows = 0;
        self.cols = 0;
        (
            std::mem::take(&mut self.indptr),
            std::mem::take(&mut self.indices),
            std::mem::take(&mut self.values),
        )
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (`rows + 1` entries).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index array.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the value array.
    ///
    /// The sparsity structure (`indptr`/`indices`) is immutable; rewriting
    /// values in place is exactly what the pattern-locked stamping path does
    /// per evaluation.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Returns the stored columns and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.rows, "row index out of bounds");
        let s = self.indptr[i];
        let e = self.indptr[i + 1];
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Returns the value at `(i, j)`, or `0.0` if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i >= self.rows || j >= self.cols {
            return 0.0;
        }
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix - dense vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Sparse matrix - dense vector product written into a caller-provided
    /// buffer (`y = A x`), avoiding an allocation in hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec: x dimension mismatch");
        assert_eq!(y.len(), self.rows, "mul_vec: y dimension mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let s = self.indptr[i];
            let e = self.indptr[i + 1];
            let mut acc = 0.0;
            for k in s..e {
                acc += self.values[k] * x[self.indices[k]];
            }
            *yi = acc;
        }
    }

    /// Sparse matrix - dense vector product with 4-wide accumulator
    /// chunking (`y = A x`).
    ///
    /// Splits each row's dot product over four independent accumulators so
    /// the compiler can keep multiple FMA chains in flight, then reduces
    /// them pairwise. **This reassociates the floating-point sum**: results
    /// can differ from [`CsrMatrix::mul_vec_into`] in the last bits. The
    /// engines' hot path deliberately keeps the sequential kernel — the
    /// golden-waveform suite pins its summation order — so this variant is
    /// for throughput-first consumers that tolerate reassociation; the
    /// `krylov_kernels` bench `spmv` group compares the two.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn mul_vec_into_unrolled(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec: x dimension mismatch");
        assert_eq!(y.len(), self.rows, "mul_vec: y dimension mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let s = self.indptr[i];
            let e = self.indptr[i + 1];
            let vals = &self.values[s..e];
            let cols = &self.indices[s..e];
            let mut acc = [0.0f64; 4];
            let mut chunks_v = vals.chunks_exact(4);
            let mut chunks_c = cols.chunks_exact(4);
            for (v4, c4) in (&mut chunks_v).zip(&mut chunks_c) {
                acc[0] += v4[0] * x[c4[0]];
                acc[1] += v4[1] * x[c4[1]];
                acc[2] += v4[2] * x[c4[2]];
                acc[3] += v4[3] * x[c4[3]];
            }
            let mut tail = 0.0;
            for (v, c) in chunks_v.remainder().iter().zip(chunks_c.remainder()) {
                tail += v * x[*c];
            }
            *yi = (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail;
        }
    }

    /// Transpose-vector product `y = Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn mul_vec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "mul_vec_transpose: dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let s = self.indptr[i];
            let e = self.indptr[i + 1];
            for k in s..e {
                y[self.indices[k]] += self.values[k] * xi;
            }
        }
        y
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> CsrMatrix {
        // Prefix-sum the per-column counts to obtain the transpose's row pointers.
        let mut indptr = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            indptr[c + 1] += 1;
        }
        for j in 0..self.cols {
            indptr[j + 1] += indptr[j];
        }
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = indptr.clone();
        for i in 0..self.rows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let c = self.indices[k];
                let pos = next[c];
                indices[pos] = i;
                values[pos] = self.values[k];
                next[c] += 1;
            }
        }
        // Rows of the transpose are filled in increasing original-row order,
        // so the column indices of each transposed row are already sorted.
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Returns `alpha * self` as a new matrix.
    pub fn scaled(&self, alpha: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in out.values.iter_mut() {
            *v *= alpha;
        }
        out
    }

    /// Computes the linear combination `alpha * A + beta * B`.
    ///
    /// This is the operation the backward-Euler baseline uses to form
    /// `C/h + G` at every accepted step size.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if the shapes differ.
    pub fn linear_combination(
        alpha: f64,
        a: &CsrMatrix,
        beta: f64,
        b: &CsrMatrix,
    ) -> SparseResult<CsrMatrix> {
        let mut out = CsrMatrix::zeros(0, 0);
        Self::linear_combination_into(alpha, a, beta, b, &mut out)?;
        Ok(out)
    }

    /// As [`CsrMatrix::linear_combination`], rebuilding the result inside
    /// `out`'s existing buffers — the allocation-free form the implicit
    /// engines use to re-form `C/h + θ·G` at every Newton iteration. `out`'s
    /// previous contents are discarded; its buffer capacity is reused, so a
    /// steady-state caller allocates nothing. The merge runs the exact same
    /// row-merge loop as the allocating form, producing bit-identical
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if the shapes differ (and
    /// leaves `out` empty).
    pub fn linear_combination_into(
        alpha: f64,
        a: &CsrMatrix,
        beta: f64,
        b: &CsrMatrix,
        out: &mut CsrMatrix,
    ) -> SparseResult<()> {
        let (mut indptr, mut indices, mut values) = out.take_parts();
        if a.rows != b.rows || a.cols != b.cols {
            return Err(SparseError::DimensionMismatch {
                op: "linear_combination shape",
                expected: a.rows,
                found: b.rows,
            });
        }
        let rows = a.rows;
        indptr.clear();
        indptr.resize(rows + 1, 0);
        indices.clear();
        indices.reserve(a.nnz() + b.nnz());
        values.clear();
        values.reserve(a.nnz() + b.nnz());
        for i in 0..rows {
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() || q < bc.len() {
                let (col, val) = if q >= bc.len() || (p < ac.len() && ac[p] < bc[q]) {
                    let out = (ac[p], alpha * av[p]);
                    p += 1;
                    out
                } else if p >= ac.len() || bc[q] < ac[p] {
                    let out = (bc[q], beta * bv[q]);
                    q += 1;
                    out
                } else {
                    let out = (ac[p], alpha * av[p] + beta * bv[q]);
                    p += 1;
                    q += 1;
                    out
                };
                if val != 0.0 {
                    indices.push(col);
                    values.push(val);
                }
            }
            indptr[i + 1] = indices.len();
        }
        *out = CsrMatrix::from_parts_unchecked(rows, a.cols, indptr, indices, values);
        Ok(())
    }

    /// Returns the main diagonal as a dense vector.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Converts to a dense matrix (intended for tests and tiny matrices).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals.iter()) {
                d.set(i, *c, *v);
            }
        }
        d
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..self.rows {
            let (_, vals) = self.row(i);
            let s: f64 = vals.iter().map(|v| v.abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let s = self.indptr[i];
            let e = self.indptr[i + 1];
            (s..e).map(move |k| (i, self.indices[k], self.values[k]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn sample() -> CsrMatrix {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 4.0);
        t.push(0, 2, 1.0);
        t.push(1, 1, 5.0);
        t.push(2, 0, 2.0);
        t.push(2, 2, 3.0);
        t.to_csr()
    }

    #[test]
    fn structure_and_access() {
        let a = sample();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 2), 1.0);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.diagonal(), vec![4.0, 5.0, 3.0]);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.mul_vec(&x);
        let d = a.to_dense();
        let yd = d.matvec(&x);
        for (u, v) in y.iter().zip(yd.iter()) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        let t = a.transpose();
        assert_eq!(t.get(2, 0), 1.0);
        assert_eq!(t.get(0, 2), 2.0);
        let tt = t.transpose();
        assert_eq!(tt, a);
    }

    #[test]
    fn transpose_vec_matches_transpose_mul() {
        let a = sample();
        let x = vec![1.0, -1.0, 2.0];
        let y1 = a.mul_vec_transpose(&x);
        let y2 = a.transpose().mul_vec(&x);
        for (u, v) in y1.iter().zip(y2.iter()) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn linear_combination_forms_c_over_h_plus_g() {
        let g = sample();
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 2, 2.0);
        let c = t.to_csr();
        let h = 0.5;
        let m = CsrMatrix::linear_combination(1.0 / h, &c, 1.0, &g).unwrap();
        assert_eq!(m.get(0, 0), 4.0 + 2.0);
        assert_eq!(m.get(1, 2), 4.0);
        assert_eq!(m.get(1, 1), 5.0);
    }

    #[test]
    fn linear_combination_shape_mismatch() {
        let a = CsrMatrix::zeros(2, 2);
        let b = CsrMatrix::zeros(3, 3);
        assert!(CsrMatrix::linear_combination(1.0, &a, 1.0, &b).is_err());
    }

    #[test]
    fn identity_and_zeros() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.mul_vec(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
        let z = CsrMatrix::zeros(2, 5);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.mul_vec(&[1.0; 5]), vec![0.0, 0.0]);
    }

    #[test]
    fn try_from_raw_validates() {
        // Valid.
        let ok = CsrMatrix::try_from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert!(ok.is_ok());
        // Bad indptr length.
        assert!(CsrMatrix::try_from_raw(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_err());
        // Unsorted columns.
        assert!(CsrMatrix::try_from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // Column out of range.
        assert!(CsrMatrix::try_from_raw(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
    }

    #[test]
    fn iter_yields_all_entries() {
        let a = sample();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries.len(), 5);
        assert!(entries.contains(&(2, 2, 3.0)));
    }

    #[test]
    fn norm_inf_is_max_row_sum() {
        let a = sample();
        assert_eq!(a.norm_inf(), 5.0);
    }

    #[test]
    fn take_parts_round_trips_and_reuses_buffers() {
        let mut a = sample();
        let (expected_ip, expected_ix, expected_v) = (
            a.indptr().to_vec(),
            a.indices().to_vec(),
            a.values().to_vec(),
        );
        let (ip, ix, v) = a.take_parts();
        // The emptied matrix is a valid 0x0.
        assert_eq!(a.rows(), 0);
        assert_eq!(a.nnz(), 0);
        assert_eq!(ip, expected_ip);
        let cap = ix.capacity();
        let b = CsrMatrix::from_parts_unchecked(3, 3, ip, ix, v);
        assert_eq!(b, sample());
        assert_eq!(b.indices().to_vec(), expected_ix);
        assert_eq!(b.values().to_vec(), expected_v);
        assert!(b.indices.capacity() >= cap);
    }

    #[test]
    fn values_mut_rewrites_in_place() {
        let mut a = sample();
        for v in a.values_mut() {
            *v *= 2.0;
        }
        assert_eq!(a.get(0, 0), 8.0);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn linear_combination_into_matches_allocating_form_bitwise() {
        let g = sample();
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.5);
        t.push(1, 2, 2.0);
        t.push(2, 1, -4.0);
        let c = t.to_csr();
        let fresh = CsrMatrix::linear_combination(1.0 / 0.3, &c, 0.5, &g).unwrap();
        // Seed the reusable buffer with unrelated garbage structure.
        let mut out = sample();
        CsrMatrix::linear_combination_into(1.0 / 0.3, &c, 0.5, &g, &mut out).unwrap();
        assert_eq!(out.indptr(), fresh.indptr());
        assert_eq!(out.indices(), fresh.indices());
        for (a, b) in out.values().iter().zip(fresh.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Shape mismatch errors and empties the output.
        let bad = CsrMatrix::zeros(2, 2);
        assert!(CsrMatrix::linear_combination_into(1.0, &bad, 1.0, &g, &mut out).is_err());
        assert_eq!(out.rows(), 0);
    }

    #[test]
    fn unrolled_spmv_matches_scalar_within_roundoff() {
        // A wider matrix so rows exercise both the 4-chunks and the tail.
        let mut t = TripletMatrix::new(6, 11);
        let mut v = 0.37;
        for i in 0..6 {
            for j in 0..11 {
                if (i + j) % 2 == 0 {
                    t.push(i, j, v);
                    v = -1.1 * v + 0.21;
                }
            }
        }
        let a = t.to_csr();
        let x: Vec<f64> = (0..11).map(|k| (k as f64 - 4.3) * 0.77).collect();
        let mut y_scalar = vec![0.0; 6];
        let mut y_unrolled = vec![0.0; 6];
        a.mul_vec_into(&x, &mut y_scalar);
        a.mul_vec_into_unrolled(&x, &mut y_unrolled);
        for (s, u) in y_scalar.iter().zip(&y_unrolled) {
            assert!((s - u).abs() <= 1e-12 * s.abs().max(1.0), "{s} vs {u}");
        }
    }
}
