//! Permutations of `{0, …, n-1}` used by fill-reducing orderings and pivoting.

use crate::error::{SparseError, SparseResult};

/// A permutation `p` of `{0, …, n-1}`, stored together with its inverse.
///
/// Convention: `p.map(i)` is the *new* position of original index `i`
/// (i.e. `new[p.map(i)] = old[i]`), and `p.unmap(k)` is the original index
/// placed at new position `k`.
///
/// # Examples
///
/// ```
/// use exi_sparse::Permutation;
///
/// let p = Permutation::from_order(&[2, 0, 1]).unwrap(); // new order: old 2, old 0, old 1
/// assert_eq!(p.unmap(0), 2);
/// assert_eq!(p.map(2), 0);
/// let v = p.apply(&[10.0, 20.0, 30.0]);
/// assert_eq!(v, vec![30.0, 10.0, 20.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `order[k]` = original index placed at new position `k`.
    order: Vec<usize>,
    /// `position[i]` = new position of original index `i`.
    position: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        let order: Vec<usize> = (0..n).collect();
        Permutation {
            position: order.clone(),
            order,
        }
    }

    /// Builds a permutation from an ordering: `order[k]` is the original index
    /// that should be placed at new position `k`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `order` is not a
    /// permutation of `0..n`.
    pub fn from_order(order: &[usize]) -> SparseResult<Self> {
        let n = order.len();
        let mut position = vec![usize::MAX; n];
        for (k, &i) in order.iter().enumerate() {
            if i >= n || position[i] != usize::MAX {
                return Err(SparseError::DimensionMismatch {
                    op: "permutation order",
                    expected: n,
                    found: i,
                });
            }
            position[i] = k;
        }
        Ok(Permutation {
            order: order.to_vec(),
            position,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// New position of original index `i`.
    #[inline]
    pub fn map(&self, i: usize) -> usize {
        self.position[i]
    }

    /// Original index at new position `k`.
    #[inline]
    pub fn unmap(&self, k: usize) -> usize {
        self.order[k]
    }

    /// The ordering slice (`order[k]` = original index at new position `k`).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Applies the permutation to a vector: `out[k] = v[order[k]]`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.len()`.
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.len(), "permutation apply: length mismatch");
        self.order.iter().map(|&i| v[i]).collect()
    }

    /// Applies the inverse permutation: `out[order[k]] = v[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.len()`.
    pub fn apply_inverse(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.len(),
            "permutation apply_inverse: length mismatch"
        );
        let mut out = vec![0.0; v.len()];
        for (k, &i) in self.order.iter().enumerate() {
            out[i] = v[k];
        }
        out
    }

    /// Returns the inverse permutation as a new [`Permutation`].
    pub fn inverse(&self) -> Permutation {
        Permutation {
            order: self.position.clone(),
            position: self.order.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_to_self() {
        let p = Permutation::identity(4);
        for i in 0..4 {
            assert_eq!(p.map(i), i);
            assert_eq!(p.unmap(i), i);
        }
        assert_eq!(p.apply(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn apply_and_inverse_roundtrip() {
        let p = Permutation::from_order(&[2, 0, 3, 1]).unwrap();
        let v = vec![10.0, 20.0, 30.0, 40.0];
        let w = p.apply(&v);
        assert_eq!(w, vec![30.0, 10.0, 40.0, 20.0]);
        let back = p.apply_inverse(&w);
        assert_eq!(back, v);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_order(&[1, 2, 0]).unwrap();
        let inv = p.inverse();
        for i in 0..3 {
            assert_eq!(inv.map(p.map(i)), i);
        }
    }

    #[test]
    fn invalid_orders_rejected() {
        assert!(Permutation::from_order(&[0, 0, 1]).is_err());
        assert!(Permutation::from_order(&[0, 5]).is_err());
        assert!(Permutation::from_order(&[]).unwrap().is_empty());
    }
}
