//! Coordinate (triplet) format sparse matrix builder.
//!
//! MNA stamping naturally produces `(row, col, value)` triplets with many
//! duplicates (each device stamps a handful of entries, several devices touch
//! the same node pair). [`TripletMatrix`] collects them and compresses into
//! [`CsrMatrix`] form, summing duplicates.

use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};

/// Sparse matrix builder in coordinate (COO / triplet) form.
///
/// # Examples
///
/// ```
/// use exi_sparse::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicates are summed during compression
/// t.push(1, 1, 5.0);
/// let a = t.to_csr();
/// assert_eq!(a.get(0, 0), 3.0);
/// assert_eq!(a.nnz(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with pre-allocated capacity for `cap` triplets.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (uncompressed) triplets currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`. Zero values are ignored.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds; stamping code controls its
    /// indices and an out-of-range stamp is a programming error.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Fallible variant of [`push`](Self::push) for user-supplied data.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] when the indices are outside
    /// the matrix dimensions.
    pub fn try_push(&mut self, row: usize, col: usize, value: f64) -> SparseResult<()> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
        Ok(())
    }

    /// Iterates over the raw triplets.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.entries.iter()
    }

    /// Removes all triplets, keeping the allocation and dimensions.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Compresses into CSR format, summing duplicate entries and dropping
    /// entries that cancel to exactly zero.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.rows, self.cols, &self.entries)
    }
}

impl Extend<(usize, usize, f64)> for TripletMatrix {
    fn extend<T: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_compress() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, -1.0);
        t.push(2, 2, 0.0); // ignored
        assert_eq!(t.len(), 4);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(1, 1), 5.0);
        assert_eq!(a.get(2, 0), -1.0);
        assert_eq!(a.get(2, 2), 0.0);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 4.0);
        t.push(0, 1, -4.0);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn try_push_bounds() {
        let mut t = TripletMatrix::new(2, 2);
        assert!(t.try_push(0, 0, 1.0).is_ok());
        assert!(matches!(
            t.try_push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_panics_out_of_bounds() {
        let mut t = TripletMatrix::new(1, 1);
        t.push(1, 0, 1.0);
    }

    #[test]
    fn extend_and_clear() {
        let mut t = TripletMatrix::with_capacity(2, 2, 4);
        t.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(t.len(), 2);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.rows(), 2);
    }
}
