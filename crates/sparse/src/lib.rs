//! # exi-sparse
//!
//! Sparse and small dense linear algebra substrate for the `exi-sim`
//! exponential-integrator circuit simulator (a reproduction of Zhuang et al.,
//! *"An Algorithmic Framework for Efficient Large-Scale Circuit Simulation
//! Using Exponential Integrators"*, DAC 2015).
//!
//! The crate provides exactly the kernels the simulator needs and nothing
//! more:
//!
//! * [`TripletMatrix`] — coordinate-format builder used by MNA stamping.
//! * [`CsrMatrix`] / [`CscMatrix`] — compressed sparse row/column storage,
//!   sparse matrix–vector products and linear combinations such as `C/h + G`.
//! * [`SparseLu`] — left-looking Gilbert–Peierls sparse LU with threshold
//!   partial pivoting, fill-reducing orderings ([`ordering`]) and an optional
//!   fill budget (used to emulate out-of-memory failures of the baseline).
//!   Its symbolic analysis ([`SymbolicLu`]) is cached so value-only updates
//!   go through the cheap numeric [`SparseLu::refactorize`], and
//!   [`SparseLu::solve_into`] + [`LuWorkspace`] make hot-loop triangular
//!   solves allocation-free.
//! * [`lanes`] — batched **value-lane** kernels: [`LaneFactors`] carries `K`
//!   numeric factors over one shared [`SymbolicLu`] in lane-major
//!   ([`LaneVec`]) storage, refactorizing and solving all lanes in a single
//!   pass over the factor pattern, each lane bit-identical to its scalar run.
//! * [`SymbolicCache`] — a thread-shared, blocking cache of symbolic
//!   analyses keyed by (pattern, ordering), so concurrent solver sessions on
//!   the same topology perform exactly one symbolic analysis total
//!   ([`SparseLu::from_symbolic`] derives per-thread numeric factors).
//! * [`DenseMatrix`] — small dense matrices for the projected Hessenberg
//!   systems produced by Krylov subspace methods.
//! * [`vector`] — BLAS-1 style helpers on `&[f64]`.
//!
//! # Examples
//!
//! Assemble a small conductance matrix, factorize it and solve:
//!
//! ```
//! use exi_sparse::{SparseLu, TripletMatrix};
//!
//! # fn main() -> Result<(), exi_sparse::SparseError> {
//! let mut g = TripletMatrix::new(2, 2);
//! g.push(0, 0, 2.0);
//! g.push(0, 1, -1.0);
//! g.push(1, 0, -1.0);
//! g.push(1, 1, 2.0);
//! let g = g.to_csr();
//! let lu = SparseLu::factorize(&g)?;
//! let x = lu.solve(&[1.0, 0.0])?;
//! assert!((x[0] - 2.0 / 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod lanes;
pub mod lu;
pub mod ordering;
pub mod permutation;
pub mod shared;
pub mod vector;

pub use coo::TripletMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{SparseError, SparseResult};
pub use lanes::{LaneBackend, LaneFactors, LaneVec, LaneWorkspace, ScalarLanes, LANE_DETACHED};
pub use lu::{factor_fill, solve_sparse, LuOptions, LuWorkspace, SparseLu, SymbolicLu};
pub use ordering::OrderingMethod;
pub use permutation::Permutation;
pub use shared::{pattern_fingerprint, CacheStats, CacheWait, FactorSource, SymbolicCache};
