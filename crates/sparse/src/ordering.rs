//! Fill-reducing orderings for sparse LU factorization.
//!
//! The paper's argument hinges on the fill-in of LU factors: factorizing the
//! conductance matrix `G` produces far fewer nonzeros than factorizing the
//! coupled capacitance matrix `C` or the backward-Euler matrix `C/h + G`
//! (Fig. 1). To make that comparison meaningful we apply the same
//! fill-reducing ordering to every factorization. Two classic orderings are
//! provided: reverse Cuthill–McKee (bandwidth reduction) and a greedy minimum
//! degree.

use std::collections::VecDeque;

use crate::csr::CsrMatrix;
use crate::permutation::Permutation;

/// Fill-reducing ordering strategy applied before LU factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OrderingMethod {
    /// Keep the natural (netlist) ordering.
    Natural,
    /// Reverse Cuthill–McKee bandwidth-reducing ordering.
    #[default]
    Rcm,
    /// Greedy minimum-degree ordering on the symmetrized pattern.
    MinDegree,
}

/// Computes a fill-reducing column ordering for `a` using `method`.
///
/// The pattern of `a + aᵀ` (without the diagonal) is used, so unsymmetric
/// matrices such as MNA conductance matrices are handled.
///
/// # Examples
///
/// ```
/// use exi_sparse::{CsrMatrix, TripletMatrix, ordering::{compute_ordering, OrderingMethod}};
///
/// let mut t = TripletMatrix::new(3, 3);
/// t.push(0, 0, 1.0);
/// t.push(0, 2, 1.0);
/// t.push(2, 0, 1.0);
/// t.push(1, 1, 1.0);
/// t.push(2, 2, 1.0);
/// let a = t.to_csr();
/// let p = compute_ordering(&a, OrderingMethod::Rcm);
/// assert_eq!(p.len(), 3);
/// ```
pub fn compute_ordering(a: &CsrMatrix, method: OrderingMethod) -> Permutation {
    let n = a.rows();
    match method {
        OrderingMethod::Natural => Permutation::identity(n),
        OrderingMethod::Rcm => reverse_cuthill_mckee(&symmetric_adjacency(a)),
        OrderingMethod::MinDegree => minimum_degree(&symmetric_adjacency(a)),
    }
}

/// Builds the adjacency lists of the symmetrized pattern of `a` (no diagonal,
/// no duplicates, sorted).
fn symmetric_adjacency(a: &CsrMatrix) -> Vec<Vec<usize>> {
    let n = a.rows();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, j, _) in a.iter() {
        if i != j && i < n && j < n {
            adj[i].push(j);
            adj[j].push(i);
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }
    adj
}

/// Reverse Cuthill–McKee ordering on an adjacency structure.
fn reverse_cuthill_mckee(adj: &[Vec<usize>]) -> Permutation {
    let n = adj.len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // Process every connected component, starting each from a low-degree node.
    let mut nodes_by_degree: Vec<usize> = (0..n).collect();
    nodes_by_degree.sort_by_key(|&i| adj[i].len());
    for &start in &nodes_by_degree {
        if visited[start] {
            continue;
        }
        let root = pseudo_peripheral(adj, start, &visited);
        let mut queue = VecDeque::new();
        visited[root] = true;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut nbrs: Vec<usize> = adj[u].iter().copied().filter(|&v| !visited[v]).collect();
            nbrs.sort_by_key(|&v| adj[v].len());
            for v in nbrs {
                if !visited[v] {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    order.reverse();
    Permutation::from_order(&order).expect("rcm produced a valid permutation")
}

/// Finds a pseudo-peripheral node of the component containing `start` by
/// repeated BFS to the farthest lowest-degree node.
fn pseudo_peripheral(adj: &[Vec<usize>], start: usize, visited: &[bool]) -> usize {
    let mut current = start;
    let mut last_ecc = 0usize;
    for _ in 0..4 {
        let (node, ecc) = bfs_farthest(adj, current, visited);
        if ecc <= last_ecc {
            break;
        }
        last_ecc = ecc;
        current = node;
    }
    current
}

/// BFS returning the farthest node (ties broken by smaller degree) and its
/// distance, ignoring already-visited nodes.
fn bfs_farthest(adj: &[Vec<usize>], start: usize, visited: &[bool]) -> (usize, usize) {
    let n = adj.len();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    let mut best = (start, 0usize);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if visited[v] || dist[v] != usize::MAX {
                continue;
            }
            dist[v] = dist[u] + 1;
            queue.push_back(v);
            let better =
                dist[v] > best.1 || (dist[v] == best.1 && adj[v].len() < adj[best.0].len());
            if better {
                best = (v, dist[v]);
            }
        }
    }
    best
}

/// Greedy minimum-degree ordering with explicit fill (clique) updates.
///
/// This is the textbook algorithm, not a quotient-graph AMD; it is adequate
/// for the matrix sizes exercised in the benchmarks and keeps the code
/// auditable.
fn minimum_degree(adj: &[Vec<usize>]) -> Permutation {
    let n = adj.len();
    let mut neighbors: Vec<std::collections::BTreeSet<usize>> =
        adj.iter().map(|l| l.iter().copied().collect()).collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Pick the remaining node with the fewest remaining neighbors.
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && neighbors[v].len() < best_deg {
                best = v;
                best_deg = neighbors[v].len();
            }
        }
        let v = best;
        eliminated[v] = true;
        order.push(v);
        // Form the elimination clique among v's remaining neighbors.
        let nbrs: Vec<usize> = neighbors[v]
            .iter()
            .copied()
            .filter(|&u| !eliminated[u])
            .collect();
        for (idx, &a) in nbrs.iter().enumerate() {
            neighbors[a].remove(&v);
            for &b in nbrs.iter().skip(idx + 1) {
                neighbors[a].insert(b);
                neighbors[b].insert(a);
            }
        }
        neighbors[v].clear();
    }
    Permutation::from_order(&order).expect("minimum degree produced a valid permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    /// A path graph 0-1-2-3-4 as a tridiagonal matrix.
    fn path_matrix(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    /// Star graph: node 0 connected to all others.
    fn star_matrix(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        for i in 1..n {
            t.push(0, i, -1.0);
            t.push(i, 0, -1.0);
        }
        t.to_csr()
    }

    fn is_permutation(p: &Permutation, n: usize) {
        assert_eq!(p.len(), n);
        let mut seen = vec![false; n];
        for k in 0..n {
            let i = p.unmap(k);
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn natural_is_identity() {
        let a = path_matrix(5);
        let p = compute_ordering(&a, OrderingMethod::Natural);
        for i in 0..5 {
            assert_eq!(p.map(i), i);
        }
    }

    #[test]
    fn rcm_returns_valid_permutation() {
        for n in [1usize, 2, 5, 17] {
            let a = path_matrix(n);
            let p = compute_ordering(&a, OrderingMethod::Rcm);
            is_permutation(&p, n);
        }
    }

    #[test]
    fn min_degree_orders_star_center_last() {
        // In a star graph the hub has the largest degree, so minimum degree
        // eliminates leaves before the hub; once only the hub and one leaf
        // remain their degrees tie, so the hub lands in one of the last two
        // positions.
        let a = star_matrix(6);
        let p = compute_ordering(&a, OrderingMethod::MinDegree);
        is_permutation(&p, 6);
        assert!(
            p.map(0) >= 4,
            "hub should be eliminated near the end, got {}",
            p.map(0)
        );
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Two disjoint 2-node components.
        let mut t = TripletMatrix::new(4, 4);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(2, 3, 1.0);
        t.push(3, 2, 1.0);
        for i in 0..4 {
            t.push(i, i, 1.0);
        }
        let p = compute_ordering(&t.to_csr(), OrderingMethod::Rcm);
        is_permutation(&p, 4);
    }

    #[test]
    fn orderings_on_empty_and_diagonal_matrices() {
        let empty = CsrMatrix::zeros(0, 0);
        assert_eq!(compute_ordering(&empty, OrderingMethod::Rcm).len(), 0);
        let diag = CsrMatrix::identity(3);
        let p = compute_ordering(&diag, OrderingMethod::MinDegree);
        is_permutation(&p, 3);
    }
}
