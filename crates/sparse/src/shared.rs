//! A thread-shared cache of symbolic LU analyses keyed by (sparsity pattern,
//! ordering).
//!
//! A transient run amortizes one symbolic analysis across all of its
//! factorizations; a [`crate::SparseLu`] session extends that across runs on
//! one topology. [`SymbolicCache`] lifts the amortization one more level:
//! across **independent solver sessions running concurrently on different
//! threads**. A fleet of parameter-sweep or Monte-Carlo jobs over the same
//! matrix pattern performs exactly **one** symbolic analysis total — the
//! first session to factorize a pattern publishes its [`SymbolicLu`] behind
//! an [`Arc`], and every other session (on any thread) derives its numeric
//! factors from it with [`SparseLu::from_symbolic`], paying only for the
//! numeric elimination.
//!
//! Concurrency contract:
//!
//! * `factorize` is safe to call from any number of threads.
//! * While a pattern's pilot analysis is in flight, other threads requesting
//!   the same pattern **block** until it is published (instead of redundantly
//!   analyzing it themselves) — this is what makes "exactly one analysis per
//!   pattern" a guarantee rather than a fast path.
//! * If the pilot fails (singular matrix, fill budget), the slot is released
//!   and one of the waiters retries as the new pilot — an unlucky pilot never
//!   wedges the cache.
//!
//! Patterns are keyed by a 64-bit fingerprint of `(n, indptr, indices)` plus
//! the requested [`OrderingMethod`]; a (vanishingly unlikely) fingerprint
//! collision is detected by an exact pattern comparison and degrades to an
//! unshared fresh factorization, never to a wrong result.
//!
//! # Residency
//!
//! By default the cache is unbounded (the batch-sweep case: a plan's worth of
//! patterns, then the cache is dropped). A **resident** process — the
//! `exi-serve` daemon keeping a fleet-wide warm cache across arbitrary client
//! traffic — must bound it: [`SymbolicCache::with_capacity`] caps the number
//! of published analyses and evicts the least-recently-used entry when a new
//! pattern would exceed the cap. Hit/miss/eviction counters are snapshotted
//! by [`SymbolicCache::stats`] in the [`CacheStats`] style of
//! `exi_sim::RunStats`, so a long-lived server can watch its hit rate and
//! working-set churn.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::csr::CsrMatrix;
use crate::error::SparseResult;
use crate::lu::{LuOptions, LuWorkspace, SparseLu, SymbolicLu};
use crate::ordering::OrderingMethod;

/// How a [`SymbolicCache::factorize`] call obtained its factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorSource {
    /// The call ran a full symbolic analysis (and published it to the cache
    /// when it was the pattern's pilot).
    Analyzed,
    /// The call reused a cached analysis and performed numeric-only work.
    Shared,
}

/// How long one [`SymbolicCache::factorize_timed`] call spent blocked on the
/// cache instead of doing numeric work: lock acquisitions plus any condvar
/// waits on another thread's in-flight pilot analysis.
///
/// Callers fold this into their own accounting (`exi_sim::RunStats` splits
/// per-job runtime into active solver time and cache wait with it) so a
/// contended cache shows up as *wait*, never misattributed as solve time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheWait {
    /// Times the call blocked on an in-flight pilot slot (one per condvar
    /// wait; zero whenever the pattern was already published or this call
    /// was the pilot).
    pub events: usize,
    /// Total time blocked: lock acquisition plus in-flight condvar waits.
    pub blocked: Duration,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PatternKey {
    fingerprint: u64,
    ordering: OrderingMethod,
}

#[derive(Debug)]
enum Slot {
    /// A pilot factorization for this pattern is in flight on some thread.
    InFlight,
    /// The published analysis, stamped with the tick of its last use for LRU
    /// eviction.
    Ready {
        symbolic: Arc<SymbolicLu>,
        last_used: u64,
    },
}

/// A point-in-time snapshot of a shared cache's residency counters
/// (`exi_sim::RunStats` style: plain counts, cheap to copy, safe to diff
/// between two snapshots).
///
/// Returned by [`SymbolicCache::stats`] (and mirrored by the evaluation-plan
/// cache in `exi-sim`); a resident daemon surfaces these fleet-wide in its
/// `ServerStats` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries currently cached (published analyses; in-flight pilots
    /// count too — they hold a slot).
    pub entries: usize,
    /// Configured capacity; `None` for an unbounded cache.
    pub capacity: Option<usize>,
    /// Lookups served from a published entry.
    pub hits: u64,
    /// Lookups that found no published entry and ran (or waited on) a fresh
    /// analysis.
    pub misses: u64,
    /// Published entries dropped to keep the cache within its capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over all lookups so far (`0.0` before the first lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The mutex-guarded interior of a [`SymbolicCache`]: the slot map plus the
/// LRU clock and the residency counters (kept under the same lock so a
/// [`CacheStats`] snapshot is internally consistent).
#[derive(Debug, Default)]
struct CacheState {
    slots: HashMap<PatternKey, Slot>,
    /// Monotonic use clock; every hit or publish stamps its slot.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheState {
    /// Stamps `key`'s Ready slot as just-used.
    fn touch(&mut self, key: PatternKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(Slot::Ready { last_used, .. }) = self.slots.get_mut(&key) {
            *last_used = tick;
        }
    }

    /// Evicts least-recently-used **published** entries (never an in-flight
    /// pilot, never `keep`) until the cache fits `capacity`.
    fn evict_to_capacity(&mut self, capacity: usize, keep: PatternKey) {
        while self.slots.len() > capacity {
            let victim = self
                .slots
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready { last_used, .. } if *k != keep => Some((*k, *last_used)),
                    _ => None,
                })
                .min_by_key(|&(_, last_used)| last_used)
                .map(|(k, _)| k);
            match victim {
                Some(k) => {
                    self.slots.remove(&k);
                    self.evictions += 1;
                }
                // Everything else is in flight (or is the entry just
                // published): nothing evictable, accept the overshoot.
                None => break,
            }
        }
    }
}

/// A shareable, blocking cache of symbolic LU analyses (see the module docs).
///
/// Cheap to share: wrap it in an [`Arc`] and hand clones to every session
/// that should pool its symbolic work. Unbounded by default
/// ([`SymbolicCache::new`]); a resident process should bound it with
/// [`SymbolicCache::with_capacity`] so the working set is LRU-evicted instead
/// of leaking.
#[derive(Debug, Default)]
pub struct SymbolicCache {
    state: Mutex<CacheState>,
    published: Condvar,
    capacity: Option<usize>,
}

impl SymbolicCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        SymbolicCache::default()
    }

    /// Creates an empty cache holding at most `capacity` published analyses
    /// (minimum 1); the least-recently-used entry is evicted to admit a new
    /// pattern.
    pub fn with_capacity(capacity: usize) -> Self {
        SymbolicCache {
            capacity: Some(capacity.max(1)),
            ..SymbolicCache::default()
        }
    }

    /// The configured capacity; `None` for an unbounded cache.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of patterns currently known to the cache (published or in
    /// flight).
    pub fn patterns(&self) -> usize {
        self.state
            .lock()
            .expect("symbolic cache poisoned")
            .slots
            .len()
    }

    /// Returns `true` when no pattern has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.patterns() == 0
    }

    /// Snapshot of the residency counters (entries, capacity, hits, misses,
    /// evictions) — internally consistent, taken under the cache lock.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("symbolic cache poisoned");
        CacheStats {
            entries: state.slots.len(),
            capacity: self.capacity,
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
        }
    }

    /// Whether a published (ready, not merely in-flight) analysis exists for
    /// the pattern identified by `fingerprint` (see [`pattern_fingerprint`])
    /// under `ordering`.
    ///
    /// Does not touch the hit/miss counters or the LRU clock — this is a
    /// scheduling query, not a lookup: the batch runner uses it to skip
    /// pilot election for patterns some earlier batch (or the main-thread
    /// pre-publication pass) already published, so a warm fleet never
    /// re-serializes its first wave.
    pub fn is_published(&self, fingerprint: u64, ordering: OrderingMethod) -> bool {
        let key = PatternKey {
            fingerprint,
            ordering,
        };
        matches!(
            self.state
                .lock()
                .expect("symbolic cache poisoned")
                .slots
                .get(&key),
            Some(Slot::Ready { .. })
        )
    }

    /// Factorizes `a`, reusing the cached symbolic analysis for its pattern
    /// when one exists (numeric-only work) and publishing a fresh analysis
    /// when it does not. Blocks while another thread is analyzing the same
    /// pattern. Returns the factor plus how it was obtained.
    ///
    /// A cached pivot order that turns out not to be numerically viable for
    /// `a`'s values (vanished pivot, excessive growth) falls back to a fresh,
    /// re-pivoting factorization; the published analysis is left untouched so
    /// the fallback stays a per-call event.
    ///
    /// # Errors
    ///
    /// Propagates [`SparseLu::factorize_with`] errors (singularity, fill
    /// budget, non-square input).
    pub fn factorize(
        &self,
        a: &CsrMatrix,
        options: &LuOptions,
        ws: &mut LuWorkspace,
    ) -> SparseResult<(SparseLu, FactorSource)> {
        self.factorize_timed(a, options, ws)
            .map(|(lu, source, _)| (lu, source))
    }

    /// As [`SymbolicCache::factorize`], additionally reporting how long the
    /// call spent blocked on the cache (lock acquisition plus condvar waits
    /// on an in-flight pilot) as a [`CacheWait`].
    ///
    /// This is the accounting entry point for schedulers that must not
    /// misattribute contention as solve time: on a warm cache the wait is a
    /// single uncontended lock acquisition and `events` is 0.
    ///
    /// # Errors
    ///
    /// See [`SymbolicCache::factorize`].
    pub fn factorize_timed(
        &self,
        a: &CsrMatrix,
        options: &LuOptions,
        ws: &mut LuWorkspace,
    ) -> SparseResult<(SparseLu, FactorSource, CacheWait)> {
        let key = PatternKey {
            fingerprint: pattern_fingerprint(a),
            ordering: options.ordering,
        };
        let mut wait = CacheWait::default();
        loop {
            let acquire = Instant::now();
            let mut state = self.state.lock().expect("symbolic cache poisoned");
            wait.blocked += acquire.elapsed();
            match state.slots.get(&key) {
                Some(Slot::Ready { symbolic, .. }) => {
                    let symbolic = Arc::clone(symbolic);
                    state.hits += 1;
                    state.touch(key);
                    drop(state);
                    if !symbolic.matches_pattern(a) {
                        // Fingerprint collision: do not share, do not poison.
                        let lu = SparseLu::factorize_with(a, options)?;
                        return Ok((lu, FactorSource::Analyzed, wait));
                    }
                    return match SparseLu::from_symbolic(symbolic, a, options, ws) {
                        Ok(lu) => Ok((lu, FactorSource::Shared, wait)),
                        // The frozen pivot order is not viable for these
                        // values: re-pivot from scratch for this caller only.
                        Err(_) => {
                            let lu = SparseLu::factorize_with(a, options)?;
                            Ok((lu, FactorSource::Analyzed, wait))
                        }
                    };
                }
                Some(Slot::InFlight) => {
                    // Another thread is running the pilot analysis; wait for
                    // it to publish (or release) the slot and re-check. The
                    // re-check accounts the hit or miss, not this wait — but
                    // the blocked time is the caller's to report, so a
                    // serialized schedule can't masquerade as solve time.
                    wait.events += 1;
                    let blocked = Instant::now();
                    let guard = self.published.wait(state).expect("symbolic cache poisoned");
                    wait.blocked += blocked.elapsed();
                    drop(guard);
                    continue;
                }
                None => {
                    state.misses += 1;
                    state.slots.insert(key, Slot::InFlight);
                    drop(state);
                    // Release the slot on every exit path: publish on
                    // success, remove on failure so a waiter can retry.
                    let result = SparseLu::factorize_with(a, options);
                    let mut state = self.state.lock().expect("symbolic cache poisoned");
                    match result {
                        Ok(lu) => {
                            state.tick += 1;
                            let last_used = state.tick;
                            state.slots.insert(
                                key,
                                Slot::Ready {
                                    symbolic: lu.shared_symbolic(),
                                    last_used,
                                },
                            );
                            if let Some(capacity) = self.capacity {
                                state.evict_to_capacity(capacity, key);
                            }
                            drop(state);
                            self.published.notify_all();
                            return Ok((lu, FactorSource::Analyzed, wait));
                        }
                        Err(e) => {
                            state.slots.remove(&key);
                            drop(state);
                            self.published.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }
}

/// 64-bit fingerprint of a matrix's sparsity pattern (dimension + CSR
/// structure, not values).
///
/// This is the hash [`SymbolicCache`] keys its slots by (collisions are
/// verified against the exact pattern before any sharing happens). It is
/// public so schedulers that group work by pattern — e.g. the batch runner's
/// deterministic pilot election — use the **same** grouping the cache will,
/// instead of maintaining a parallel hash that could silently drift.
pub fn pattern_fingerprint(a: &CsrMatrix) -> u64 {
    let mut hasher = DefaultHasher::new();
    a.rows().hash(&mut hasher);
    a.cols().hash(&mut hasher);
    a.indptr().hash(&mut hasher);
    a.indices().hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn tridiag(n: usize, d: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, d);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn first_call_analyzes_second_call_shares() {
        let cache = SymbolicCache::new();
        let a = tridiag(20, 3.0);
        let mut ws = LuWorkspace::new();
        let (lu1, src1) = cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
        assert_eq!(src1, FactorSource::Analyzed);
        assert_eq!(cache.patterns(), 1);
        let b = tridiag(20, 5.0);
        let (lu2, src2) = cache.factorize(&b, &LuOptions::default(), &mut ws).unwrap();
        assert_eq!(src2, FactorSource::Shared);
        assert_eq!(cache.patterns(), 1);
        // The derived factor solves its own matrix, not the pilot's.
        let rhs = vec![1.0; 20];
        let x1 = lu1.solve(&rhs).unwrap();
        let x2 = lu2.solve(&rhs).unwrap();
        assert!(x1.iter().zip(&x2).any(|(p, q)| (p - q).abs() > 1e-6));
    }

    #[test]
    fn shared_factor_with_identical_values_is_bit_identical() {
        let cache = SymbolicCache::new();
        let a = tridiag(30, 2.5);
        let mut ws = LuWorkspace::new();
        let (pilot, _) = cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
        let (derived, src) = cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
        assert_eq!(src, FactorSource::Shared);
        let rhs: Vec<f64> = (0..30).map(|i| (i as f64).cos()).collect();
        assert_eq!(pilot.solve(&rhs).unwrap(), derived.solve(&rhs).unwrap());
    }

    #[test]
    fn distinct_patterns_get_distinct_slots() {
        let cache = SymbolicCache::new();
        let mut ws = LuWorkspace::new();
        cache
            .factorize(&tridiag(10, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        cache
            .factorize(&tridiag(11, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        assert_eq!(cache.patterns(), 2);
        // A different ordering is a different key even for the same pattern.
        let opts = LuOptions {
            ordering: OrderingMethod::MinDegree,
            ..LuOptions::default()
        };
        let (_, src) = cache.factorize(&tridiag(10, 3.0), &opts, &mut ws).unwrap();
        assert_eq!(src, FactorSource::Analyzed);
        assert_eq!(cache.patterns(), 3);
    }

    #[test]
    fn failed_pilot_releases_the_slot() {
        let cache = SymbolicCache::new();
        let mut ws = LuWorkspace::new();
        // Structurally singular: an empty column.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        let singular = t.to_csr();
        assert!(cache
            .factorize(&singular, &LuOptions::default(), &mut ws)
            .is_err());
        assert!(cache.is_empty(), "failed pilot must not leave a slot");
        // A well-posed matrix with the same pattern can now pilot the slot.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        let still_singular = t.to_csr();
        assert!(cache
            .factorize(&still_singular, &LuOptions::default(), &mut ws)
            .is_err());
    }

    #[test]
    fn concurrent_same_pattern_callers_share_one_analysis() {
        let cache = Arc::new(SymbolicCache::new());
        let mut handles = Vec::new();
        for k in 0..8 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                let a = tridiag(64, 3.0 + k as f64 * 0.1);
                let mut ws = LuWorkspace::new();
                let (lu, src) = cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
                let x = lu.solve(&vec![1.0; 64]).unwrap();
                assert!(x.iter().all(|v| v.is_finite()));
                src
            }));
        }
        let sources: Vec<FactorSource> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let analyzed = sources
            .iter()
            .filter(|s| **s == FactorSource::Analyzed)
            .count();
        assert_eq!(analyzed, 1, "exactly one pilot analysis: {sources:?}");
        assert_eq!(cache.patterns(), 1);
    }

    #[test]
    fn warm_lookup_reports_zero_wait_events() {
        let cache = SymbolicCache::new();
        let mut ws = LuWorkspace::new();
        let a = tridiag(16, 3.0);
        let (_, _, pilot_wait) = cache
            .factorize_timed(&a, &LuOptions::default(), &mut ws)
            .unwrap();
        assert_eq!(pilot_wait.events, 0, "the pilot never waits on itself");
        let (_, src, warm_wait) = cache
            .factorize_timed(&a, &LuOptions::default(), &mut ws)
            .unwrap();
        assert_eq!(src, FactorSource::Shared);
        assert_eq!(warm_wait.events, 0, "published pattern must not block");
    }

    #[test]
    fn is_published_reflects_ready_slots_only() {
        let cache = SymbolicCache::new();
        let mut ws = LuWorkspace::new();
        let a = tridiag(12, 3.0);
        let fp = pattern_fingerprint(&a);
        assert!(!cache.is_published(fp, OrderingMethod::default()));
        cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
        assert!(cache.is_published(fp, OrderingMethod::default()));
        // A different ordering is a different slot.
        assert!(!cache.is_published(fp, OrderingMethod::MinDegree));
        // The query is side-effect free: no hit/miss accounting.
        let before = cache.stats();
        cache.is_published(fp, OrderingMethod::default());
        assert_eq!(cache.stats(), before);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = SymbolicCache::new();
        let mut ws = LuWorkspace::new();
        let a = tridiag(16, 3.0);
        cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
        cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
        cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, None);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = SymbolicCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        let mut ws = LuWorkspace::new();
        // Three distinct patterns into a 2-slot cache.
        cache
            .factorize(&tridiag(10, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        cache
            .factorize(&tridiag(11, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        // Touch pattern 10 so pattern 11 becomes the LRU victim.
        let (_, src) = cache
            .factorize(&tridiag(10, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        assert_eq!(src, FactorSource::Shared);
        cache
            .factorize(&tridiag(12, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        assert_eq!(cache.patterns(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // Pattern 10 survived (hit); pattern 11 was evicted (miss again).
        let (_, src10) = cache
            .factorize(&tridiag(10, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        assert_eq!(src10, FactorSource::Shared);
        let (_, src11) = cache
            .factorize(&tridiag(11, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        assert_eq!(src11, FactorSource::Analyzed);
    }

    #[test]
    fn capacity_floor_is_one_entry() {
        let cache = SymbolicCache::with_capacity(0);
        assert_eq!(cache.capacity(), Some(1));
        let mut ws = LuWorkspace::new();
        cache
            .factorize(&tridiag(10, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        cache
            .factorize(&tridiag(11, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        assert_eq!(cache.patterns(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn cache_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SymbolicCache>();
        assert_send_sync::<Arc<SymbolicCache>>();
        assert_send_sync::<SymbolicLu>();
        assert_send_sync::<SparseLu>();
        assert_send_sync::<LuWorkspace>();
        assert_send_sync::<CsrMatrix>();
    }
}
