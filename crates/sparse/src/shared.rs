//! A thread-shared cache of symbolic LU analyses keyed by (sparsity pattern,
//! ordering).
//!
//! A transient run amortizes one symbolic analysis across all of its
//! factorizations; a [`crate::SparseLu`] session extends that across runs on
//! one topology. [`SymbolicCache`] lifts the amortization one more level:
//! across **independent solver sessions running concurrently on different
//! threads**. A fleet of parameter-sweep or Monte-Carlo jobs over the same
//! matrix pattern performs exactly **one** symbolic analysis total — the
//! first session to factorize a pattern publishes its [`SymbolicLu`] behind
//! an [`Arc`], and every other session (on any thread) derives its numeric
//! factors from it with [`SparseLu::from_symbolic`], paying only for the
//! numeric elimination.
//!
//! Concurrency contract:
//!
//! * `factorize` is safe to call from any number of threads.
//! * While a pattern's pilot analysis is in flight, other threads requesting
//!   the same pattern **block** until it is published (instead of redundantly
//!   analyzing it themselves) — this is what makes "exactly one analysis per
//!   pattern" a guarantee rather than a fast path.
//! * If the pilot fails (singular matrix, fill budget), the slot is released
//!   and one of the waiters retries as the new pilot — an unlucky pilot never
//!   wedges the cache.
//!
//! Patterns are keyed by a 64-bit fingerprint of `(n, indptr, indices)` plus
//! the requested [`OrderingMethod`]; a (vanishingly unlikely) fingerprint
//! collision is detected by an exact pattern comparison and degrades to an
//! unshared fresh factorization, never to a wrong result.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex};

use crate::csr::CsrMatrix;
use crate::error::SparseResult;
use crate::lu::{LuOptions, LuWorkspace, SparseLu, SymbolicLu};
use crate::ordering::OrderingMethod;

/// How a [`SymbolicCache::factorize`] call obtained its factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorSource {
    /// The call ran a full symbolic analysis (and published it to the cache
    /// when it was the pattern's pilot).
    Analyzed,
    /// The call reused a cached analysis and performed numeric-only work.
    Shared,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PatternKey {
    fingerprint: u64,
    ordering: OrderingMethod,
}

#[derive(Debug)]
enum Slot {
    /// A pilot factorization for this pattern is in flight on some thread.
    InFlight,
    /// The published analysis.
    Ready(Arc<SymbolicLu>),
}

/// A shareable, blocking cache of symbolic LU analyses (see the module docs).
///
/// Cheap to share: wrap it in an [`Arc`] and hand clones to every session
/// that should pool its symbolic work. The cache only ever grows; drop it to
/// release the analyses.
#[derive(Debug, Default)]
pub struct SymbolicCache {
    slots: Mutex<HashMap<PatternKey, Slot>>,
    published: Condvar,
}

impl SymbolicCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SymbolicCache::default()
    }

    /// Number of patterns currently known to the cache (published or in
    /// flight).
    pub fn patterns(&self) -> usize {
        self.slots.lock().expect("symbolic cache poisoned").len()
    }

    /// Returns `true` when no pattern has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.patterns() == 0
    }

    /// Factorizes `a`, reusing the cached symbolic analysis for its pattern
    /// when one exists (numeric-only work) and publishing a fresh analysis
    /// when it does not. Blocks while another thread is analyzing the same
    /// pattern. Returns the factor plus how it was obtained.
    ///
    /// A cached pivot order that turns out not to be numerically viable for
    /// `a`'s values (vanished pivot, excessive growth) falls back to a fresh,
    /// re-pivoting factorization; the published analysis is left untouched so
    /// the fallback stays a per-call event.
    ///
    /// # Errors
    ///
    /// Propagates [`SparseLu::factorize_with`] errors (singularity, fill
    /// budget, non-square input).
    pub fn factorize(
        &self,
        a: &CsrMatrix,
        options: &LuOptions,
        ws: &mut LuWorkspace,
    ) -> SparseResult<(SparseLu, FactorSource)> {
        let key = PatternKey {
            fingerprint: pattern_fingerprint(a),
            ordering: options.ordering,
        };
        loop {
            let mut slots = self.slots.lock().expect("symbolic cache poisoned");
            match slots.get(&key) {
                Some(Slot::Ready(symbolic)) => {
                    let symbolic = Arc::clone(symbolic);
                    drop(slots);
                    if !symbolic.matches_pattern(a) {
                        // Fingerprint collision: do not share, do not poison.
                        let lu = SparseLu::factorize_with(a, options)?;
                        return Ok((lu, FactorSource::Analyzed));
                    }
                    return match SparseLu::from_symbolic(symbolic, a, options, ws) {
                        Ok(lu) => Ok((lu, FactorSource::Shared)),
                        // The frozen pivot order is not viable for these
                        // values: re-pivot from scratch for this caller only.
                        Err(_) => {
                            let lu = SparseLu::factorize_with(a, options)?;
                            Ok((lu, FactorSource::Analyzed))
                        }
                    };
                }
                Some(Slot::InFlight) => {
                    // Another thread is running the pilot analysis; wait for
                    // it to publish (or release) the slot and re-check.
                    let _guard = self.published.wait(slots).expect("symbolic cache poisoned");
                    continue;
                }
                None => {
                    slots.insert(key, Slot::InFlight);
                    drop(slots);
                    // Release the slot on every exit path: publish on
                    // success, remove on failure so a waiter can retry.
                    let result = SparseLu::factorize_with(a, options);
                    let mut slots = self.slots.lock().expect("symbolic cache poisoned");
                    match result {
                        Ok(lu) => {
                            slots.insert(key, Slot::Ready(lu.shared_symbolic()));
                            drop(slots);
                            self.published.notify_all();
                            return Ok((lu, FactorSource::Analyzed));
                        }
                        Err(e) => {
                            slots.remove(&key);
                            drop(slots);
                            self.published.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
        }
    }
}

/// 64-bit fingerprint of a matrix's sparsity pattern (dimension + CSR
/// structure, not values).
///
/// This is the hash [`SymbolicCache`] keys its slots by (collisions are
/// verified against the exact pattern before any sharing happens). It is
/// public so schedulers that group work by pattern — e.g. the batch runner's
/// deterministic pilot election — use the **same** grouping the cache will,
/// instead of maintaining a parallel hash that could silently drift.
pub fn pattern_fingerprint(a: &CsrMatrix) -> u64 {
    let mut hasher = DefaultHasher::new();
    a.rows().hash(&mut hasher);
    a.cols().hash(&mut hasher);
    a.indptr().hash(&mut hasher);
    a.indices().hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn tridiag(n: usize, d: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, d);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn first_call_analyzes_second_call_shares() {
        let cache = SymbolicCache::new();
        let a = tridiag(20, 3.0);
        let mut ws = LuWorkspace::new();
        let (lu1, src1) = cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
        assert_eq!(src1, FactorSource::Analyzed);
        assert_eq!(cache.patterns(), 1);
        let b = tridiag(20, 5.0);
        let (lu2, src2) = cache.factorize(&b, &LuOptions::default(), &mut ws).unwrap();
        assert_eq!(src2, FactorSource::Shared);
        assert_eq!(cache.patterns(), 1);
        // The derived factor solves its own matrix, not the pilot's.
        let rhs = vec![1.0; 20];
        let x1 = lu1.solve(&rhs).unwrap();
        let x2 = lu2.solve(&rhs).unwrap();
        assert!(x1.iter().zip(&x2).any(|(p, q)| (p - q).abs() > 1e-6));
    }

    #[test]
    fn shared_factor_with_identical_values_is_bit_identical() {
        let cache = SymbolicCache::new();
        let a = tridiag(30, 2.5);
        let mut ws = LuWorkspace::new();
        let (pilot, _) = cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
        let (derived, src) = cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
        assert_eq!(src, FactorSource::Shared);
        let rhs: Vec<f64> = (0..30).map(|i| (i as f64).cos()).collect();
        assert_eq!(pilot.solve(&rhs).unwrap(), derived.solve(&rhs).unwrap());
    }

    #[test]
    fn distinct_patterns_get_distinct_slots() {
        let cache = SymbolicCache::new();
        let mut ws = LuWorkspace::new();
        cache
            .factorize(&tridiag(10, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        cache
            .factorize(&tridiag(11, 3.0), &LuOptions::default(), &mut ws)
            .unwrap();
        assert_eq!(cache.patterns(), 2);
        // A different ordering is a different key even for the same pattern.
        let opts = LuOptions {
            ordering: OrderingMethod::MinDegree,
            ..LuOptions::default()
        };
        let (_, src) = cache.factorize(&tridiag(10, 3.0), &opts, &mut ws).unwrap();
        assert_eq!(src, FactorSource::Analyzed);
        assert_eq!(cache.patterns(), 3);
    }

    #[test]
    fn failed_pilot_releases_the_slot() {
        let cache = SymbolicCache::new();
        let mut ws = LuWorkspace::new();
        // Structurally singular: an empty column.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        let singular = t.to_csr();
        assert!(cache
            .factorize(&singular, &LuOptions::default(), &mut ws)
            .is_err());
        assert!(cache.is_empty(), "failed pilot must not leave a slot");
        // A well-posed matrix with the same pattern can now pilot the slot.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        let still_singular = t.to_csr();
        assert!(cache
            .factorize(&still_singular, &LuOptions::default(), &mut ws)
            .is_err());
    }

    #[test]
    fn concurrent_same_pattern_callers_share_one_analysis() {
        let cache = Arc::new(SymbolicCache::new());
        let mut handles = Vec::new();
        for k in 0..8 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                let a = tridiag(64, 3.0 + k as f64 * 0.1);
                let mut ws = LuWorkspace::new();
                let (lu, src) = cache.factorize(&a, &LuOptions::default(), &mut ws).unwrap();
                let x = lu.solve(&vec![1.0; 64]).unwrap();
                assert!(x.iter().all(|v| v.is_finite()));
                src
            }));
        }
        let sources: Vec<FactorSource> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let analyzed = sources
            .iter()
            .filter(|s| **s == FactorSource::Analyzed)
            .count();
        assert_eq!(analyzed, 1, "exactly one pilot analysis: {sources:?}");
        assert_eq!(cache.patterns(), 1);
    }

    #[test]
    fn cache_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SymbolicCache>();
        assert_send_sync::<Arc<SymbolicCache>>();
        assert_send_sync::<SymbolicLu>();
        assert_send_sync::<SparseLu>();
        assert_send_sync::<LuWorkspace>();
        assert_send_sync::<CsrMatrix>();
    }
}
