//! Sparse LU factorization (left-looking Gilbert–Peierls with partial
//! pivoting) with a cached **symbolic analysis** and cheap numeric
//! **refactorization**.
//!
//! This is the direct solver the whole simulator is built on. The exponential
//! Rosenbrock–Euler engine factorizes only the conductance matrix `G` (once
//! per accepted step), while the backward-Euler/Newton–Raphson baseline must
//! factorize `C/h + G` at every Newton iteration and whenever the step size
//! changes — exactly the cost asymmetry the paper exploits.
//!
//! The implementation follows the classic algorithm of Gilbert & Peierls
//! (also used by CSparse/KLU): for each column, a depth-first search over the
//! pattern of the already-computed `L` determines the nonzero pattern of the
//! new column in topological order, after which a sparse triangular solve
//! fills in the numerical values. Row pivoting is threshold partial pivoting
//! with a preference for the diagonal to preserve the fill-reducing column
//! ordering.
//!
//! Because the sparsity pattern of a circuit's matrices is fixed for an
//! entire transient run while only the values change, the expensive parts of
//! a factorization — the fill-reducing ordering, the pivot order and the
//! per-column reachability DFS — are computed **once** and cached in a
//! [`SymbolicLu`]. Subsequent factorizations of matrices with the identical
//! pattern go through [`SparseLu::refactorize`], which replays the recorded
//! elimination in the recorded order: no ordering, no DFS, no allocation, and
//! bit-for-bit the same result as a fresh factorization when the values are
//! unchanged (KLU-style "refactor").

use std::sync::Arc;

use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};
use crate::ordering::{compute_ordering, OrderingMethod};
use crate::permutation::Permutation;

/// Options controlling the sparse LU factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct LuOptions {
    /// Fill-reducing column ordering applied before factorization.
    pub ordering: OrderingMethod,
    /// Threshold for diagonal-preferring partial pivoting in `(0, 1]`.
    ///
    /// The diagonal entry is accepted as pivot if its magnitude is at least
    /// `pivot_tolerance` times the largest eligible entry in the column;
    /// otherwise the largest entry is used.
    pub pivot_tolerance: f64,
    /// Absolute magnitude below which a pivot is considered numerically zero.
    pub zero_pivot_threshold: f64,
    /// Optional upper bound on `nnz(L) + nnz(U)`.
    ///
    /// The benchmark harness uses this to emulate the out-of-memory failures
    /// the paper reports for the BENR baseline on densely coupled circuits.
    pub fill_budget: Option<usize>,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            ordering: OrderingMethod::Rcm,
            pivot_tolerance: 0.1,
            zero_pivot_threshold: 1e-13,
            fill_budget: None,
        }
    }
}

/// Bound on `max |L|` above which a pivot-order-preserving refactorization is
/// rejected as numerically unstable (the caller should re-pivot with a fresh
/// [`SparseLu::factorize_with`]). Fresh factorizations bound this by
/// `1 / pivot_tolerance`; drifting values can erode that guarantee.
const REFACTOR_GROWTH_LIMIT: f64 = 1e10;

/// Reusable scratch memory for [`SparseLu::solve_into`] and
/// [`SparseLu::refactorize_with`].
///
/// Keeping one workspace alive across a hot loop removes every per-call
/// allocation from triangular solves and refactorizations. A workspace may be
/// shared between factors of different dimensions; it grows to the largest
/// dimension seen.
#[derive(Debug, Clone, Default)]
pub struct LuWorkspace {
    scratch: Vec<f64>,
}

impl LuWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        LuWorkspace::default()
    }

    /// A scratch slice of length `n` with unspecified contents.
    fn slice(&mut self, n: usize) -> &mut [f64] {
        if self.scratch.len() < n {
            self.scratch.resize(n, 0.0);
        }
        &mut self.scratch[..n]
    }

    /// A zero-initialized scratch slice of length `n`.
    fn zeroed(&mut self, n: usize) -> &mut [f64] {
        let s = self.slice(n);
        s.fill(0.0);
        s
    }
}

/// The symbolic part of a sparse LU factorization: everything that depends
/// only on the sparsity **pattern** of the matrix (plus the pivot order the
/// pilot factorization chose), not on its values.
///
/// Stored once and shared (via [`Arc`]) by every numeric factor derived from
/// it:
///
/// * the fill-reducing column ordering `Q` and the row pivot order `P`,
/// * the structural patterns of `L` and `U` in elimination order (the
///   per-column reachability sets of the Gilbert–Peierls DFS),
/// * a scatter map from the input matrix's CSR value array to pivot-position
///   workspace indices, so a refactorization never converts to CSC.
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    pub(crate) n: usize,
    /// Column ordering: position `k` factors original column `q.unmap(k)`.
    pub(crate) q: Permutation,
    /// `pinv[original_row]` = pivot position of that row.
    pub(crate) pinv: Vec<usize>,
    /// CSR pattern of the analyzed matrix (for cheap validation on refactorize).
    a_indptr: Vec<usize>,
    a_indices: Vec<usize>,
    /// Scatter map, per factor column: workspace positions and CSR value
    /// indices of the input matrix entries of that column.
    pub(crate) acol_ptr: Vec<usize>,
    pub(crate) acol_pos: Vec<usize>,
    pub(crate) acol_src: Vec<usize>,
    /// Pattern of `L` (strictly below the diagonal), row indices in pivot
    /// positions, stored per column in elimination (topological) order.
    pub(crate) l_colptr: Vec<usize>,
    pub(crate) l_rows: Vec<usize>,
    /// Pattern of `U` (strictly above the diagonal), row indices in pivot
    /// positions, stored per column in elimination order. Iterating a column
    /// of this pattern visits the update sources of the left-looking solve in
    /// exactly the order the pilot factorization applied them.
    pub(crate) u_colptr: Vec<usize>,
    pub(crate) u_rows: Vec<usize>,
}

impl SymbolicLu {
    /// Dimension of the analyzed matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural nonzeros in `L` (including the implicit unit diagonal).
    pub fn nnz_l(&self) -> usize {
        self.l_rows.len() + self.n
    }

    /// Structural nonzeros in `U` (including the diagonal).
    pub fn nnz_u(&self) -> usize {
        self.u_rows.len() + self.n
    }

    /// Total structural factor fill `nnz(L) + nnz(U)`.
    pub fn fill(&self) -> usize {
        self.nnz_l() + self.nnz_u()
    }

    /// Number of nonzeros of the analyzed matrix pattern.
    pub(crate) fn a_nnz(&self) -> usize {
        self.a_indices.len()
    }

    /// Whether `a` has exactly the sparsity pattern this analysis was
    /// computed for.
    pub fn matches_pattern(&self, a: &CsrMatrix) -> bool {
        a.rows() == self.n
            && a.cols() == self.n
            && a.indptr() == &self.a_indptr[..]
            && a.indices() == &self.a_indices[..]
    }
}

/// A computed sparse LU factorization `P·A·Q = L·U`.
///
/// `P` is the row permutation chosen by partial pivoting, `Q` the
/// fill-reducing column ordering, `L` unit lower triangular and `U` upper
/// triangular. The symbolic analysis is cached and shared, so factorizing a
/// sequence of matrices with the same pattern costs one full factorization
/// plus cheap numeric [`SparseLu::refactorize`] calls.
///
/// # Examples
///
/// ```
/// use exi_sparse::{SparseLu, TripletMatrix};
///
/// # fn main() -> Result<(), exi_sparse::SparseError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 4.0);
/// t.push(0, 1, 1.0);
/// t.push(1, 0, 1.0);
/// t.push(1, 1, 3.0);
/// let a = t.to_csr();
/// let lu = SparseLu::factorize(&a)?;
/// let x = lu.solve(&[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    symbolic: Arc<SymbolicLu>,
    l_vals: Vec<f64>,
    u_vals: Vec<f64>,
    /// Diagonal of `U` in pivot positions.
    u_diag: Vec<f64>,
    /// Smallest pivot magnitude a refactorization accepts.
    pivot_floor: f64,
}

impl SparseLu {
    /// Factorizes `a` with default [`LuOptions`].
    ///
    /// # Errors
    ///
    /// See [`SparseLu::factorize_with`].
    pub fn factorize(a: &CsrMatrix) -> SparseResult<Self> {
        Self::factorize_with(a, &LuOptions::default())
    }

    /// Factorizes `a` with explicit options, performing the full symbolic
    /// analysis (ordering, pivoting, reachability) plus the numeric
    /// factorization.
    ///
    /// # Errors
    ///
    /// * [`SparseError::NotSquare`] if `a` is not square.
    /// * [`SparseError::Singular`] if no acceptable pivot exists for a column.
    /// * [`SparseError::FillBudgetExceeded`] if the configured fill budget is hit.
    pub fn factorize_with(a: &CsrMatrix, options: &LuOptions) -> SparseResult<Self> {
        if a.rows() != a.cols() {
            return Err(SparseError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let q = compute_ordering(a, options.ordering);

        // Column-wise access to `a` that remembers, for every entry, its
        // index into `a.values()` — this becomes the refactorization scatter
        // map once the pivot order is known.
        let (csc_ptr, csc_rows, csc_src) = csc_pattern_with_sources(a);
        let a_vals = a.values();

        // L columns with ORIGINAL row indices during factorization; remapped
        // to pivot positions at the end.
        let mut l_colptr = vec![0usize; n + 1];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_colptr = vec![0usize; n + 1];
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        let mut u_diag = vec![0.0f64; n];
        let mut pinv = vec![usize::MAX; n];

        // Dense workspaces indexed by original row.
        let mut x = vec![0.0f64; n];
        let mut marked = vec![usize::MAX; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::with_capacity(n);

        for jj in 0..n {
            let j_orig = q.unmap(jj);
            let b_rows = &csc_rows[csc_ptr[j_orig]..csc_ptr[j_orig + 1]];
            let b_srcs = &csc_src[csc_ptr[j_orig]..csc_ptr[j_orig + 1]];

            // --- Symbolic: pattern of x = L^{-1} * A[:, j] via DFS (reach). ---
            topo.clear();
            for &r in b_rows {
                if marked[r] == jj {
                    continue;
                }
                // Iterative DFS from r through the columns of L.
                dfs_stack.push((r, 0));
                marked[r] = jj;
                while let Some(&(node, child_idx)) = dfs_stack.last() {
                    let k = pinv[node];
                    let children: &[usize] = if k == usize::MAX {
                        &[]
                    } else {
                        &l_rows[l_colptr[k]..l_colptr[k + 1]]
                    };
                    let mut next_child = None;
                    let mut ci = child_idx;
                    while ci < children.len() {
                        let c = children[ci];
                        ci += 1;
                        if marked[c] != jj {
                            next_child = Some(c);
                            break;
                        }
                    }
                    dfs_stack.last_mut().expect("stack non-empty").1 = ci;
                    match next_child {
                        Some(c) => {
                            marked[c] = jj;
                            dfs_stack.push((c, 0));
                        }
                        None => {
                            dfs_stack.pop();
                            topo.push(node);
                        }
                    }
                }
            }
            // `topo` is in post-order; reverse gives a topological order for
            // elimination (dependencies first).
            topo.reverse();

            // --- Numeric: sparse lower-triangular solve. ---
            // The workspace `x` is zero outside the previous pattern (it is
            // cleared when columns are stored), so only the right-hand side
            // needs to be scattered.
            for (&r, &src) in b_rows.iter().zip(b_srcs.iter()) {
                x[r] = a_vals[src];
            }
            for &r in topo.iter() {
                let k = pinv[r];
                if k == usize::MAX {
                    continue;
                }
                let xr = x[r];
                if xr == 0.0 {
                    continue;
                }
                for idx in l_colptr[k]..l_colptr[k + 1] {
                    x[l_rows[idx]] -= l_vals[idx] * xr;
                }
            }

            // --- Pivot selection among non-pivotal rows in the pattern. ---
            let mut max_val = 0.0f64;
            let mut max_row = usize::MAX;
            let mut diag_val = 0.0f64;
            let mut diag_ok = false;
            for &r in topo.iter() {
                if pinv[r] != usize::MAX {
                    continue;
                }
                let v = x[r].abs();
                if v > max_val {
                    max_val = v;
                    max_row = r;
                }
                if r == j_orig {
                    diag_val = v;
                    diag_ok = true;
                }
            }
            if max_row == usize::MAX || max_val < options.zero_pivot_threshold {
                return Err(SparseError::Singular {
                    column: jj,
                    unknown: Some(j_orig),
                });
            }
            let pivot_row = if diag_ok && diag_val >= options.pivot_tolerance * max_val {
                j_orig
            } else {
                max_row
            };
            let pivot_val = x[pivot_row];
            pinv[pivot_row] = jj;
            u_diag[jj] = pivot_val;

            // --- Store U column jj (pivotal rows) and L column jj (others). ---
            // Structural zeros are kept: the stored pattern must be the pure
            // symbolic reach so that a later refactorization with different
            // values remains correct.
            for &r in topo.iter() {
                let val = x[r];
                x[r] = 0.0; // clear workspace for the next column
                if r == pivot_row {
                    continue;
                }
                let k = pinv[r];
                if k != usize::MAX && k != jj {
                    u_rows.push(k);
                    u_vals.push(val);
                } else if k == usize::MAX {
                    l_rows.push(r);
                    l_vals.push(val / pivot_val);
                }
            }
            u_colptr[jj + 1] = u_rows.len();
            l_colptr[jj + 1] = l_rows.len();

            if let Some(budget) = options.fill_budget {
                let fill = l_rows.len() + u_rows.len() + n;
                if fill > budget {
                    return Err(SparseError::FillBudgetExceeded {
                        reached: fill,
                        budget,
                    });
                }
            }
        }

        // Remap L row indices from original rows to pivot positions.
        for r in l_rows.iter_mut() {
            *r = pinv[*r];
        }

        // Freeze the refactorization scatter map now that the full pivot
        // order is known: factor column jj reads the entries of original
        // column q.unmap(jj), targeting pivot-position workspace slots.
        let mut acol_ptr = vec![0usize; n + 1];
        let mut acol_pos = Vec::with_capacity(a.nnz());
        let mut acol_src = Vec::with_capacity(a.nnz());
        for jj in 0..n {
            let j_orig = q.unmap(jj);
            for t in csc_ptr[j_orig]..csc_ptr[j_orig + 1] {
                acol_pos.push(pinv[csc_rows[t]]);
                acol_src.push(csc_src[t]);
            }
            acol_ptr[jj + 1] = acol_pos.len();
        }

        let symbolic = SymbolicLu {
            n,
            q,
            pinv,
            a_indptr: a.indptr().to_vec(),
            a_indices: a.indices().to_vec(),
            acol_ptr,
            acol_pos,
            acol_src,
            l_colptr,
            l_rows,
            u_colptr,
            u_rows,
        };

        Ok(SparseLu {
            symbolic: Arc::new(symbolic),
            l_vals,
            u_vals,
            u_diag,
            pivot_floor: options.pivot_tolerance * options.zero_pivot_threshold,
        })
    }

    /// Recomputes the numeric factorization for a matrix `a` with the **same
    /// sparsity pattern** as the one this factor was built from, reusing the
    /// cached symbolic analysis (ordering, pivot order, factor patterns).
    ///
    /// This skips the fill-reducing ordering, the CSC conversion and the
    /// per-column reachability DFS and performs no allocation; only the
    /// floating-point elimination is replayed — in exactly the operation
    /// order of the pilot factorization, so refactorizing with unchanged
    /// values reproduces the factors bit for bit.
    ///
    /// # Errors
    ///
    /// * [`SparseError::PatternMismatch`] if `a` does not have the analyzed
    ///   pattern (the caller should fall back to
    ///   [`SparseLu::factorize_with`]).
    /// * [`SparseError::Singular`] if a frozen pivot became numerically zero.
    /// * [`SparseError::UnstableRefactorization`] if element growth shows the
    ///   frozen pivot order is no longer viable and fresh pivoting is needed.
    ///
    /// On error the numeric contents of the factor are unspecified; the
    /// factor must be rebuilt before further solves.
    ///
    /// # Examples
    ///
    /// ```
    /// use exi_sparse::{LuWorkspace, SparseLu, TripletMatrix};
    ///
    /// # fn main() -> Result<(), exi_sparse::SparseError> {
    /// let mut t = TripletMatrix::new(2, 2);
    /// t.push(0, 0, 4.0);
    /// t.push(1, 1, 3.0);
    /// let a = t.to_csr();
    /// let mut lu = SparseLu::factorize(&a)?;
    ///
    /// // Same pattern, new values: numeric-only refactorization.
    /// let mut t = TripletMatrix::new(2, 2);
    /// t.push(0, 0, 8.0);
    /// t.push(1, 1, 6.0);
    /// let mut ws = LuWorkspace::new();
    /// lu.refactorize_with(&t.to_csr(), &mut ws)?;
    /// let x = lu.solve(&[8.0, 6.0])?;
    /// assert!((x[0] - 1.0).abs() < 1e-14 && (x[1] - 1.0).abs() < 1e-14);
    /// # Ok(())
    /// # }
    /// ```
    pub fn refactorize_with(&mut self, a: &CsrMatrix, ws: &mut LuWorkspace) -> SparseResult<()> {
        let s = Arc::clone(&self.symbolic);
        if !s.matches_pattern(a) {
            return Err(SparseError::PatternMismatch {
                expected_nnz: s.a_indices.len(),
                found_nnz: a.nnz(),
            });
        }
        let a_vals = a.values();
        let x = ws.zeroed(s.n);
        for jj in 0..s.n {
            // Scatter A[:, q(jj)] into pivot-position slots.
            for t in s.acol_ptr[jj]..s.acol_ptr[jj + 1] {
                x[s.acol_pos[t]] = a_vals[s.acol_src[t]];
            }
            // Replay the left-looking update in the recorded elimination
            // order: the U pattern of this column lists the update sources
            // exactly as the pilot factorization visited them.
            for t in s.u_colptr[jj]..s.u_colptr[jj + 1] {
                let p = s.u_rows[t];
                let xp = x[p];
                if xp == 0.0 {
                    continue;
                }
                for idx in s.l_colptr[p]..s.l_colptr[p + 1] {
                    x[s.l_rows[idx]] -= self.l_vals[idx] * xp;
                }
            }
            // Frozen pivot.
            let pivot = x[jj];
            if !pivot.is_finite() || pivot.abs() < self.pivot_floor {
                return Err(SparseError::Singular {
                    column: jj,
                    unknown: Some(s.q.unmap(jj)),
                });
            }
            self.u_diag[jj] = pivot;
            // Gather the column back out (and clear the workspace slots).
            // U carries the matrix's own scale, so it is only checked for
            // finiteness; L is dimensionless and additionally bounded by the
            // growth limit. NaN must be caught explicitly (a plain
            // `growth.max(..)` accumulator would swallow it).
            for t in s.u_colptr[jj]..s.u_colptr[jj + 1] {
                let p = s.u_rows[t];
                let uv = x[p];
                if !uv.is_finite() {
                    return Err(SparseError::UnstableRefactorization {
                        growth: f64::INFINITY,
                    });
                }
                self.u_vals[t] = uv;
                x[p] = 0.0;
            }
            x[jj] = 0.0;
            for t in s.l_colptr[jj]..s.l_colptr[jj + 1] {
                let p = s.l_rows[t];
                let lv = x[p] / pivot;
                let magnitude = lv.abs();
                if magnitude > REFACTOR_GROWTH_LIMIT || magnitude.is_nan() {
                    return Err(SparseError::UnstableRefactorization { growth: magnitude });
                }
                self.l_vals[t] = lv;
                x[p] = 0.0;
            }
        }
        Ok(())
    }

    /// As [`SparseLu::refactorize_with`], with an internal scratch workspace.
    ///
    /// # Errors
    ///
    /// See [`SparseLu::refactorize_with`].
    pub fn refactorize(&mut self, a: &CsrMatrix) -> SparseResult<()> {
        let mut ws = LuWorkspace::new();
        self.refactorize_with(a, &mut ws)
    }

    /// Builds a numeric factorization of `a` from an **existing** symbolic
    /// analysis — the cross-factor sibling of [`SparseLu::refactorize_with`].
    ///
    /// Where `refactorize_with` updates a factor in place, `from_symbolic`
    /// creates a brand-new factor (fresh value storage) that shares the
    /// symbolic analysis behind the [`Arc`]. This is what makes the analysis
    /// shareable across threads: many workers can hold clones of one
    /// `Arc<SymbolicLu>` and each build its own numeric factor without any
    /// symbolic work and without synchronization (see
    /// [`SymbolicCache`](crate::SymbolicCache)).
    ///
    /// For values identical to the ones the analysis was computed from, the
    /// resulting factor is bit-for-bit the factor a fresh
    /// [`SparseLu::factorize_with`] would produce (the elimination replays in
    /// the recorded operation order).
    ///
    /// # Errors
    ///
    /// * [`SparseError::PatternMismatch`] if `a` does not have the analyzed
    ///   pattern.
    /// * [`SparseError::FillBudgetExceeded`] if `options.fill_budget` is
    ///   smaller than the analysis' fill.
    /// * [`SparseError::Singular`] / [`SparseError::UnstableRefactorization`]
    ///   if the frozen pivot order is not viable for `a`'s values — the
    ///   caller should fall back to a fresh, re-pivoting
    ///   [`SparseLu::factorize_with`].
    pub fn from_symbolic(
        symbolic: Arc<SymbolicLu>,
        a: &CsrMatrix,
        options: &LuOptions,
        ws: &mut LuWorkspace,
    ) -> SparseResult<Self> {
        if let Some(budget) = options.fill_budget {
            let fill = symbolic.fill();
            if fill > budget {
                return Err(SparseError::FillBudgetExceeded {
                    reached: fill,
                    budget,
                });
            }
        }
        let mut lu = SparseLu {
            l_vals: vec![0.0; symbolic.l_rows.len()],
            u_vals: vec![0.0; symbolic.u_rows.len()],
            u_diag: vec![0.0; symbolic.n],
            pivot_floor: options.pivot_tolerance * options.zero_pivot_threshold,
            symbolic,
        };
        lu.refactorize_with(a, ws)?;
        Ok(lu)
    }

    /// The cached symbolic analysis backing this factorization.
    pub fn symbolic(&self) -> &SymbolicLu {
        &self.symbolic
    }

    /// A shareable handle to the cached symbolic analysis — cloning the
    /// [`Arc`] lets other factors (including ones on other threads) reuse the
    /// analysis through [`SparseLu::from_symbolic`].
    pub fn shared_symbolic(&self) -> Arc<SymbolicLu> {
        Arc::clone(&self.symbolic)
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.symbolic.n
    }

    /// Number of nonzeros in `L` (including the implicit unit diagonal).
    pub fn nnz_l(&self) -> usize {
        self.symbolic.nnz_l()
    }

    /// Number of nonzeros in `U` (including the diagonal).
    pub fn nnz_u(&self) -> usize {
        self.symbolic.nnz_u()
    }

    /// Total factor fill `nnz(L) + nnz(U)`.
    pub fn fill(&self) -> usize {
        self.symbolic.fill()
    }

    /// Solves `A x = b` using the computed factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> SparseResult<Vec<f64>> {
        let mut out = vec![0.0f64; self.symbolic.n];
        let mut ws = LuWorkspace::new();
        self.solve_into(b, &mut out, &mut ws)?;
        Ok(out)
    }

    /// Solves `A x = b` into a caller-provided output buffer, using `ws` for
    /// scratch space — the allocation-free variant of [`SparseLu::solve`] for
    /// hot loops.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `b.len()` or `out.len()`
    /// differ from the matrix dimension.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64], ws: &mut LuWorkspace) -> SparseResult<()> {
        let s = &self.symbolic;
        if b.len() != s.n {
            return Err(SparseError::DimensionMismatch {
                op: "lu solve rhs",
                expected: s.n,
                found: b.len(),
            });
        }
        if out.len() != s.n {
            return Err(SparseError::DimensionMismatch {
                op: "lu solve output",
                expected: s.n,
                found: out.len(),
            });
        }
        let z = ws.slice(s.n);
        // Apply the row permutation: z = P b.
        for (r, &br) in b.iter().enumerate() {
            z[s.pinv[r]] = br;
        }
        // Forward solve with unit lower triangular L (column oriented).
        for j in 0..s.n {
            let xj = z[j];
            if xj == 0.0 {
                continue;
            }
            for idx in s.l_colptr[j]..s.l_colptr[j + 1] {
                z[s.l_rows[idx]] -= self.l_vals[idx] * xj;
            }
        }
        // Backward solve with U (column oriented).
        for j in (0..s.n).rev() {
            z[j] /= self.u_diag[j];
            let xj = z[j];
            if xj == 0.0 {
                continue;
            }
            for idx in s.u_colptr[j]..s.u_colptr[j + 1] {
                z[s.u_rows[idx]] -= self.u_vals[idx] * xj;
            }
        }
        // Undo the column ordering: x[q(k)] = z[k].
        for k in 0..s.n {
            out[s.q.unmap(k)] = z[k];
        }
        Ok(())
    }

    /// Solves `A x = b` for several right-hand sides.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SparseLu::solve`], checked per right-hand side.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> SparseResult<Vec<Vec<f64>>> {
        let mut ws = LuWorkspace::new();
        rhs.iter()
            .map(|b| {
                let mut out = vec![0.0f64; self.symbolic.n];
                self.solve_into(b, &mut out, &mut ws)?;
                Ok(out)
            })
            .collect()
    }
}

/// Column-wise view of a CSR pattern: for every column, the original row
/// indices and the positions of the entries inside `a.values()`.
fn csc_pattern_with_sources(a: &CsrMatrix) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let n_cols = a.cols();
    let mut colptr = vec![0usize; n_cols + 1];
    for &c in a.indices() {
        colptr[c + 1] += 1;
    }
    for j in 0..n_cols {
        colptr[j + 1] += colptr[j];
    }
    let mut rows = vec![0usize; a.nnz()];
    let mut src = vec![0usize; a.nnz()];
    let mut next = colptr.clone();
    for i in 0..a.rows() {
        let (cols, _) = a.row(i);
        let base = a.indptr()[i];
        for (offset, &c) in cols.iter().enumerate() {
            let pos = next[c];
            rows[pos] = i;
            src[pos] = base + offset;
            next[c] += 1;
        }
    }
    (colptr, rows, src)
}

/// Convenience function: factorize `a` and solve a single system.
///
/// # Errors
///
/// Propagates factorization and solve errors from [`SparseLu`].
pub fn solve_sparse(a: &CsrMatrix, b: &[f64]) -> SparseResult<Vec<f64>> {
    SparseLu::factorize(a)?.solve(b)
}

/// Reports the factor fill of a matrix under a given ordering without keeping
/// the factors (used by the Fig. 1 reproduction).
///
/// Returns `(nnz_l, nnz_u)`.
///
/// # Errors
///
/// Propagates factorization errors from [`SparseLu`].
pub fn factor_fill(a: &CsrMatrix, ordering: OrderingMethod) -> SparseResult<(usize, usize)> {
    let lu = SparseLu::factorize_with(
        a,
        &LuOptions {
            ordering,
            ..LuOptions::default()
        },
    )?;
    Ok((lu.nnz_l(), lu.nnz_u()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vector, TripletMatrix};

    fn dense_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x);
        vector::max_abs_diff(&ax, b)
    }

    fn tridiag(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.5);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    fn tridiag_scaled(n: usize, d: f64, off: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, d);
            if i + 1 < n {
                t.push(i, i + 1, off);
                t.push(i + 1, i, off);
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_small_dense_system() {
        let mut t = TripletMatrix::new(3, 3);
        let rows = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 4.0]];
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                t.push(i, j, v);
            }
        }
        let a = t.to_csr();
        let b = vec![1.0, 2.0, 3.0];
        let lu = SparseLu::factorize(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(dense_residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn solves_tridiagonal_systems_of_various_sizes() {
        for n in [1usize, 2, 3, 10, 50, 200] {
            let a = tridiag(n);
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
            let x = solve_sparse(&a, &b).unwrap();
            assert!(dense_residual(&a, &x, &b) < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn all_orderings_give_same_solution() {
        let a = tridiag(30);
        let b: Vec<f64> = (0..30).map(|i| i as f64 * 0.1 - 1.0).collect();
        let mut solutions = Vec::new();
        for ordering in [
            OrderingMethod::Natural,
            OrderingMethod::Rcm,
            OrderingMethod::MinDegree,
        ] {
            let lu = SparseLu::factorize_with(
                &a,
                &LuOptions {
                    ordering,
                    ..LuOptions::default()
                },
            )
            .unwrap();
            solutions.push(lu.solve(&b).unwrap());
        }
        for s in &solutions[1..] {
            assert!(vector::max_abs_diff(&solutions[0], s) < 1e-10);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]] requires row pivoting.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let a = t.to_csr();
        let x = solve_sparse(&a, &[3.0, 5.0]).unwrap();
        assert!((x[1] - 3.0).abs() < 1e-14);
        assert!((x[0] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        // Column 1 is entirely zero.
        let a = t.to_csr();
        assert!(matches!(
            SparseLu::factorize(&a),
            Err(SparseError::Singular { .. })
        ));
    }

    #[test]
    fn numerically_singular_matrix_is_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        let a = t.to_csr();
        assert!(matches!(
            SparseLu::factorize(&a),
            Err(SparseError::Singular { .. })
        ));
    }

    #[test]
    fn fill_budget_is_enforced() {
        let a = tridiag(100);
        let opts = LuOptions {
            fill_budget: Some(50),
            ..LuOptions::default()
        };
        assert!(matches!(
            SparseLu::factorize_with(&a, &opts),
            Err(SparseError::FillBudgetExceeded { .. })
        ));
        let opts = LuOptions {
            fill_budget: Some(10_000),
            ..LuOptions::default()
        };
        assert!(SparseLu::factorize_with(&a, &opts).is_ok());
    }

    #[test]
    fn non_square_is_rejected() {
        let a = CsrMatrix::zeros(2, 3);
        assert!(matches!(
            SparseLu::factorize(&a),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn fill_counts_are_consistent() {
        let a = tridiag(20);
        let lu = SparseLu::factorize(&a).unwrap();
        assert!(lu.nnz_l() >= 20);
        assert!(lu.nnz_u() >= 20);
        assert_eq!(lu.fill(), lu.nnz_l() + lu.nnz_u());
        assert_eq!(lu.fill(), lu.symbolic().fill());
        let (l, u) = factor_fill(&a, OrderingMethod::Rcm).unwrap();
        assert_eq!((l, u), (lu.nnz_l(), lu.nnz_u()));
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let a = tridiag(15);
        let rhs: Vec<Vec<f64>> = (0..3)
            .map(|k| (0..15).map(|i| (i + k) as f64).collect())
            .collect();
        let lu = SparseLu::factorize(&a).unwrap();
        let xs = lu.solve_many(&rhs).unwrap();
        for (x, b) in xs.iter().zip(rhs.iter()) {
            assert!(dense_residual(&a, x, b) < 1e-10);
        }
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let a = tridiag(4);
        let lu = SparseLu::factorize(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        let mut out = vec![0.0; 3];
        let mut ws = LuWorkspace::new();
        assert!(lu.solve_into(&[1.0; 4], &mut out, &mut ws).is_err());
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = tridiag(25);
        let lu = SparseLu::factorize(&a).unwrap();
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.7).cos()).collect();
        let x1 = lu.solve(&b).unwrap();
        let mut x2 = vec![0.0; 25];
        let mut ws = LuWorkspace::new();
        lu.solve_into(&b, &mut x2, &mut ws).unwrap();
        assert_eq!(x1, x2);
        // Reusing the workspace must not corrupt later solves.
        let mut x3 = vec![0.0; 25];
        lu.solve_into(&b, &mut x3, &mut ws).unwrap();
        assert_eq!(x1, x3);
    }

    #[test]
    fn random_sparse_spd_like_systems() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..5 {
            let n = 40 + trial * 13;
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.push(i, i, 10.0 + rng.gen::<f64>());
            }
            for _ in 0..(3 * n) {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if i != j {
                    let v = rng.gen_range(-1.0..1.0);
                    t.push(i, j, v);
                }
            }
            let a = t.to_csr();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = solve_sparse(&a, &b).unwrap();
            assert!(dense_residual(&a, &x, &b) < 1e-9, "trial {trial}");
        }
    }

    #[test]
    fn refactorize_same_values_is_bit_identical() {
        let a = tridiag(60);
        let fresh = SparseLu::factorize(&a).unwrap();
        let mut refac = fresh.clone();
        let mut ws = LuWorkspace::new();
        refac.refactorize_with(&a, &mut ws).unwrap();
        assert_eq!(fresh.l_vals, refac.l_vals);
        assert_eq!(fresh.u_vals, refac.u_vals);
        assert_eq!(fresh.u_diag, refac.u_diag);
    }

    #[test]
    fn refactorize_new_values_matches_fresh_factorization() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50;
        // A random diagonally dominant pattern shared by two value sets.
        let mut entries: Vec<(usize, usize)> = Vec::new();
        for _ in 0..(3 * n) {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                entries.push((i, j));
            }
        }
        let build = |rng: &mut StdRng| {
            let mut t = TripletMatrix::new(n, n);
            for &(i, j) in &entries {
                t.push(i, j, rng.gen_range(-1.0..1.0));
            }
            for i in 0..n {
                t.push(i, i, 8.0 + rng.gen::<f64>());
            }
            t.to_csr()
        };
        let a0 = build(&mut rng);
        let a1 = build(&mut rng);
        assert_eq!(
            a0.indices(),
            a1.indices(),
            "patterns must agree for this test"
        );

        let mut lu = SparseLu::factorize(&a0).unwrap();
        let mut ws = LuWorkspace::new();
        lu.refactorize_with(&a1, &mut ws).unwrap();
        let fresh = SparseLu::factorize(&a1).unwrap();

        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let x_refac = lu.solve(&b).unwrap();
        let x_fresh = fresh.solve(&b).unwrap();
        assert!(vector::max_abs_diff(&x_refac, &x_fresh) < 1e-12);
        assert!(dense_residual(&a1, &x_refac, &b) < 1e-9);
    }

    #[test]
    fn refactorize_rejects_different_pattern() {
        let a = tridiag(10);
        let mut lu = SparseLu::factorize(&a).unwrap();
        let b = tridiag(12);
        assert!(matches!(
            lu.refactorize(&b),
            Err(SparseError::PatternMismatch { .. })
        ));
        // Same size, different pattern.
        let mut t = TripletMatrix::new(10, 10);
        for i in 0..10 {
            t.push(i, i, 1.0);
        }
        assert!(matches!(
            lu.refactorize(&t.to_csr()),
            Err(SparseError::PatternMismatch { .. })
        ));
    }

    #[test]
    fn refactorize_detects_vanished_pivot() {
        let a = tridiag_scaled(8, 3.0, -1.0);
        let mut lu = SparseLu::factorize(&a).unwrap();
        // Same pattern, but numerically singular values (rank-deficient:
        // every row sums the same entries so columns collapse).
        let bad = tridiag_scaled(8, 1e-30, 1e-30);
        assert!(lu.refactorize(&bad).is_err());
    }

    #[test]
    fn refactorize_rejects_non_finite_values() {
        // A NaN (or Inf) sneaking into the new values must surface as an
        // error, never as a silently poisoned factor that later solves
        // propagate into the state vector.
        let a = tridiag(8);
        for bad_value in [f64::NAN, f64::INFINITY] {
            let mut vals = a.values().to_vec();
            vals[3] = bad_value;
            let bad = CsrMatrix::try_from_raw(
                a.rows(),
                a.cols(),
                a.indptr().to_vec(),
                a.indices().to_vec(),
                vals,
            )
            .unwrap();
            let mut lu = SparseLu::factorize(&a).unwrap();
            assert!(
                lu.refactorize(&bad).is_err(),
                "refactorize must reject {bad_value} in the values"
            );
        }
    }

    #[test]
    fn from_symbolic_same_values_is_bit_identical_to_fresh() {
        let a = tridiag(40);
        let fresh = SparseLu::factorize(&a).unwrap();
        let mut ws = LuWorkspace::new();
        let derived =
            SparseLu::from_symbolic(fresh.shared_symbolic(), &a, &LuOptions::default(), &mut ws)
                .unwrap();
        assert_eq!(fresh.l_vals, derived.l_vals);
        assert_eq!(fresh.u_vals, derived.u_vals);
        assert_eq!(fresh.u_diag, derived.u_diag);
        // Both factors share one symbolic analysis.
        assert!(Arc::ptr_eq(&fresh.symbolic, &derived.symbolic));
    }

    #[test]
    fn from_symbolic_new_values_solves_correctly() {
        let a = tridiag_scaled(30, 2.5, -1.0);
        let pilot = SparseLu::factorize(&a).unwrap();
        let b_mat = tridiag_scaled(30, 4.0, -0.5);
        let mut ws = LuWorkspace::new();
        let lu = SparseLu::from_symbolic(
            pilot.shared_symbolic(),
            &b_mat,
            &LuOptions::default(),
            &mut ws,
        )
        .unwrap();
        let rhs: Vec<f64> = (0..30).map(|i| (i as f64 * 0.4).sin()).collect();
        let x = lu.solve(&rhs).unwrap();
        assert!(dense_residual(&b_mat, &x, &rhs) < 1e-10);
    }

    #[test]
    fn from_symbolic_rejects_pattern_mismatch_and_fill_budget() {
        let a = tridiag(12);
        let pilot = SparseLu::factorize(&a).unwrap();
        let mut ws = LuWorkspace::new();
        let wrong = tridiag(13);
        assert!(matches!(
            SparseLu::from_symbolic(
                pilot.shared_symbolic(),
                &wrong,
                &LuOptions::default(),
                &mut ws
            ),
            Err(SparseError::PatternMismatch { .. })
        ));
        let tight = LuOptions {
            fill_budget: Some(4),
            ..LuOptions::default()
        };
        assert!(matches!(
            SparseLu::from_symbolic(pilot.shared_symbolic(), &a, &tight, &mut ws),
            Err(SparseError::FillBudgetExceeded { .. })
        ));
    }

    #[test]
    fn refactorize_after_scaling_matches_exactly() {
        // Scaling the whole matrix by a power of two scales the factors
        // exactly; this exercises the replay arithmetic deterministically.
        let a = tridiag(30);
        let scaled = a.scaled(4.0);
        let mut lu = SparseLu::factorize(&a).unwrap();
        lu.refactorize(&scaled).unwrap();
        let fresh = SparseLu::factorize(&scaled).unwrap();
        assert_eq!(lu.u_diag, fresh.u_diag);
        assert_eq!(lu.l_vals, fresh.l_vals);
        assert_eq!(lu.u_vals, fresh.u_vals);
    }
}
