//! Sparse LU factorization (left-looking Gilbert–Peierls with partial pivoting).
//!
//! This is the direct solver the whole simulator is built on. The exponential
//! Rosenbrock–Euler engine factorizes only the conductance matrix `G` (once
//! per accepted step), while the backward-Euler/Newton–Raphson baseline must
//! factorize `C/h + G` at every Newton iteration and whenever the step size
//! changes — exactly the cost asymmetry the paper exploits.
//!
//! The implementation follows the classic algorithm of Gilbert & Peierls
//! (also used by CSparse/KLU): for each column, a depth-first search over the
//! pattern of the already-computed `L` determines the nonzero pattern of the
//! new column in topological order, after which a sparse triangular solve
//! fills in the numerical values. Row pivoting is threshold partial pivoting
//! with a preference for the diagonal to preserve the fill-reducing column
//! ordering.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};
use crate::ordering::{compute_ordering, OrderingMethod};
use crate::permutation::Permutation;

/// Options controlling the sparse LU factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct LuOptions {
    /// Fill-reducing column ordering applied before factorization.
    pub ordering: OrderingMethod,
    /// Threshold for diagonal-preferring partial pivoting in `(0, 1]`.
    ///
    /// The diagonal entry is accepted as pivot if its magnitude is at least
    /// `pivot_tolerance` times the largest eligible entry in the column;
    /// otherwise the largest entry is used.
    pub pivot_tolerance: f64,
    /// Absolute magnitude below which a pivot is considered numerically zero.
    pub zero_pivot_threshold: f64,
    /// Optional upper bound on `nnz(L) + nnz(U)`.
    ///
    /// The benchmark harness uses this to emulate the out-of-memory failures
    /// the paper reports for the BENR baseline on densely coupled circuits.
    pub fill_budget: Option<usize>,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            ordering: OrderingMethod::Rcm,
            pivot_tolerance: 0.1,
            zero_pivot_threshold: 1e-13,
            fill_budget: None,
        }
    }
}

/// A computed sparse LU factorization `P·A·Q = L·U`.
///
/// `P` is the row permutation chosen by partial pivoting, `Q` the
/// fill-reducing column ordering, `L` unit lower triangular and `U` upper
/// triangular.
///
/// # Examples
///
/// ```
/// use exi_sparse::{SparseLu, TripletMatrix};
///
/// # fn main() -> Result<(), exi_sparse::SparseError> {
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 4.0);
/// t.push(0, 1, 1.0);
/// t.push(1, 0, 1.0);
/// t.push(1, 1, 3.0);
/// let a = t.to_csr();
/// let lu = SparseLu::factorize(&a)?;
/// let x = lu.solve(&[1.0, 2.0])?;
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
/// assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Columns of `L` (strictly below the diagonal), row indices in pivot positions.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// Columns of `U` (strictly above the diagonal), row indices in pivot positions.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    /// Diagonal of `U` in pivot positions.
    u_diag: Vec<f64>,
    /// `pinv[original_row]` = pivot position of that row.
    pinv: Vec<usize>,
    /// Column ordering: position `k` factors original column `q.unmap(k)`.
    q: Permutation,
}

impl SparseLu {
    /// Factorizes `a` with default [`LuOptions`].
    ///
    /// # Errors
    ///
    /// See [`SparseLu::factorize_with`].
    pub fn factorize(a: &CsrMatrix) -> SparseResult<Self> {
        Self::factorize_with(a, &LuOptions::default())
    }

    /// Factorizes `a` with explicit options.
    ///
    /// # Errors
    ///
    /// * [`SparseError::NotSquare`] if `a` is not square.
    /// * [`SparseError::Singular`] if no acceptable pivot exists for a column.
    /// * [`SparseError::FillBudgetExceeded`] if the configured fill budget is hit.
    pub fn factorize_with(a: &CsrMatrix, options: &LuOptions) -> SparseResult<Self> {
        if a.rows() != a.cols() {
            return Err(SparseError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        let q = compute_ordering(a, options.ordering);
        let acsc = CscMatrix::from_csr(a);

        // L columns with ORIGINAL row indices during factorization; remapped to
        // pivot positions at the end.
        let mut l_colptr = vec![0usize; n + 1];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<f64> = Vec::new();
        let mut u_colptr = vec![0usize; n + 1];
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<f64> = Vec::new();
        let mut u_diag = vec![0.0f64; n];
        let mut pinv = vec![usize::MAX; n];

        // Dense workspaces indexed by original row.
        let mut x = vec![0.0f64; n];
        let mut marked = vec![usize::MAX; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::with_capacity(n);

        for jj in 0..n {
            let j_orig = q.unmap(jj);
            let (b_rows, b_vals) = acsc.col(j_orig);

            // --- Symbolic: pattern of x = L^{-1} * A[:, j] via DFS (reach). ---
            topo.clear();
            for &r in b_rows {
                if marked[r] == jj {
                    continue;
                }
                // Iterative DFS from r through the columns of L.
                dfs_stack.push((r, 0));
                marked[r] = jj;
                while let Some(&(node, child_idx)) = dfs_stack.last() {
                    let k = pinv[node];
                    let children: &[usize] = if k == usize::MAX {
                        &[]
                    } else {
                        &l_rows[l_colptr[k]..l_colptr[k + 1]]
                    };
                    let mut next_child = None;
                    let mut ci = child_idx;
                    while ci < children.len() {
                        let c = children[ci];
                        ci += 1;
                        if marked[c] != jj {
                            next_child = Some(c);
                            break;
                        }
                    }
                    dfs_stack.last_mut().expect("stack non-empty").1 = ci;
                    match next_child {
                        Some(c) => {
                            marked[c] = jj;
                            dfs_stack.push((c, 0));
                        }
                        None => {
                            dfs_stack.pop();
                            topo.push(node);
                        }
                    }
                }
            }
            // `topo` is in post-order; reverse gives a topological order for
            // elimination (dependencies first).
            topo.reverse();

            // --- Numeric: sparse lower-triangular solve. ---
            // The workspace `x` is zero outside the previous pattern (it is
            // cleared when columns are stored), so only the right-hand side
            // needs to be scattered.
            for (&r, &v) in b_rows.iter().zip(b_vals.iter()) {
                x[r] = v;
            }
            for &r in topo.iter() {
                let k = pinv[r];
                if k == usize::MAX {
                    continue;
                }
                let xr = x[r];
                if xr == 0.0 {
                    continue;
                }
                for idx in l_colptr[k]..l_colptr[k + 1] {
                    x[l_rows[idx]] -= l_vals[idx] * xr;
                }
            }

            // --- Pivot selection among non-pivotal rows in the pattern. ---
            let mut max_val = 0.0f64;
            let mut max_row = usize::MAX;
            let mut diag_val = 0.0f64;
            let mut diag_ok = false;
            for &r in topo.iter() {
                if pinv[r] != usize::MAX {
                    continue;
                }
                let v = x[r].abs();
                if v > max_val {
                    max_val = v;
                    max_row = r;
                }
                if r == j_orig {
                    diag_val = v;
                    diag_ok = true;
                }
            }
            if max_row == usize::MAX || max_val < options.zero_pivot_threshold {
                return Err(SparseError::Singular { column: jj });
            }
            let pivot_row = if diag_ok && diag_val >= options.pivot_tolerance * max_val {
                j_orig
            } else {
                max_row
            };
            let pivot_val = x[pivot_row];
            pinv[pivot_row] = jj;
            u_diag[jj] = pivot_val;

            // --- Store U column jj (pivotal rows) and L column jj (others). ---
            for &r in topo.iter() {
                let val = x[r];
                x[r] = 0.0; // clear workspace for the next column
                if r == pivot_row {
                    continue;
                }
                if val == 0.0 {
                    continue;
                }
                let k = pinv[r];
                if k != usize::MAX && k != jj {
                    u_rows.push(k);
                    u_vals.push(val);
                } else if k == usize::MAX {
                    l_rows.push(r);
                    l_vals.push(val / pivot_val);
                }
            }
            u_colptr[jj + 1] = u_rows.len();
            l_colptr[jj + 1] = l_rows.len();

            if let Some(budget) = options.fill_budget {
                let fill = l_rows.len() + u_rows.len() + n;
                if fill > budget {
                    return Err(SparseError::FillBudgetExceeded { reached: fill, budget });
                }
            }
        }

        // Remap L row indices from original rows to pivot positions.
        for r in l_rows.iter_mut() {
            *r = pinv[*r];
        }

        Ok(SparseLu {
            n,
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            u_diag,
            pinv,
            q,
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of nonzeros in `L` (including the implicit unit diagonal).
    pub fn nnz_l(&self) -> usize {
        self.l_vals.len() + self.n
    }

    /// Number of nonzeros in `U` (including the diagonal).
    pub fn nnz_u(&self) -> usize {
        self.u_vals.len() + self.n
    }

    /// Total factor fill `nnz(L) + nnz(U)`.
    pub fn fill(&self) -> usize {
        self.nnz_l() + self.nnz_u()
    }

    /// Solves `A x = b` using the computed factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> SparseResult<Vec<f64>> {
        if b.len() != self.n {
            return Err(SparseError::DimensionMismatch {
                op: "lu solve rhs",
                expected: self.n,
                found: b.len(),
            });
        }
        let mut z = vec![0.0f64; self.n];
        // Apply the row permutation: z = P b.
        for (r, &br) in b.iter().enumerate() {
            z[self.pinv[r]] = br;
        }
        // Forward solve with unit lower triangular L (column oriented).
        for j in 0..self.n {
            let xj = z[j];
            if xj == 0.0 {
                continue;
            }
            for idx in self.l_colptr[j]..self.l_colptr[j + 1] {
                z[self.l_rows[idx]] -= self.l_vals[idx] * xj;
            }
        }
        // Backward solve with U (column oriented).
        for j in (0..self.n).rev() {
            z[j] /= self.u_diag[j];
            let xj = z[j];
            if xj == 0.0 {
                continue;
            }
            for idx in self.u_colptr[j]..self.u_colptr[j + 1] {
                z[self.u_rows[idx]] -= self.u_vals[idx] * xj;
            }
        }
        // Undo the column ordering: x[q(k)] = z[k].
        let mut xout = vec![0.0f64; self.n];
        for k in 0..self.n {
            xout[self.q.unmap(k)] = z[k];
        }
        Ok(xout)
    }

    /// Solves `A x = b` for several right-hand sides.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SparseLu::solve`], checked per right-hand side.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> SparseResult<Vec<Vec<f64>>> {
        rhs.iter().map(|b| self.solve(b)).collect()
    }
}

/// Convenience function: factorize `a` and solve a single system.
///
/// # Errors
///
/// Propagates factorization and solve errors from [`SparseLu`].
pub fn solve_sparse(a: &CsrMatrix, b: &[f64]) -> SparseResult<Vec<f64>> {
    SparseLu::factorize(a)?.solve(b)
}

/// Reports the factor fill of a matrix under a given ordering without keeping
/// the factors (used by the Fig. 1 reproduction).
///
/// Returns `(nnz_l, nnz_u)`.
///
/// # Errors
///
/// Propagates factorization errors from [`SparseLu`].
pub fn factor_fill(a: &CsrMatrix, ordering: OrderingMethod) -> SparseResult<(usize, usize)> {
    let lu = SparseLu::factorize_with(a, &LuOptions { ordering, ..LuOptions::default() })?;
    Ok((lu.nnz_l(), lu.nnz_u()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vector, TripletMatrix};

    fn dense_residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x);
        vector::max_abs_diff(&ax, b)
    }

    fn tridiag(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.5);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_small_dense_system() {
        let mut t = TripletMatrix::new(3, 3);
        let rows = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 4.0]];
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                t.push(i, j, v);
            }
        }
        let a = t.to_csr();
        let b = vec![1.0, 2.0, 3.0];
        let lu = SparseLu::factorize(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(dense_residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn solves_tridiagonal_systems_of_various_sizes() {
        for n in [1usize, 2, 3, 10, 50, 200] {
            let a = tridiag(n);
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
            let x = solve_sparse(&a, &b).unwrap();
            assert!(dense_residual(&a, &x, &b) < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn all_orderings_give_same_solution() {
        let a = tridiag(30);
        let b: Vec<f64> = (0..30).map(|i| i as f64 * 0.1 - 1.0).collect();
        let mut solutions = Vec::new();
        for ordering in [OrderingMethod::Natural, OrderingMethod::Rcm, OrderingMethod::MinDegree] {
            let lu =
                SparseLu::factorize_with(&a, &LuOptions { ordering, ..LuOptions::default() })
                    .unwrap();
            solutions.push(lu.solve(&b).unwrap());
        }
        for s in &solutions[1..] {
            assert!(vector::max_abs_diff(&solutions[0], s) < 1e-10);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]] requires row pivoting.
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let a = t.to_csr();
        let x = solve_sparse(&a, &[3.0, 5.0]).unwrap();
        assert!((x[1] - 3.0).abs() < 1e-14);
        assert!((x[0] - 5.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        // Column 1 is entirely zero.
        let a = t.to_csr();
        assert!(matches!(SparseLu::factorize(&a), Err(SparseError::Singular { .. })));
    }

    #[test]
    fn numerically_singular_matrix_is_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 4.0);
        let a = t.to_csr();
        assert!(matches!(SparseLu::factorize(&a), Err(SparseError::Singular { .. })));
    }

    #[test]
    fn fill_budget_is_enforced() {
        let a = tridiag(100);
        let opts = LuOptions { fill_budget: Some(50), ..LuOptions::default() };
        assert!(matches!(
            SparseLu::factorize_with(&a, &opts),
            Err(SparseError::FillBudgetExceeded { .. })
        ));
        let opts = LuOptions { fill_budget: Some(10_000), ..LuOptions::default() };
        assert!(SparseLu::factorize_with(&a, &opts).is_ok());
    }

    #[test]
    fn non_square_is_rejected() {
        let a = CsrMatrix::zeros(2, 3);
        assert!(matches!(SparseLu::factorize(&a), Err(SparseError::NotSquare { .. })));
    }

    #[test]
    fn fill_counts_are_consistent() {
        let a = tridiag(20);
        let lu = SparseLu::factorize(&a).unwrap();
        assert!(lu.nnz_l() >= 20);
        assert!(lu.nnz_u() >= 20);
        assert_eq!(lu.fill(), lu.nnz_l() + lu.nnz_u());
        let (l, u) = factor_fill(&a, OrderingMethod::Rcm).unwrap();
        assert_eq!((l, u), (lu.nnz_l(), lu.nnz_u()));
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let a = tridiag(15);
        let rhs: Vec<Vec<f64>> =
            (0..3).map(|k| (0..15).map(|i| (i + k) as f64).collect()).collect();
        let lu = SparseLu::factorize(&a).unwrap();
        let xs = lu.solve_many(&rhs).unwrap();
        for (x, b) in xs.iter().zip(rhs.iter()) {
            assert!(dense_residual(&a, x, b) < 1e-10);
        }
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let a = tridiag(4);
        let lu = SparseLu::factorize(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn random_sparse_spd_like_systems() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..5 {
            let n = 40 + trial * 13;
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.push(i, i, 10.0 + rng.gen::<f64>());
            }
            for _ in 0..(3 * n) {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if i != j {
                    let v = rng.gen_range(-1.0..1.0);
                    t.push(i, j, v);
                }
            }
            let a = t.to_csr();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = solve_sparse(&a, &b).unwrap();
            assert!(dense_residual(&a, &x, &b) < 1e-9, "trial {trial}");
        }
    }
}
