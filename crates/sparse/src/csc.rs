//! Compressed sparse column (CSC) matrices.
//!
//! The sparse LU factorization ([`crate::lu::SparseLu`]) is column-oriented
//! (Gilbert–Peierls), so it consumes matrices in CSC form. The simulator keeps
//! its matrices in CSR and converts on demand; the conversion is a single
//! counting pass.

use crate::csr::CsrMatrix;

/// An immutable sparse matrix in compressed sparse column format.
///
/// Row indices within each column are sorted and unique.
///
/// # Examples
///
/// ```
/// use exi_sparse::{CscMatrix, TripletMatrix};
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(1, 0, 2.0);
/// t.push(1, 1, 3.0);
/// let a = CscMatrix::from_csr(&t.to_csr());
/// let (rows, vals) = a.col(0);
/// assert_eq!(rows, &[0, 1]);
/// assert_eq!(vals, &[1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Creates an empty (all-zero) `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CscMatrix {
            rows,
            cols,
            colptr: vec![0; cols + 1],
            rowidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Converts a CSR matrix into CSC form.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        let rows = a.rows();
        let cols = a.cols();
        let mut colptr = vec![0usize; cols + 1];
        for &c in a.indices() {
            colptr[c + 1] += 1;
        }
        for j in 0..cols {
            colptr[j + 1] += colptr[j];
        }
        let mut rowidx = vec![0usize; a.nnz()];
        let mut values = vec![0.0f64; a.nnz()];
        let mut next = colptr.clone();
        for i in 0..rows {
            let (ci, vi) = a.row(i);
            for (c, v) in ci.iter().zip(vi.iter()) {
                let pos = next[*c];
                rowidx[pos] = i;
                values[pos] = *v;
                next[*c] += 1;
            }
        }
        CscMatrix {
            rows,
            cols,
            colptr,
            rowidx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column pointer array (`cols + 1` entries).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row index array.
    pub fn rowidx(&self) -> &[usize] {
        &self.rowidx
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Returns the stored row indices and values of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        assert!(j < self.cols, "column index out of bounds");
        let s = self.colptr[j];
        let e = self.colptr[j + 1];
        (&self.rowidx[s..e], &self.values[s..e])
    }

    /// Returns the value at `(i, j)`, or `0.0` if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i >= self.rows || j >= self.cols {
            return 0.0;
        }
        let (rows, vals) = self.col(j);
        match rows.binary_search(&i) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Converts back to CSR form.
    pub fn to_csr(&self) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> = (0..self.cols)
            .flat_map(|j| {
                let (rows, vals) = self.col(j);
                rows.iter()
                    .zip(vals.iter())
                    .map(move |(r, v)| (*r, j, *v))
                    .collect::<Vec<_>>()
            })
            .collect();
        CsrMatrix::from_triplets(self.rows, self.cols, &triplets)
    }
}

impl From<&CsrMatrix> for CscMatrix {
    fn from(a: &CsrMatrix) -> Self {
        CscMatrix::from_csr(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn sample_csr() -> CsrMatrix {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 4.0);
        t.push(0, 2, 1.0);
        t.push(1, 1, 5.0);
        t.push(2, 0, 2.0);
        t.push(2, 2, 3.0);
        t.to_csr()
    }

    #[test]
    fn csr_to_csc_roundtrip() {
        let a = sample_csr();
        let c = CscMatrix::from_csr(&a);
        assert_eq!(c.nnz(), a.nnz());
        assert_eq!(c.get(0, 2), 1.0);
        assert_eq!(c.get(2, 0), 2.0);
        assert_eq!(c.get(1, 0), 0.0);
        let back = c.to_csr();
        assert_eq!(back, a);
    }

    #[test]
    fn columns_are_sorted() {
        let a = sample_csr();
        let c = CscMatrix::from_csr(&a);
        for j in 0..c.cols() {
            let (rows, _) = c.col(j);
            for w in rows.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn from_trait() {
        let a = sample_csr();
        let c: CscMatrix = (&a).into();
        assert_eq!(c.rows(), 3);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CscMatrix::zeros(4, 2);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.colptr().len(), 3);
    }
}
