//! Small dense matrices.
//!
//! The Krylov-subspace kernels project the large sparse problem onto an
//! `m x m` upper-Hessenberg matrix with `m` typically below 100. All dense
//! work (matrix exponential, phi functions, small solves) happens on
//! [`DenseMatrix`], a plain row-major `Vec<f64>` container. This is not meant
//! to compete with a BLAS; it is deliberately simple, allocation-friendly and
//! easy to audit.

use crate::error::{SparseError, SparseResult};

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use exi_sparse::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = DenseMatrix::identity(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        DenseMatrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: wrong data length");
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "dense get out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "dense set out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to the entry at `(i, j)`.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "dense add_to out of bounds");
        self.data[i * self.cols + j] += v;
    }

    /// Returns a view of row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "dense row out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Sets every entry to `v` (used to recycle scratch matrices in hot loops).
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Returns the top-left `r x c` sub-matrix as a new matrix.
    ///
    /// Used to extract `H_m` from the `(m+1) x m` Arnoldi Hessenberg matrix.
    ///
    /// # Panics
    ///
    /// Panics if `r > rows` or `c > cols`.
    pub fn submatrix(&self, r: usize, c: usize) -> DenseMatrix {
        assert!(r <= self.rows && c <= self.cols, "submatrix out of bounds");
        let mut out = DenseMatrix::zeros(r, c);
        for i in 0..r {
            for j in 0..c {
                out.set(i, j, self.get(i, j));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.get(k, j);
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Returns `self + other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn sub(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "sub: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns `alpha * self`.
    pub fn scale(&self, alpha: f64) -> DenseMatrix {
        let data = self.data.iter().map(|a| alpha * a).collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// One-norm (maximum absolute column sum).
    pub fn norm_one(&self) -> f64 {
        let mut best = 0.0_f64;
        for j in 0..self.cols {
            let mut s = 0.0;
            for i in 0..self.rows {
                s += self.get(i, j).abs();
            }
            best = best.max(s);
        }
        best
    }

    /// Infinity-norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..self.rows {
            let s: f64 = self.row(i).iter().map(|v| v.abs()).sum();
            best = best.max(s);
        }
        best
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Solves the dense linear system `self * x = b` with partial pivoting.
    ///
    /// Intended for the small projected systems produced by the Krylov
    /// kernels (`m` up to a few hundred).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] if the matrix is not square,
    /// [`SparseError::DimensionMismatch`] if `b` has the wrong length, and
    /// [`SparseError::Singular`] if a pivot collapses below `1e-300`.
    pub fn solve(&self, b: &[f64]) -> SparseResult<Vec<f64>> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(SparseError::DimensionMismatch {
                op: "dense solve rhs",
                expected: self.rows,
                found: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for k in 0..n {
            // Partial pivoting: find the largest entry in column k at or below row k.
            let mut piv = k;
            let mut piv_val = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > piv_val {
                    piv = i;
                    piv_val = v;
                }
            }
            if piv_val < 1e-300 {
                return Err(SparseError::Singular {
                    column: k,
                    unknown: None,
                });
            }
            if piv != k {
                for j in 0..n {
                    a.swap(k * n + j, piv * n + j);
                }
                x.swap(k, piv);
            }
            let akk = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / akk;
                if factor == 0.0 {
                    continue;
                }
                for j in k..n {
                    a[i * n + j] -= factor * a[k * n + j];
                }
                x[i] -= factor * x[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut s = x[k];
            for j in (k + 1)..n {
                s -= a[k * n + j] * x[j];
            }
            x[k] = s / a[k * n + k];
        }
        Ok(x)
    }

    /// Computes the inverse of the matrix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DenseMatrix::solve`].
    pub fn inverse(&self) -> SparseResult<DenseMatrix> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        let mut inv = DenseMatrix::zeros(n, n);
        // Solve against each unit vector; adequate for the small matrices we handle.
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for (i, &v) in col.iter().enumerate() {
                inv.set(i, j, v);
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

impl Default for DenseMatrix {
    fn default() -> Self {
        DenseMatrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 2);
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(2, 2), 1.0);
        assert_eq!(i.get(0, 2), 0.0);
    }

    #[test]
    fn matmul_matvec_transpose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(1, 1), 50.0);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        let t = a.transpose();
        assert_eq!(t.get(0, 1), 3.0);
    }

    #[test]
    fn norms() {
        let a = DenseMatrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(a.norm_one(), 6.0);
        assert_eq!(a.norm_inf(), 7.0);
        assert!((a.norm_fro() - (30.0_f64).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn solve_small_system() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        // Solution of [[2,1],[1,3]] x = [3,5] is [0.8, 1.4]
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SparseError::Singular { .. })
        ));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = DenseMatrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        let i = DenseMatrix::identity(2);
        for r in 0..2 {
            for c in 0..2 {
                assert!((prod.get(r, c) - i.get(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn submatrix_extracts_leading_block() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let s = a.submatrix(2, 2);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.get(1, 1), 5.0);
    }

    #[test]
    fn non_square_solve_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[0.0, 0.0]),
            Err(SparseError::NotSquare { .. })
        ));
    }
}
