//! Small helpers for dense vectors represented as `&[f64]` / `Vec<f64>`.
//!
//! The simulator manipulates state vectors (nodal voltages and branch
//! currents) as plain `Vec<f64>`. These free functions provide the handful of
//! BLAS-1 style operations the integrators need, with explicit names rather
//! than operator overloading so call sites in the numerical code read like the
//! formulas in the paper.

/// Euclidean (2-) norm of a vector.
///
/// # Examples
///
/// ```
/// let v = [3.0, 4.0];
/// assert_eq!(exi_sparse::vector::norm2(&v), 5.0);
/// ```
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Infinity norm (maximum absolute entry) of a vector; `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// let v = [1.0, -7.0, 2.0];
/// assert_eq!(exi_sparse::vector::norm_inf(&v), 7.0);
/// ```
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
}

/// Dot product of two vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(exi_sparse::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Maximum absolute difference between two vectors (`||a - b||_inf`).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b.iter())
        .fold(0.0_f64, |acc, (x, y)| acc.max((x - y).abs()))
}

/// Root-mean-square difference between two vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths or are empty.
pub fn rms_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rms_diff: length mismatch");
    assert!(!a.is_empty(), "rms_diff: empty vectors");
    let s: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    (s / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[1.0, -7.0, 2.0]), 7.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn dot_and_axpy() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![1.0, 1.0, 1.0];
        assert_eq!(dot(&x, &y), 6.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn elementwise() {
        let a = vec![1.0, 2.0];
        let b = vec![0.5, 4.0];
        assert_eq!(sub(&a, &b), vec![0.5, -2.0]);
        assert_eq!(add(&a, &b), vec![1.5, 6.0]);
        assert_eq!(max_abs_diff(&a, &b), 2.0);
        assert!((rms_diff(&a, &b) - ((0.25 + 4.0) / 2.0_f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
