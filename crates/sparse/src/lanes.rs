//! Batched **value-lane** LU kernels: one symbolic analysis, `K` numeric
//! corners per pattern pass.
//!
//! A corner/Monte-Carlo sweep factorizes and solves many matrices that share
//! one sparsity pattern and differ only in values. The scalar path walks the
//! factor pattern once *per corner*; the kernels here walk it **once per
//! batch**, carrying `K` value lanes through every pattern visit in
//! structure-of-arrays, lane-major storage ([`LaneVec`]: element `i` of lane
//! `r` lives at `data[i * lanes + r]`, so the innermost loop touches
//! contiguous memory).
//!
//! # Bit-identity contract
//!
//! Every lane of [`LaneFactors::refactorize_lanes`] and
//! [`LaneFactors::solve_lanes`] performs **exactly the floating-point
//! operation sequence** of the scalar [`SparseLu::refactorize_with`](crate::SparseLu::refactorize_with) /
//! [`SparseLu::solve_into`](crate::SparseLu::solve_into) on that lane's values — same operations, same
//! order, same rounding. In particular the scalar kernels' `== 0.0` skip
//! guards are preserved *per lane*: executing `x -= l * 0.0` unconditionally
//! is **not** a bitwise no-op (`-0.0 - (l * -0.0)` can flip the sign of a
//! negative zero), so the lane loops branch per lane exactly where the scalar
//! loops branch. Only the guard-free phases (value scatter, permutation,
//! diagonal scaling, workspace clears) run as explicit 4-wide chunks for
//! auto-vectorization. Reassociating across lanes is always safe (lanes are
//! independent); reassociating **within** a lane is not, and none of the
//! kernels do it — the same rule the unrolled SpMV follows.
//!
//! # Per-lane failure masking
//!
//! A lane whose frozen pivot vanishes (or whose elimination grows out of
//! bounds) is *masked out* — its factor contents become unspecified and every
//! later pattern visit skips it — while the remaining lanes finish
//! unperturbed. The caller detaches failed lanes to the scalar path (which
//! re-pivots); the batch is never poisoned.

use std::sync::Arc;

use crate::csr::CsrMatrix;
use crate::error::{SparseError, SparseResult};
use crate::lu::{LuOptions, SymbolicLu};

/// Width of the explicit inner chunks in the guard-free lane loops.
const LANE_CHUNK: usize = 4;

/// Bound on `max |L|` above which a lane's pivot-order-preserving
/// refactorization is rejected — the same constant the scalar
/// [`SparseLu::refactorize_with`](crate::SparseLu::refactorize_with)(crate::SparseLu::refactorize_with) uses.
const REFACTOR_GROWTH_LIMIT: f64 = 1e10;

/// Sentinel for [`LaneFactors::solve_lanes`] `lane_map` entries: the
/// right-hand-side lane is masked out and neither read nor written.
pub const LANE_DETACHED: usize = usize::MAX;

/// Lane-major dense storage for `len` elements × `lanes` value lanes.
///
/// Element `i` of lane `r` is `data[i * lanes + r]`: all lanes of one element
/// are contiguous, so batched kernels stream the structural indices once and
/// the innermost (lane) loop is unit-stride.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneVec {
    len: usize,
    lanes: usize,
    data: Vec<f64>,
}

impl LaneVec {
    /// Creates a zero-filled lane vector of `len` elements × `lanes` lanes.
    pub fn zeros(len: usize, lanes: usize) -> Self {
        LaneVec {
            len,
            lanes,
            data: vec![0.0; len * lanes],
        }
    }

    /// Number of elements per lane.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of value lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Element `i` of lane `lane`.
    #[inline]
    pub fn get(&self, i: usize, lane: usize) -> f64 {
        self.data[i * self.lanes + lane]
    }

    /// Sets element `i` of lane `lane`.
    #[inline]
    pub fn set(&mut self, i: usize, lane: usize, value: f64) {
        self.data[i * self.lanes + lane] = value;
    }

    /// Copies a scalar vector into lane `lane` (`src.len()` must equal
    /// [`LaneVec::len`]).
    pub fn load_lane(&mut self, lane: usize, src: &[f64]) {
        assert_eq!(src.len(), self.len, "lane load length mismatch");
        let lanes = self.lanes;
        for (i, &v) in src.iter().enumerate() {
            self.data[i * lanes + lane] = v;
        }
    }

    /// Copies lane `lane` out into a scalar vector (`dst.len()` must equal
    /// [`LaneVec::len`]).
    pub fn store_lane(&self, lane: usize, dst: &mut [f64]) {
        assert_eq!(dst.len(), self.len, "lane store length mismatch");
        let lanes = self.lanes;
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.data[i * lanes + lane];
        }
    }

    /// The raw lane-major storage (`len × lanes` values).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Fills every element of every lane with `value`, in 4-wide chunks.
    pub fn fill(&mut self, value: f64) {
        let mut chunks = self.data.chunks_exact_mut(LANE_CHUNK);
        for c in &mut chunks {
            c[0] = value;
            c[1] = value;
            c[2] = value;
            c[3] = value;
        }
        for v in chunks.into_remainder() {
            *v = value;
        }
    }
}

/// Reusable scratch for the batched kernels (the lane analogue of
/// [`crate::LuWorkspace`]); grows to the largest `len × lanes` product seen.
#[derive(Debug, Clone, Default)]
pub struct LaneWorkspace {
    scratch: Vec<f64>,
}

impl LaneWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        LaneWorkspace::default()
    }

    /// A scratch slice of `len × lanes` values with unspecified contents.
    fn slice(&mut self, len: usize, lanes: usize) -> &mut [f64] {
        let need = len * lanes;
        if self.scratch.len() < need {
            self.scratch.resize(need, 0.0);
        }
        &mut self.scratch[..need]
    }

    /// A zero-initialized scratch slice of `len × lanes` values.
    fn zeroed(&mut self, len: usize, lanes: usize) -> &mut [f64] {
        let s = self.slice(len, lanes);
        s.fill(0.0);
        s
    }
}

/// Numeric LU factors for `K` value lanes over one shared [`SymbolicLu`].
///
/// The lane sibling of [`SparseLu`](crate::SparseLu): one symbolic analysis
/// (ordering, pivot order, factor patterns) drives `K` numeric factors stored
/// lane-major, refactorized by one pass over the recorded elimination
/// ([`LaneFactors::refactorize_lanes`]) and applied to `K` right-hand sides
/// by one pass over the factor patterns ([`LaneFactors::solve_lanes`]).
#[derive(Debug, Clone)]
pub struct LaneFactors {
    symbolic: Arc<SymbolicLu>,
    lanes: usize,
    l_vals: LaneVec,
    u_vals: LaneVec,
    u_diag: LaneVec,
    /// Smallest pivot magnitude a lane refactorization accepts (same
    /// derivation as the scalar factor: `pivot_tolerance ×
    /// zero_pivot_threshold`).
    pivot_floor: f64,
    /// Per-lane validity: `false` once a lane's refactorization failed (its
    /// factor contents are unspecified and solves skip it).
    ok: Vec<bool>,
    /// Lane stride of the LAST refactorization pass: the number of distinct
    /// matrices it was handed (≤ `lanes`). Value deduplication routinely
    /// collapses a batch to a handful of representatives, and packing the
    /// factor values at the representative count keeps a deduplicated pass's
    /// memory traffic proportional to the distinct work, not the allocation.
    stride: usize,
}

impl LaneFactors {
    /// Allocates lane factors for `lanes` value lanes over a shared symbolic
    /// analysis. The factors hold no numbers until the first
    /// [`LaneFactors::refactorize_lanes`]; every lane starts masked out.
    pub fn new(symbolic: Arc<SymbolicLu>, lanes: usize, options: &LuOptions) -> Self {
        let strict_l = symbolic.nnz_l() - symbolic.dim();
        let strict_u = symbolic.nnz_u() - symbolic.dim();
        LaneFactors {
            lanes,
            l_vals: LaneVec::zeros(strict_l, lanes),
            u_vals: LaneVec::zeros(strict_u, lanes),
            u_diag: LaneVec::zeros(symbolic.dim(), lanes),
            pivot_floor: options.pivot_tolerance * options.zero_pivot_threshold,
            ok: vec![false; lanes],
            stride: lanes,
            symbolic,
        }
    }

    /// The shared symbolic analysis backing every lane.
    pub fn symbolic(&self) -> &Arc<SymbolicLu> {
        &self.symbolic
    }

    /// Number of value lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Whether lane `lane` holds a valid factor from the last
    /// refactorization.
    pub fn lane_ok(&self, lane: usize) -> bool {
        self.ok[lane]
    }

    /// Numerically refactorizes lanes `0..mats.len()` in one pass over the
    /// recorded elimination, using the default [`ScalarLanes`] backend.
    ///
    /// `mats[r]` supplies lane `r`'s values; every matrix must have exactly
    /// the analyzed sparsity pattern. Fewer matrices than allocated lanes is
    /// the **value-deduplication** shape: `R` distinct factors can serve `K`
    /// right-hand-side lanes through [`LaneFactors::solve_lanes`]'s
    /// `lane_map`; the unsupplied lanes are masked out. Returns one result
    /// per supplied matrix: a failed lane ([`SparseError::Singular`] /
    /// [`SparseError::UnstableRefactorization`] /
    /// [`SparseError::PatternMismatch`]) is masked out while the remaining
    /// lanes complete — each surviving lane's factor is bit-identical to a
    /// scalar [`SparseLu::refactorize_with`](crate::SparseLu::refactorize_with)(crate::SparseLu::refactorize_with)
    /// on the same values.
    pub fn refactorize_lanes(
        &mut self,
        mats: &[&CsrMatrix],
        ws: &mut LaneWorkspace,
    ) -> Vec<SparseResult<()>> {
        ScalarLanes::refactorize_lanes(self, mats, ws)
    }

    /// Solves `A_r · x = b_k` for `K` right-hand-side lanes in one pass over
    /// the factor patterns, using the default [`ScalarLanes`] backend.
    ///
    /// `lane_map[k]` names the factor lane solving right-hand-side lane `k` —
    /// several rhs lanes may share one factor lane (value deduplication:
    /// bitwise-equal matrices need one factor) — or [`LANE_DETACHED`] to mask
    /// lane `k` out entirely (neither read nor written). Each mapped lane's
    /// result is bit-identical to a scalar
    /// [`SparseLu::solve_into`](crate::SparseLu::solve_into) against that
    /// factor.
    ///
    /// # Errors
    ///
    /// [`SparseError::DimensionMismatch`] on shape disagreements, and
    /// [`SparseError::Singular`] when `lane_map` routes a rhs lane to a
    /// masked-out (failed) factor lane.
    pub fn solve_lanes(
        &self,
        rhs: &LaneVec,
        lane_map: &[usize],
        out: &mut LaneVec,
        ws: &mut LaneWorkspace,
    ) -> SparseResult<()> {
        ScalarLanes::solve_lanes(self, rhs, lane_map, out, ws)
    }
}

/// A batched execution backend for the lane kernels.
///
/// The trait fixes the *what* (one pattern pass, `K` value lanes,
/// scalar-bit-identical per lane); implementations choose the *how*. The
/// portable [`ScalarLanes`] backend structures its inner loops for
/// auto-vectorization; the seam leaves room for explicit SIMD intrinsics or
/// accelerator offload without touching the callers.
pub trait LaneBackend {
    /// Batched numeric refactorization; see
    /// [`LaneFactors::refactorize_lanes`].
    fn refactorize_lanes(
        factors: &mut LaneFactors,
        mats: &[&CsrMatrix],
        ws: &mut LaneWorkspace,
    ) -> Vec<SparseResult<()>>;

    /// Batched triangular solves; see [`LaneFactors::solve_lanes`].
    fn solve_lanes(
        factors: &LaneFactors,
        rhs: &LaneVec,
        lane_map: &[usize],
        out: &mut LaneVec,
        ws: &mut LaneWorkspace,
    ) -> SparseResult<()>;
}

/// The portable reference backend: plain Rust loops, lane-major unit-stride
/// inner iteration, explicit 4-wide chunks in the guard-free phases. This is
/// the backend every other implementation is differentially tested against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarLanes;

impl LaneBackend for ScalarLanes {
    fn refactorize_lanes(
        factors: &mut LaneFactors,
        mats: &[&CsrMatrix],
        ws: &mut LaneWorkspace,
    ) -> Vec<SparseResult<()>> {
        let lanes = factors.lanes;
        let width = mats.len();
        assert!(
            width <= lanes,
            "at most one matrix per allocated value lane"
        );
        let s = Arc::clone(&factors.symbolic);
        let n = s.n;
        // Pack the pass at the representative count: after value dedup a
        // K-lane batch routinely needs only a few distinct factors, and a
        // `lanes`-strided walk would pay the full allocation in memory
        // traffic anyway.
        let stride = width.max(1);
        factors.stride = stride;

        let mut results: Vec<SparseResult<()>> = Vec::with_capacity(width);
        for (r, mat) in mats.iter().enumerate() {
            if s.matches_pattern(mat) {
                factors.ok[r] = true;
                results.push(Ok(()));
            } else {
                factors.ok[r] = false;
                results.push(Err(SparseError::PatternMismatch {
                    expected_nnz: s.a_nnz(),
                    found_nnz: mat.nnz(),
                }));
            }
        }
        // Lanes beyond the supplied matrices hold no factor this round.
        for ok in factors.ok[width..].iter_mut() {
            *ok = false;
        }
        // A mismatched lane's value array can be SHORTER than the symbolic
        // pattern (`acol_src` indexes past its end), so its source reads are
        // not harmless — route the scatter through the guarded path below.
        let all_ok = factors.ok[..width].iter().all(|&ok| ok);

        let x = ws.zeroed(n, stride);
        // Per-lane fail helper: record the error, mask the lane.
        let fail = |ok: &mut [bool], results: &mut [SparseResult<()>], r: usize, e: SparseError| {
            ok[r] = false;
            results[r] = Err(e);
        };
        // Stack buffer for the per-lane pivots / update sources of one column.
        let mut pivots = vec![0.0f64; stride];

        for jj in 0..n {
            // --- Scatter A[:, q(jj)] into pivot-position slots, all supplied
            // lanes. Guard-free: failed lanes scatter harmlessly (their slots
            // are never read again and the workspace is re-zeroed per call).
            for t in s.acol_ptr[jj]..s.acol_ptr[jj + 1] {
                let base = s.acol_pos[t] * stride;
                let src = s.acol_src[t];
                let dst = &mut x[base..base + width];
                if all_ok {
                    let mut chunks = dst.chunks_exact_mut(LANE_CHUNK);
                    let mut r = 0usize;
                    for c in &mut chunks {
                        c[0] = mats[r].values()[src];
                        c[1] = mats[r + 1].values()[src];
                        c[2] = mats[r + 2].values()[src];
                        c[3] = mats[r + 3].values()[src];
                        r += LANE_CHUNK;
                    }
                    for v in chunks.into_remainder() {
                        *v = mats[r].values()[src];
                        r += 1;
                    }
                } else {
                    // Guarded scatter: mismatched lanes write 0.0 (their
                    // slots are masked out of every later phase anyway).
                    for (r, v) in dst.iter_mut().enumerate() {
                        *v = if factors.ok[r] {
                            mats[r].values()[src]
                        } else {
                            0.0
                        };
                    }
                }
            }

            // --- Replay the left-looking update in the recorded order. The
            // per-lane `xp == 0.0` skip mirrors the scalar kernel exactly
            // (executing the update with xp == 0.0 is not a bitwise no-op).
            for t in s.u_colptr[jj]..s.u_colptr[jj + 1] {
                let p = s.u_rows[t];
                let pbase = p * stride;
                pivots[..width].copy_from_slice(&x[pbase..pbase + width]);
                let any_active = pivots
                    .iter()
                    .zip(factors.ok.iter())
                    .any(|(&xp, &ok)| ok && xp != 0.0);
                if !any_active {
                    continue;
                }
                for idx in s.l_colptr[p]..s.l_colptr[p + 1] {
                    let row_base = s.l_rows[idx] * stride;
                    let lbase = idx * stride;
                    for r in 0..width {
                        let xp = pivots[r];
                        if factors.ok[r] && xp != 0.0 {
                            x[row_base + r] -= factors.l_vals.data[lbase + r] * xp;
                        }
                    }
                }
            }

            // --- Frozen pivot, per lane.
            let jbase = jj * stride;
            for r in 0..width {
                if !factors.ok[r] {
                    continue;
                }
                let pivot = x[jbase + r];
                if !pivot.is_finite() || pivot.abs() < factors.pivot_floor {
                    fail(
                        &mut factors.ok,
                        &mut results,
                        r,
                        SparseError::Singular {
                            column: jj,
                            unknown: Some(s.q.unmap(jj)),
                        },
                    );
                    continue;
                }
                factors.u_diag.data[jbase + r] = pivot;
                pivots[r] = pivot;
            }

            // --- Gather U column jj back out (and clear), per lane with the
            // scalar finiteness check.
            for t in s.u_colptr[jj]..s.u_colptr[jj + 1] {
                let pbase = s.u_rows[t] * stride;
                let ubase = t * stride;
                for r in 0..width {
                    if !factors.ok[r] {
                        continue;
                    }
                    let uv = x[pbase + r];
                    if !uv.is_finite() {
                        fail(
                            &mut factors.ok,
                            &mut results,
                            r,
                            SparseError::UnstableRefactorization {
                                growth: f64::INFINITY,
                            },
                        );
                        continue;
                    }
                    factors.u_vals.data[ubase + r] = uv;
                    x[pbase + r] = 0.0;
                }
            }
            // Clear the pivot slots (all lanes — failed lanes hold garbage
            // that must not leak into later columns of surviving lanes; the
            // slots are lane-separated, clearing is always safe).
            for v in x[jbase..jbase + width].iter_mut() {
                *v = 0.0;
            }

            // --- Gather L column jj (scaled by the pivot), per lane with the
            // scalar growth check.
            for t in s.l_colptr[jj]..s.l_colptr[jj + 1] {
                let pbase = s.l_rows[t] * stride;
                let lbase = t * stride;
                for r in 0..width {
                    if !factors.ok[r] {
                        x[pbase + r] = 0.0;
                        continue;
                    }
                    let lv = x[pbase + r] / pivots[r];
                    let magnitude = lv.abs();
                    if magnitude > REFACTOR_GROWTH_LIMIT || magnitude.is_nan() {
                        fail(
                            &mut factors.ok,
                            &mut results,
                            r,
                            SparseError::UnstableRefactorization { growth: magnitude },
                        );
                        x[pbase + r] = 0.0;
                        continue;
                    }
                    factors.l_vals.data[lbase + r] = lv;
                    x[pbase + r] = 0.0;
                }
            }
        }
        results
    }

    fn solve_lanes(
        factors: &LaneFactors,
        rhs: &LaneVec,
        lane_map: &[usize],
        out: &mut LaneVec,
        ws: &mut LaneWorkspace,
    ) -> SparseResult<()> {
        let s = &factors.symbolic;
        let n = s.n;
        let k_lanes = rhs.lanes();
        if rhs.len() != n {
            return Err(SparseError::DimensionMismatch {
                op: "lane solve rhs",
                expected: n,
                found: rhs.len(),
            });
        }
        if out.len() != n || out.lanes() != k_lanes {
            return Err(SparseError::DimensionMismatch {
                op: "lane solve output",
                expected: n * k_lanes,
                found: out.len() * out.lanes(),
            });
        }
        if lane_map.len() != k_lanes {
            return Err(SparseError::DimensionMismatch {
                op: "lane solve map",
                expected: k_lanes,
                found: lane_map.len(),
            });
        }
        // Active rhs lanes and their factor lanes, validated up front.
        let mut active: Vec<(usize, usize)> = Vec::with_capacity(k_lanes);
        for (k, &rep) in lane_map.iter().enumerate() {
            if rep == LANE_DETACHED {
                continue;
            }
            if rep >= factors.stride || !factors.ok[rep] {
                return Err(SparseError::Singular {
                    column: 0,
                    unknown: None,
                });
            }
            active.push((k, rep));
        }

        let z = ws.slice(n, k_lanes);
        // Apply the row permutation: z = P b, active lanes only.
        for r in 0..n {
            let src = r * k_lanes;
            let dst = s.pinv[r] * k_lanes;
            for &(k, _) in &active {
                z[dst + k] = rhs.data[src + k];
            }
        }
        let mut xj = vec![0.0f64; k_lanes];
        // Forward solve with unit lower triangular L (column oriented); the
        // per-lane `xj == 0.0` skip mirrors the scalar kernel.
        for j in 0..n {
            let jbase = j * k_lanes;
            xj.copy_from_slice(&z[jbase..jbase + k_lanes]);
            let mut any = false;
            for &(k, _) in &active {
                if xj[k] != 0.0 {
                    any = true;
                    break;
                }
            }
            if !any {
                continue;
            }
            for idx in s.l_colptr[j]..s.l_colptr[j + 1] {
                let row_base = s.l_rows[idx] * k_lanes;
                let lbase = idx * factors.stride;
                for &(k, rep) in &active {
                    let v = xj[k];
                    if v != 0.0 {
                        z[row_base + k] -= factors.l_vals.data[lbase + rep] * v;
                    }
                }
            }
        }
        // Backward solve with U (column oriented).
        for j in (0..n).rev() {
            let jbase = j * k_lanes;
            let dbase = j * factors.stride;
            for &(k, rep) in &active {
                z[jbase + k] /= factors.u_diag.data[dbase + rep];
                xj[k] = z[jbase + k];
            }
            let mut any = false;
            for &(k, _) in &active {
                if xj[k] != 0.0 {
                    any = true;
                    break;
                }
            }
            if !any {
                continue;
            }
            for idx in s.u_colptr[j]..s.u_colptr[j + 1] {
                let row_base = s.u_rows[idx] * k_lanes;
                let ubase = idx * factors.stride;
                for &(k, rep) in &active {
                    let v = xj[k];
                    if v != 0.0 {
                        z[row_base + k] -= factors.u_vals.data[ubase + rep] * v;
                    }
                }
            }
        }
        // Undo the column ordering: out[q(k)] = z[k], active lanes only.
        for pos in 0..n {
            let src = pos * k_lanes;
            let dst = s.q.unmap(pos) * k_lanes;
            for &(k, _) in &active {
                out.data[dst + k] = z[src + k];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{LuWorkspace, SparseLu};
    use crate::TripletMatrix;

    fn tridiag(n: usize, d: f64, off: f64) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, d);
            if i + 1 < n {
                t.push(i, i + 1, off);
                t.push(i + 1, i, off);
            }
        }
        t.to_csr()
    }

    /// Random-ish but deterministic same-pattern matrices.
    fn corner_mats(n: usize, lanes: usize) -> Vec<CsrMatrix> {
        (0..lanes)
            .map(|r| {
                let scale = 1.0 + r as f64 * 0.37;
                tridiag(n, 2.5 * scale, -1.0 / scale)
            })
            .collect()
    }

    #[test]
    fn lane_refactorization_is_bit_identical_to_scalar_per_lane() {
        for lanes in [1usize, 2, 3, 4, 5, 8] {
            let n = 37;
            let mats = corner_mats(n, lanes);
            let pilot = SparseLu::factorize(&mats[0]).unwrap();
            let mut lf = LaneFactors::new(pilot.shared_symbolic(), lanes, &LuOptions::default());
            let refs: Vec<&CsrMatrix> = mats.iter().collect();
            let mut ws = LaneWorkspace::new();
            let results = lf.refactorize_lanes(&refs, &mut ws);
            assert!(results.iter().all(|r| r.is_ok()));

            let mut lu_ws = LuWorkspace::new();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
            let mut rhs = LaneVec::zeros(n, lanes);
            for r in 0..lanes {
                rhs.load_lane(r, &b);
            }
            let map: Vec<usize> = (0..lanes).collect();
            let mut out = LaneVec::zeros(n, lanes);
            lf.solve_lanes(&rhs, &map, &mut out, &mut ws).unwrap();

            for (r, mat) in mats.iter().enumerate() {
                let scalar = SparseLu::from_symbolic(
                    pilot.shared_symbolic(),
                    mat,
                    &LuOptions::default(),
                    &mut lu_ws,
                )
                .unwrap();
                let mut x = vec![0.0; n];
                scalar.solve_into(&b, &mut x, &mut lu_ws).unwrap();
                let mut lane_x = vec![0.0; n];
                out.store_lane(r, &mut lane_x);
                let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                let lb: Vec<u64> = lane_x.iter().map(|v| v.to_bits()).collect();
                assert_eq!(xb, lb, "lane {r} of {lanes} diverged from scalar");
            }
        }
    }

    #[test]
    fn deduplicated_factor_lane_serves_many_rhs_lanes() {
        let n = 25;
        let a = tridiag(n, 3.0, -1.0);
        let pilot = SparseLu::factorize(&a).unwrap();
        // One factor lane, four rhs lanes all mapping to it.
        let mut lf = LaneFactors::new(pilot.shared_symbolic(), 1, &LuOptions::default());
        let mut ws = LaneWorkspace::new();
        assert!(lf.refactorize_lanes(&[&a], &mut ws)[0].is_ok());

        let k = 4;
        let mut rhs = LaneVec::zeros(n, k);
        let mut expected = Vec::new();
        let mut lu_ws = LuWorkspace::new();
        for lane in 0..k {
            let b: Vec<f64> = (0..n).map(|i| ((i + lane) as f64 * 0.21).cos()).collect();
            rhs.load_lane(lane, &b);
            let mut x = vec![0.0; n];
            pilot.solve_into(&b, &mut x, &mut lu_ws).unwrap();
            expected.push(x);
        }
        let mut out = LaneVec::zeros(n, k);
        lf.solve_lanes(&rhs, &[0, 0, 0, 0], &mut out, &mut ws)
            .unwrap();
        for (lane, want) in expected.iter().enumerate() {
            let mut got = vec![0.0; n];
            out.store_lane(lane, &mut got);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn failed_lane_is_masked_without_poisoning_the_batch() {
        let n = 19;
        let good0 = tridiag(n, 2.5, -1.0);
        let bad = tridiag(n, 1e-30, 1e-30); // frozen pivots vanish
        let good1 = tridiag(n, 4.0, -0.5);
        let pilot = SparseLu::factorize(&good0).unwrap();
        let mut lf = LaneFactors::new(pilot.shared_symbolic(), 3, &LuOptions::default());
        let mut ws = LaneWorkspace::new();
        let results = lf.refactorize_lanes(&[&good0, &bad, &good1], &mut ws);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(SparseError::Singular { .. })));
        assert!(results[2].is_ok());
        assert!(lf.lane_ok(0) && !lf.lane_ok(1) && lf.lane_ok(2));

        // Surviving lanes still solve bit-identically to scalar.
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 7.0).collect();
        let mut rhs = LaneVec::zeros(n, 3);
        for lane in 0..3 {
            rhs.load_lane(lane, &b);
        }
        let mut out = LaneVec::zeros(n, 3);
        lf.solve_lanes(&rhs, &[0, LANE_DETACHED, 2], &mut out, &mut ws)
            .unwrap();
        let mut lu_ws = LuWorkspace::new();
        for (lane, mat) in [(0usize, &good0), (2usize, &good1)] {
            let scalar = SparseLu::from_symbolic(
                pilot.shared_symbolic(),
                mat,
                &LuOptions::default(),
                &mut lu_ws,
            )
            .unwrap();
            let mut want = vec![0.0; n];
            scalar.solve_into(&b, &mut want, &mut lu_ws).unwrap();
            let mut got = vec![0.0; n];
            out.store_lane(lane, &mut got);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "surviving lane {lane}"
            );
        }
        // Routing a rhs lane to the failed factor lane is rejected.
        assert!(lf.solve_lanes(&rhs, &[0, 1, 2], &mut out, &mut ws).is_err());
    }

    #[test]
    fn partial_width_refactorization_masks_unsupplied_lanes() {
        // The value-deduplication shape: 8 allocated lanes, 3 distinct
        // matrices, 8 rhs lanes routed onto the 3 factors.
        let n = 21;
        let mats = corner_mats(n, 3);
        let pilot = SparseLu::factorize(&mats[0]).unwrap();
        let mut lf = LaneFactors::new(pilot.shared_symbolic(), 8, &LuOptions::default());
        let mut ws = LaneWorkspace::new();
        let refs: Vec<&CsrMatrix> = mats.iter().collect();
        let results = lf.refactorize_lanes(&refs, &mut ws);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.is_ok()));
        for r in 0..3 {
            assert!(lf.lane_ok(r));
        }
        for r in 3..8 {
            assert!(!lf.lane_ok(r));
        }

        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos()).collect();
        let mut rhs = LaneVec::zeros(n, 8);
        for k in 0..8 {
            rhs.load_lane(k, &b);
        }
        let map = [0usize, 1, 2, 0, 1, 2, 0, LANE_DETACHED];
        let mut out = LaneVec::zeros(n, 8);
        lf.solve_lanes(&rhs, &map, &mut out, &mut ws).unwrap();
        let mut lu_ws = LuWorkspace::new();
        for (k, &rep) in map.iter().enumerate() {
            if rep == LANE_DETACHED {
                continue;
            }
            let scalar = SparseLu::from_symbolic(
                pilot.shared_symbolic(),
                &mats[rep],
                &LuOptions::default(),
                &mut lu_ws,
            )
            .unwrap();
            let mut want = vec![0.0; n];
            scalar.solve_into(&b, &mut want, &mut lu_ws).unwrap();
            let mut got = vec![0.0; n];
            out.store_lane(k, &mut got);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "rhs lane {k} via factor lane {rep}"
            );
        }
    }

    #[test]
    fn pattern_mismatch_masks_only_the_offending_lane() {
        let a = tridiag(12, 2.5, -1.0);
        let wrong = tridiag(13, 2.5, -1.0);
        let pilot = SparseLu::factorize(&a).unwrap();
        let mut lf = LaneFactors::new(pilot.shared_symbolic(), 2, &LuOptions::default());
        let mut ws = LaneWorkspace::new();
        let results = lf.refactorize_lanes(&[&a, &wrong], &mut ws);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(SparseError::PatternMismatch { .. })
        ));
        assert!(lf.lane_ok(0) && !lf.lane_ok(1));
    }

    #[test]
    fn negative_zero_rhs_survives_the_lane_guards() {
        // A rhs containing -0.0 must come through exactly as the scalar
        // solve produces it (the per-lane zero guards preserve signed
        // zeros; an unguarded update could flip them).
        let n = 9;
        let a = tridiag(n, 2.0, -1.0);
        let pilot = SparseLu::factorize(&a).unwrap();
        let mut lf = LaneFactors::new(pilot.shared_symbolic(), 2, &LuOptions::default());
        let mut ws = LaneWorkspace::new();
        assert!(lf
            .refactorize_lanes(&[&a, &a], &mut ws)
            .iter()
            .all(|r| r.is_ok()));
        let mut b = vec![0.0; n];
        b[4] = -0.0;
        b[5] = 1.0;
        let mut rhs = LaneVec::zeros(n, 2);
        rhs.load_lane(0, &b);
        rhs.load_lane(1, &b);
        let mut out = LaneVec::zeros(n, 2);
        lf.solve_lanes(&rhs, &[0, 1], &mut out, &mut ws).unwrap();
        let mut want = vec![0.0; n];
        let mut lu_ws = LuWorkspace::new();
        pilot.solve_into(&b, &mut want, &mut lu_ws).unwrap();
        for lane in 0..2 {
            let mut got = vec![0.0; n];
            out.store_lane(lane, &mut got);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn lane_vec_round_trips_and_fills() {
        let mut v = LaneVec::zeros(5, 3);
        assert_eq!(v.len(), 5);
        assert_eq!(v.lanes(), 3);
        assert!(!v.is_empty());
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        v.load_lane(1, &src);
        assert_eq!(v.get(2, 1), 3.0);
        v.set(2, 1, 9.0);
        let mut dst = [0.0; 5];
        v.store_lane(1, &mut dst);
        assert_eq!(dst, [1.0, 2.0, 9.0, 4.0, 5.0]);
        // Other lanes untouched.
        v.store_lane(0, &mut dst);
        assert_eq!(dst, [0.0; 5]);
        v.fill(7.0);
        assert!(v.as_slice().iter().all(|&x| x == 7.0));
    }
}
