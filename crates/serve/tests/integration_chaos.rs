//! The chaos acceptance test (features `fault-injection` +
//! `wire-fault-injection`): one server per worker count, hostile
//! connections with armed wire faults, a raw socket that dies mid-frame, a
//! job whose solver panics mid-run — all concurrent with honest clients.
//! Every *unfaulted* job must stream a waveform bit-identical to a clean
//! server's, the panicked worker must be respawned, and the server must
//! drain cleanly on shutdown.
//!
//! Wire faults are armed per accept index, so the hostile connections are
//! opened serially (kernel accept order is FIFO); the honest clients connect
//! afterwards and concurrently, on indices with nothing armed.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use exi_serve::wirefault::{self, WireFaultSpec};
use exi_serve::{Client, Request, Response, RunEnd, RunRequest, ServeConfig, Server, ServerStats};
use exi_sim::fault::{self, FaultSpec};
use exi_sim::Method;

/// The CLI golden-fixture RC lowpass: ~3 unknowns, finishes in milliseconds.
const RC_DECK: &str = "Vin in 0 PULSE(0 1 0 10p 10p 200p)\n\
                       R1 in out 1k\n\
                       C1 out 0 1f\n\
                       .tran 1p 500p\n\
                       .print v(out)\n";

/// A long run (clamped `h_max`, 60000 declared steps) whose stream is long
/// enough for a mid-stream wire fault to land deterministically.
const SLOW_DECK: &str = "Vin in 0 PULSE(0 1 0 10p 10p 200p)\n\
                         R1 in out 1k\n\
                         C1 out 0 1f\n\
                         .tran 1p 60000p 1p\n\
                         .print v(out)\n";

fn boot(config: ServeConfig) -> (SocketAddr, JoinHandle<ServerStats>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    (addr, std::thread::spawn(move || server.run()))
}

fn request(deck: &str, id: &str) -> RunRequest {
    RunRequest {
        id: id.to_string(),
        deck: deck.to_string(),
        method: Method::ExponentialRosenbrock,
        probes: Vec::new(),
        decimate: 1,
        chunk_rows: None,
        deadline_ms: Some(60_000),
    }
}

fn poll_stats(
    addr: SocketAddr,
    timeout: Duration,
    pred: impl Fn(&ServerStats) -> bool,
) -> ServerStats {
    let deadline = Instant::now() + timeout;
    loop {
        let mut client = Client::connect(addr).expect("connect for stats");
        let stats = client.stats().expect("stats");
        if pred(&stats) || Instant::now() >= deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The reference waveform from a clean, unfaulted server.
fn clean_reference() -> Vec<u8> {
    let (addr, daemon) = boot(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let mut bytes = Vec::new();
    let end = client
        .run_streaming(request(RC_DECK, "reference"), &mut bytes, ',')
        .expect("reference run");
    assert!(matches!(end, RunEnd::Done { .. }), "got {end:?}");
    client.shutdown().expect("shutdown");
    daemon.join().expect("join");
    bytes
}

/// One full chaos round against a server with `workers` workers.
fn chaos_round(workers: usize, reference: &[u8]) {
    // Fresh fault state; accept indices restart at 1 on each new server.
    wirefault::clear_all();
    fault::clear_all();
    // Connection 1: its second request arrives with a corrupted length line.
    wirefault::arm(
        1,
        WireFaultSpec {
            corrupt_len_line: Some(2),
            ..WireFaultSpec::default()
        },
    );
    // Connection 2: the reader stalls past the idle deadline — reaper bait.
    wirefault::arm(
        2,
        WireFaultSpec {
            stall_read_ms: Some((1, 700)),
            ..WireFaultSpec::default()
        },
    );
    // Connection 3: the socket hard-closes at server write 5 (mid-stream).
    wirefault::arm(
        3,
        WireFaultSpec {
            disconnect_at_write: Some(5),
            ..WireFaultSpec::default()
        },
    );
    // Connection 4: server write 4 is truncated to 10 bytes, then closed.
    wirefault::arm(
        4,
        WireFaultSpec {
            truncate_write: Some((4, 10)),
            ..WireFaultSpec::default()
        },
    );
    // Solver fault: the job with this id panics before accepted step 3.
    fault::arm(
        "chaos-panic",
        FaultSpec {
            panic_at_step: Some(3),
            ..FaultSpec::default()
        },
    );

    let (addr, daemon) = boot(ServeConfig {
        workers,
        read_timeout_ms: 1_000,
        idle_timeout_ms: 400,
        ..ServeConfig::default()
    });

    // -- Hostile connections, serially, pinning accept indices 1..=6. --

    // 1: a ping round-trips, then the corrupted length line draws
    // `protocol_error` and a close.
    let mut corrupt = Client::connect(addr).expect("connect 1");
    corrupt.ping().expect("ping before the corrupted frame");
    corrupt.send(&Request::Ping).expect("send into corruption");
    match corrupt.recv().expect("protocol_error frame") {
        Response::ProtocolError { message } => {
            assert!(message.contains("fault injection"), "message: {message}")
        }
        other => panic!("expected protocol_error, got {other:?}"),
    }

    // 2: never gets to send; the server-side stall outlives the idle
    // deadline and the reaper takes the connection.
    let _stalled = TcpStream::connect(addr).expect("connect 2");

    // 3 and 4: streaming victims. Submit with 1-row chunks so the armed
    // write number lands within milliseconds, and read only the acceptance —
    // the fault then kills the stream while the job is mid-run.
    let mut victims = Vec::new();
    for (index, id) in [(3, "wire-victim-disconnect"), (4, "wire-victim-truncate")] {
        let mut victim = Client::connect(addr).expect("connect victim");
        let mut run = request(SLOW_DECK, id);
        run.chunk_rows = Some(1);
        victim.send(&Request::Run(run)).expect("send run");
        match victim
            .recv()
            .unwrap_or_else(|e| panic!("accept {index}: {e}"))
        {
            Response::Accepted { id: accepted, .. } => assert_eq!(accepted, id),
            other => panic!("expected accepted on {index}, got {other:?}"),
        }
        victims.push(victim);
    }

    // 5: a raw peer that starts a valid frame and dies mid-payload.
    {
        let mut raw = TcpStream::connect(addr).expect("connect 5");
        raw.write_all(b"100\n{\"type\":\"ru")
            .expect("truncated frame");
        raw.shutdown(Shutdown::Write).expect("half-close");
    }

    // 6: the job whose solver panics; the supervisor must attribute the
    // failure to this id and respawn the worker.
    let mut panicker = Client::connect(addr).expect("connect 6");
    let end = panicker
        .run_streaming(request(RC_DECK, "chaos-panic"), &mut Vec::new(), ',')
        .expect("panic job round-trip");
    let RunEnd::Failed { class, message } = end else {
        panic!("expected failed, got {end:?}");
    };
    // `run_streaming` only returns frames whose id matches "chaos-panic",
    // so receiving this Failed end IS the attribution.
    assert_eq!(class, "internal");
    assert!(message.contains("panicked"), "panic report: {message}");

    // -- Honest clients, concurrent, on unarmed accept indices. --
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect honest");
                    let mut bytes = Vec::new();
                    let end = client
                        .run_streaming(
                            request(RC_DECK, &format!("honest-{workers}w-{i}")),
                            &mut bytes,
                            ',',
                        )
                        .expect("honest run");
                    assert!(matches!(end, RunEnd::Done { .. }), "got {end:?}");
                    bytes
                })
            })
            .collect();
        for handle in handles {
            let bytes = handle.join().expect("honest client");
            assert_eq!(
                String::from_utf8(bytes).unwrap(),
                String::from_utf8(reference.to_vec()).unwrap(),
                "an unfaulted job must stream bytes identical to a clean server's"
            );
        }
    });

    // Every injected failure is visible in the counters.
    let stats = poll_stats(addr, Duration::from_secs(60), |s| {
        s.workers_respawned >= 1 && s.connections_reaped >= 1 && s.jobs_cancelled >= 2
    });
    assert!(stats.workers_respawned >= 1, "stats: {stats:?}");
    assert!(stats.connections_reaped >= 1, "stats: {stats:?}");
    assert!(
        stats.jobs_cancelled >= 2,
        "both wire victims observe a dead client and stop: {stats:?}"
    );
    assert_eq!(stats.workers, workers);

    // Clean drain: the daemon exits on shutdown with coherent final
    // counters — 4 honest completions, exactly the panicked job failed.
    drop(victims);
    Client::connect(addr)
        .expect("connect for shutdown")
        .shutdown()
        .expect("shutdown");
    let stats = daemon.join().expect("join");
    assert_eq!(stats.jobs_completed, 4, "stats: {stats:?}");
    assert_eq!(stats.jobs_failed, 1, "stats: {stats:?}");
    assert_eq!(stats.jobs_cancelled, 2, "stats: {stats:?}");
    assert!(stats.workers_respawned >= 1, "stats: {stats:?}");

    wirefault::clear_all();
    fault::clear_all();
}

/// The acceptance criterion of this PR: under concurrent socket faults and
/// a worker panic, unfaulted jobs are bit-identical to a clean run and the
/// server drains cleanly — at 1 worker and at 8.
#[test]
fn chaos_leaves_unfaulted_jobs_bit_identical_and_drains_cleanly() {
    // Watchdog: a wedged drain must fail the test run, not hang CI.
    let finished = Arc::new(AtomicBool::new(false));
    {
        let finished = Arc::clone(&finished);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs(240));
            if !finished.load(Ordering::SeqCst) {
                eprintln!("chaos test wedged past 240s; aborting");
                std::process::exit(124);
            }
        });
    }

    let reference = clean_reference();
    for workers in [1usize, 8] {
        chaos_round(workers, &reference);
    }
    finished.store(true, Ordering::SeqCst);
}
