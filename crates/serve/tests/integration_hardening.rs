//! Hardening tests that need no fault-injection features: admission control
//! (per-job budget, server-wide in-flight budget, default deadline),
//! slow-loris/idle connection reaping, and the overload-shedding ladder —
//! all over real TCP sockets against an in-process daemon.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use exi_serve::{
    Client, JobBudget, OverloadConfig, Request, Response, RunEnd, RunRequest, ServeConfig, Server,
    ServerStats,
};
use exi_sim::Method;

/// The CLI golden-fixture RC lowpass: ~3 unknowns, finishes in milliseconds.
const RC_DECK: &str = "Vin in 0 PULSE(0 1 0 10p 10p 200p)\n\
                       R1 in out 1k\n\
                       C1 out 0 1f\n\
                       .tran 1p 500p\n\
                       .print v(out)\n";

/// A long run (the third `.tran` field clamps `h_max`, forcing 60000
/// declared steps) for deadline, in-flight and overload tests.
const SLOW_DECK: &str = "Vin in 0 PULSE(0 1 0 10p 10p 200p)\n\
                         R1 in out 1k\n\
                         C1 out 0 1f\n\
                         .tran 1p 60000p 1p\n\
                         .print v(out)\n";

fn boot(config: ServeConfig) -> (SocketAddr, JoinHandle<ServerStats>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    (addr, std::thread::spawn(move || server.run()))
}

fn request(deck: &str, id: &str) -> RunRequest {
    RunRequest {
        id: id.to_string(),
        deck: deck.to_string(),
        method: Method::ExponentialRosenbrock,
        probes: Vec::new(),
        decimate: 1,
        chunk_rows: None,
        deadline_ms: None,
    }
}

/// Polls the daemon's stats until `pred` holds or `timeout` elapses; returns
/// the last snapshot either way.
fn poll_stats(
    addr: SocketAddr,
    timeout: Duration,
    pred: impl Fn(&ServerStats) -> bool,
) -> ServerStats {
    let deadline = Instant::now() + timeout;
    loop {
        let mut client = Client::connect(addr).expect("connect for stats");
        let stats = client.stats().expect("stats");
        if pred(&stats) || Instant::now() >= deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A declared-steps budget below `SLOW_DECK`'s 60000 steps refuses the job
/// at admission with `rejected{reason: "budget"}` — before it touches the
/// queue — and the refusal is attributed to `jobs_rejected_budget`, not
/// `jobs_failed` or `jobs_rejected`.
#[test]
fn oversized_decks_are_rejected_at_admission_with_attribution() {
    let (addr, daemon) = boot(ServeConfig {
        budget: JobBudget {
            max_declared_steps: 1000,
            ..JobBudget::default()
        },
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let mut sink = Vec::new();
    let end = client
        .run_streaming(request(SLOW_DECK, "too-long"), &mut sink, ',')
        .expect("run");
    let RunEnd::Rejected { reason, message } = end else {
        panic!("expected rejected, got {end:?}");
    };
    assert_eq!(reason, "budget");
    assert!(
        message.contains("60000") || message.contains("step"),
        "budget message should name the violated limit: {message}"
    );
    assert!(sink.is_empty(), "a rejected job must stream nothing");

    // A deck within the same budget still runs on the same connection.
    let end = client
        .run_streaming(request(RC_DECK, "fits"), &mut sink, ',')
        .expect("run");
    assert!(matches!(end, RunEnd::Done { .. }), "got {end:?}");

    client.shutdown().expect("shutdown");
    let stats = daemon.join().expect("join");
    assert_eq!(stats.jobs_rejected_budget, 1);
    assert_eq!(stats.jobs_rejected, 0, "budget refusals are not 'busy'");
    assert_eq!(stats.jobs_failed, 0, "budget refusals are not failures");
    assert_eq!(stats.jobs_completed, 1);
}

/// A tiny unknown-count budget refuses even the RC deck, proving the
/// footprint estimate covers unknowns, not just declared steps.
#[test]
fn unknown_count_budget_is_enforced() {
    let (addr, daemon) = boot(ServeConfig {
        budget: JobBudget {
            max_unknowns: 1,
            ..JobBudget::default()
        },
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let end = client
        .run_streaming(request(RC_DECK, "too-wide"), &mut Vec::new(), ',')
        .expect("run");
    let RunEnd::Rejected { reason, message } = end else {
        panic!("expected rejected, got {end:?}");
    };
    assert_eq!(reason, "budget");
    assert!(message.contains("unknown"), "message: {message}");
    client.shutdown().expect("shutdown");
    assert_eq!(daemon.join().expect("join").jobs_rejected_budget, 1);
}

/// A job that declares no deadline inherits the server default and is
/// cancelled with `reason: "deadline"` when it overruns.
#[test]
fn jobs_without_a_deadline_inherit_the_server_default() {
    let (addr, daemon) = boot(ServeConfig {
        default_deadline_ms: 40,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let mut sink = Vec::new();
    let end = client
        .run_streaming(request(SLOW_DECK, "capped"), &mut sink, ',')
        .expect("run");
    let RunEnd::Cancelled { reason, rows, .. } = end else {
        panic!("expected cancelled, got {end:?}");
    };
    assert_eq!(reason, "deadline");
    assert!(rows >= 1, "the DC point precedes the first deadline check");
    client.shutdown().expect("shutdown");
    assert_eq!(daemon.join().expect("join").jobs_cancelled, 1);
}

/// The server-wide in-flight unknown budget: while one job's unknowns fill
/// it, a second admission is refused with `rejected{reason: "inflight"}`;
/// once the first job releases its charge the same deck is admitted.
#[test]
fn inflight_unknown_budget_gates_concurrent_admissions() {
    // RC_DECK has 3 unknowns (two nodes + one source branch); a budget of 3
    // admits exactly one such job at a time.
    let (addr, daemon) = boot(ServeConfig {
        workers: 1,
        max_inflight_unknowns: 3,
        ..ServeConfig::default()
    });

    // Occupy the budget with a long job, reading only its acceptance.
    let mut holder = Client::connect(addr).expect("connect holder");
    holder
        .send(&Request::Run(request(SLOW_DECK, "holder")))
        .expect("send");
    match holder.recv().expect("recv") {
        Response::Accepted { id, .. } => assert_eq!(id, "holder"),
        other => panic!("expected accepted, got {other:?}"),
    }

    // A second job cannot fit 3 more unknowns into a 3-unknown budget.
    let mut second = Client::connect(addr).expect("connect second");
    let end = second
        .run_streaming(request(RC_DECK, "crowded-out"), &mut Vec::new(), ',')
        .expect("run");
    let RunEnd::Rejected { reason, .. } = end else {
        panic!("expected rejected, got {end:?}");
    };
    assert_eq!(reason, "inflight");

    // Release the charge by cancelling the holder, then the same deck fits.
    let mut canceller = Client::connect(addr).expect("connect canceller");
    assert!(canceller.cancel("holder").expect("cancel"), "holder known");
    let stats = poll_stats(addr, Duration::from_secs(10), |s| s.jobs_cancelled >= 1);
    assert_eq!(stats.jobs_cancelled, 1, "holder cancelled: {stats:?}");
    let end = second
        .run_streaming(request(RC_DECK, "fits-now"), &mut Vec::new(), ',')
        .expect("run");
    assert!(matches!(end, RunEnd::Done { .. }), "got {end:?}");

    canceller.shutdown().expect("shutdown");
    let stats = daemon.join().expect("join");
    assert_eq!(stats.jobs_rejected_budget, 1);
    assert_eq!(stats.jobs_completed, 1);
}

/// Slow-loris and silent connections are reaped by the read/idle timeouts
/// without ever occupying a worker: while both hostile sockets sit open the
/// lone worker still completes an honest job, and the reaps are counted.
#[test]
fn stalled_and_idle_connections_are_reaped_without_occupying_a_worker() {
    let (addr, daemon) = boot(ServeConfig {
        workers: 1,
        read_timeout_ms: 200,
        idle_timeout_ms: 400,
        ..ServeConfig::default()
    });

    // Slow loris: starts a length line, never finishes it.
    let mut loris = TcpStream::connect(addr).expect("connect loris");
    loris.write_all(b"12").expect("partial len line");
    loris.flush().expect("flush");
    // Silent peer: connects and never writes; the idle timeout reaps it.
    let idle = TcpStream::connect(addr).expect("connect idle");

    // The honest job completes while both hostile sockets are still open.
    // The client connection is dropped right after so the idle reaper never
    // sees it linger.
    {
        let mut client = Client::connect(addr).expect("connect");
        let end = client
            .run_streaming(request(RC_DECK, "honest"), &mut Vec::new(), ',')
            .expect("run");
        assert!(matches!(end, RunEnd::Done { .. }), "got {end:?}");
    }

    let stats = poll_stats(addr, Duration::from_secs(10), |s| s.connections_reaped >= 2);
    assert_eq!(stats.connections_reaped, 2, "stats: {stats:?}");

    // Both reaped sockets observe EOF (or a reset), not a hang.
    for (label, mut stream) in [("loris", loris), ("idle", idle)] {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set_read_timeout");
        let mut buffer = [0u8; 64];
        match stream.read(&mut buffer) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("{label}: expected EOF, read {n} bytes"),
        }
    }

    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    let stats = daemon.join().expect("join");
    assert_eq!(stats.connections_reaped, 2);
    assert_eq!(stats.jobs_completed, 1);
}

/// Sustained queue pressure climbs the overload ladder: once the queue has
/// been full past `shed_after_ms` the stage rises to 1 and new decks are
/// shed with `rejected{reason: "overload"}`; the transition is visible in
/// the stats snapshot.
#[test]
fn sustained_queue_pressure_sheds_new_decks() {
    let (addr, daemon) = boot(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        default_deadline_ms: 0,
        overload: OverloadConfig {
            shed_after_ms: 50,
            cancel_after_ms: 60_000,
            drain_after_ms: 120_000,
            ..OverloadConfig::default()
        },
        ..ServeConfig::default()
    });

    // One job running, one queued: the queue is now full.
    let mut running = Client::connect(addr).expect("connect running");
    running
        .send(&Request::Run(request(SLOW_DECK, "running")))
        .expect("send");
    match running.recv().expect("recv") {
        Response::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }
    let mut queued = Client::connect(addr).expect("connect queued");
    queued
        .send(&Request::Run(request(SLOW_DECK, "queued")))
        .expect("send");
    match queued.recv().expect("recv") {
        Response::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }

    // The supervisor notices the sustained fullness and escalates.
    let stats = poll_stats(addr, Duration::from_secs(10), |s| s.overload_stage >= 1);
    assert!(stats.overload_stage >= 1, "stats: {stats:?}");
    assert!(stats.overload_transitions >= 1, "stats: {stats:?}");

    // New decks are now shed before touching the queue.
    let mut late = Client::connect(addr).expect("connect late");
    let end = late
        .run_streaming(request(RC_DECK, "shed"), &mut Vec::new(), ',')
        .expect("run");
    let RunEnd::Rejected { reason, .. } = end else {
        panic!("expected rejected, got {end:?}");
    };
    assert_eq!(reason, "overload");

    // Drain fast: cancel both slow jobs, then shut down.
    let mut canceller = Client::connect(addr).expect("connect canceller");
    assert!(canceller.cancel("running").expect("cancel"));
    assert!(canceller.cancel("queued").expect("cancel"));
    canceller.shutdown().expect("shutdown");
    let stats = daemon.join().expect("join");
    assert!(stats.jobs_shed_overload >= 1, "stats: {stats:?}");
    assert!(stats.overload_transitions >= 1, "stats: {stats:?}");
    assert_eq!(stats.jobs_completed, 0);
}
