//! Property-based tests for the wire protocol: randomly generated
//! [`Request`]/[`Response`] values must survive encode → decode bit-exactly,
//! and the frame reader and JSON decoders must never panic on hostile
//! bytes — including truncated prefixes of *valid* frames, the exact shape a
//! peer that dies mid-write leaves on the wire.

use std::io::BufReader;

use exi_serve::protocol::DEFAULT_MAX_FRAME_BYTES;
use exi_serve::{read_frame, write_frame, Request, Response, RunRequest, ServerStats};
use proptest::prelude::*;

/// Charset covering JSON's sharp edges: quotes, backslashes, braces,
/// control-ish whitespace, multi-byte unicode.
const CHARSET: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', ',', ':', ';', '"', '\\', '/', '{', '}',
    '[', ']', '\n', '\t', 'é', '∑', '∞',
];

/// Strings drawn from [`CHARSET`] (the shim has no string strategy, so build
/// them from index vectors).
fn wire_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..CHARSET.len(), 0..24)
        .prop_map(|picks| picks.into_iter().map(|k| CHARSET[k]).collect())
}

/// Structurally valid run requests (`decimate >= 1` — the encoder's own
/// invariant).
fn run_request() -> impl Strategy<Value = RunRequest> {
    (
        wire_string(),
        wire_string(),
        0usize..4,
        (
            proptest::collection::vec(wire_string(), 0..4),
            1usize..1000,
            0usize..3,
            0usize..3,
        ),
    )
        .prop_map(
            |(id, deck, method_pick, (probes, decimate, chunk_pick, deadline_pick))| {
                let method = [
                    exi_sim::Method::ExponentialRosenbrock,
                    exi_sim::Method::ExponentialRosenbrockCorrected,
                    exi_sim::Method::BackwardEuler,
                    exi_sim::Method::Trapezoidal,
                ][method_pick];
                RunRequest {
                    id,
                    deck,
                    method,
                    probes,
                    decimate,
                    chunk_rows: (chunk_pick > 0).then_some(chunk_pick * 37),
                    deadline_ms: (deadline_pick > 0).then_some(deadline_pick as u64 * 1511),
                }
            },
        )
}

/// One of every [`Response`] variant with randomized payloads.
fn response() -> impl Strategy<Value = Response> {
    (
        0usize..8,
        wire_string(),
        wire_string(),
        (
            0usize..100_000,
            proptest::collection::vec(proptest::collection::vec(wire_string(), 0..4), 0..4),
            0usize..2,
        ),
    )
        .prop_map(|(pick, id, text, (num, rows, flag))| match pick {
            0 => Response::Accepted {
                id,
                queue_depth: num,
            },
            1 => Response::Busy {
                id,
                queue_capacity: num,
            },
            2 => Response::Rejected {
                id,
                reason: ["budget", "inflight", "overload", "degraded"][num % 4].to_string(),
                message: text,
            },
            3 => Response::Chunk {
                id,
                seq: num,
                columns: (flag > 0).then(|| vec!["time".to_string(), text]),
                rows,
            },
            4 => Response::Done {
                id,
                rows: num,
                accepted_steps: num / 2,
                symbolic_analyses: flag,
                shared_symbolic_hits: num % 7,
                plan_compilations: flag,
                shared_plan_hits: num % 5,
            },
            5 => Response::Cancelled {
                id,
                reason: if flag > 0 { "token" } else { "deadline" }.to_string(),
                at_time: format!("{:.17e}", num as f64 * 1e-12),
                rows: num,
            },
            6 => Response::JobError {
                id,
                class: "convergence".to_string(),
                message: text,
            },
            _ => Response::ProtocolError { message: text },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_bit_exactly(run in run_request(), id in wire_string()) {
        for request in [
            Request::Run(run.clone()),
            Request::Cancel { id: id.clone() },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ] {
            let encoded = request.to_json();
            let decoded = Request::from_json(&encoded);
            prop_assert_eq!(decoded.as_ref(), Ok(&request), "wire form: {}", encoded);
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly(resp in response()) {
        let encoded = resp.to_json();
        let decoded = Response::from_json(&encoded);
        prop_assert_eq!(decoded.as_ref(), Ok(&resp), "wire form: {}", encoded);
        // Through the framing layer too: write_frame then read_frame must
        // hand back the identical payload string.
        let mut wire = Vec::new();
        write_frame(&mut wire, &encoded).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let framed = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        prop_assert_eq!(framed, encoded);
    }

    #[test]
    fn stats_frames_round_trip(seed in 0usize..10_000) {
        let seed = seed as u64;
        let stats = ServerStats {
            jobs_accepted: seed,
            jobs_completed: seed / 2,
            jobs_failed: seed % 3,
            jobs_cancelled: seed % 5,
            jobs_rejected: seed % 7,
            jobs_rejected_budget: seed % 11,
            jobs_shed_overload: seed % 13,
            jobs_cancelled_overload: seed % 17,
            workers_respawned: seed % 19,
            connections_reaped: seed % 23,
            write_stalls: seed % 29,
            overload_transitions: seed % 31,
            overload_stage: (seed % 4) as usize,
            queue_depth: (seed % 16) as usize,
            queue_capacity: 16,
            workers: 2,
            accepted_steps: seed as usize,
            symbolic_analyses: 1,
            shared_symbolic_hits: (seed % 37) as usize,
            plan_compilations: 1,
            shared_plan_hits: (seed % 41) as usize,
            ..ServerStats::default()
        };
        let resp = Response::Stats(stats);
        prop_assert_eq!(Response::from_json(&resp.to_json()).as_ref(), Ok(&resp));
    }

    /// Arbitrary bytes into the frame reader: every outcome is a typed
    /// `Result`, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic_the_frame_reader(
        bytes in proptest::collection::vec(0usize..256, 0..200),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let mut reader = BufReader::new(bytes.as_slice());
        // Drain until EOF or error; bounded by the byte count so a
        // pathological reader cannot loop forever.
        for _ in 0..bytes.len() + 1 {
            match read_frame(&mut reader, 1024) {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// Arbitrary text into the JSON decoders: never a panic, errors are
    /// values.
    #[test]
    fn arbitrary_text_never_panics_the_decoders(text in wire_string()) {
        let _ = Request::from_json(&text);
        let _ = Response::from_json(&text);
    }

    /// Every truncated prefix of a valid frame is EOF or a typed error —
    /// never a panic, and never a phantom full-length payload.
    #[test]
    fn truncated_valid_frames_never_yield_phantom_payloads(
        resp in response(),
        cut in 0usize..200,
    ) {
        let encoded = resp.to_json();
        let mut wire = Vec::new();
        write_frame(&mut wire, &encoded).unwrap();
        prop_assume!(cut < wire.len());
        let mut reader = BufReader::new(&wire[..cut]);
        if let Ok(Some(payload)) = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES) {
            prop_assert!(
                false,
                "phantom frame from a {}-byte prefix of a {}-byte frame: {}",
                cut,
                wire.len(),
                payload
            );
        }
    }
}
