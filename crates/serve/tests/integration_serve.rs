//! End-to-end tests of the exi-serve daemon over real TCP sockets: warm
//! fleet caches across concurrent clients, wire cancellation with bit-exact
//! prefixes, backpressure, malformed/oversized rejection and graceful
//! shutdown draining.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;

use exi_serve::{
    read_frame, write_frame, Client, Request, Response, RunEnd, RunRequest, ServeConfig, Server,
    ServerStats,
};
use exi_sim::Method;

/// A deck identical in spirit to the CLI golden fixtures: one `.tran` card,
/// one printed probe.
const RC_DECK: &str = "Vin in 0 PULSE(0 1 0 10p 10p 200p)\n\
                       R1 in out 1k\n\
                       C1 out 0 1f\n\
                       .tran 1p 500p\n\
                       .print v(out)\n";

/// A long run for cancellation, deadline and drain tests: the third `.tran`
/// field clamps `h_max` to the initial step, so the adaptive control cannot
/// grow the step and the job takes tens of thousands of accepted steps.
const SLOW_DECK: &str = "Vin in 0 PULSE(0 1 0 10p 10p 200p)\n\
                         R1 in out 1k\n\
                         C1 out 0 1f\n\
                         .tran 1p 60000p 1p\n\
                         .print v(out)\n";

fn boot(config: ServeConfig) -> (SocketAddr, JoinHandle<ServerStats>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("local_addr");
    (addr, std::thread::spawn(move || server.run()))
}

fn request(deck: &str, id: &str, method: Method) -> RunRequest {
    RunRequest {
        id: id.to_string(),
        deck: deck.to_string(),
        method,
        probes: Vec::new(),
        decimate: 1,
        chunk_rows: None,
        deadline_ms: None,
    }
}

#[test]
fn ping_stats_shutdown_round_trip() {
    let (addr, daemon) = boot(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_accepted, 0);
    assert_eq!(stats.workers, 2);
    client.shutdown().expect("shutdown");
    let final_stats = daemon.join().expect("join");
    assert_eq!(final_stats.jobs_completed, 0);
}

/// The acceptance criterion of the service: a waveform obtained through the
/// daemon is bit-identical to what the local CsvObserver path (`exi-cli
/// run`) writes for the same deck.
#[test]
fn served_waveform_is_bit_identical_to_a_local_run() {
    // Local reference, the exact `run_deck` unstreamed path.
    let deck = exi_netlist::parse_deck(RC_DECK).expect("parse");
    let options = exi_sim::analysis_options(&deck, &deck.analyses[0]).expect("tran options");
    let probe_names = deck.effective_probes(&[]);
    let probe_refs: Vec<&str> = probe_names.iter().map(String::as_str).collect();
    let probes = exi_sim::resolve_probes(&deck.circuit, &probe_refs).expect("probes");
    let mut local = Vec::new();
    {
        let mut sim = exi_sim::Simulator::new(&deck.circuit);
        let mut csv = exi_sim::CsvObserver::new(&mut local, probes);
        sim.transient_observed(Method::ExponentialRosenbrock, &options, &mut csv)
            .expect("local run");
        csv.finish().expect("flush");
    }

    let (addr, daemon) = boot(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let mut served = Vec::new();
    let end = client
        .run_streaming(
            request(RC_DECK, "bit-identity", Method::ExponentialRosenbrock),
            &mut served,
            ',',
        )
        .expect("served run");
    let RunEnd::Done { rows, .. } = end else {
        panic!("expected done, got {end:?}");
    };
    assert!(rows > 5, "rows {rows}");
    assert_eq!(
        String::from_utf8(served).unwrap(),
        String::from_utf8(local).unwrap(),
        "served bytes must equal the local CsvObserver bytes"
    );
    client.shutdown().expect("shutdown");
    daemon.join().expect("join");
}

/// Three concurrent clients submitting the same circuit fingerprint hit the
/// warm caches: exactly one symbolic analysis and one plan compilation
/// server-wide, with the other sessions counted as shared hits.
#[test]
fn concurrent_same_fingerprint_clients_share_one_analysis_and_one_plan() {
    let (addr, daemon) = boot(ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    });
    let outputs: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut csv = Vec::new();
                    let end = client
                        .run_streaming(
                            request(
                                RC_DECK,
                                &format!("tenant-{i}"),
                                Method::ExponentialRosenbrock,
                            ),
                            &mut csv,
                            ',',
                        )
                        .expect("run");
                    assert!(matches!(end, RunEnd::Done { .. }), "client {i}: {end:?}");
                    csv
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    // Same deck, same method: every client got the same bytes.
    assert!(!outputs[0].is_empty());
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);

    let mut observer = Client::connect(addr).expect("connect");
    let stats = observer.stats().expect("stats");
    assert_eq!(stats.jobs_completed, 3);
    assert_eq!(
        stats.symbolic_analyses, 1,
        "one symbolic analysis server-wide: {stats:?}"
    );
    assert_eq!(
        stats.plan_compilations, 1,
        "one plan compilation server-wide: {stats:?}"
    );
    assert!(
        stats.shared_symbolic_hits >= 2,
        "two later sessions hit the warm symbolic cache: {stats:?}"
    );
    assert!(
        stats.shared_plan_hits >= 2,
        "two later sessions hit the warm plan cache: {stats:?}"
    );
    assert_eq!(stats.plan_cache.misses, 1, "{stats:?}");
    assert!(stats.plan_cache.hits >= 2, "{stats:?}");
    assert_eq!(stats.symbolic_cache.entries, 1, "{stats:?}");
    observer.shutdown().expect("shutdown");
    daemon.join().expect("join");
}

/// Cancellation over the wire stops the job between accepted steps; what was
/// streamed is a bit-exact prefix of the uncancelled run.
#[test]
fn wire_cancellation_yields_a_bit_exact_prefix() {
    let (addr, daemon) = boot(ServeConfig::default());

    // Uncancelled reference run.
    let mut reference_client = Client::connect(addr).expect("connect");
    let mut reference = Vec::new();
    let end = reference_client
        .run_streaming(
            request(SLOW_DECK, "reference", Method::BackwardEuler),
            &mut reference,
            ',',
        )
        .expect("reference run");
    let RunEnd::Done {
        rows: reference_rows,
        ..
    } = end
    else {
        panic!("expected done, got {end:?}");
    };
    let reference_text = String::from_utf8(reference).unwrap();

    // Cancelled run, driven frame by frame: chunk_rows 1 streams every row
    // immediately; cancel from a second connection once rows are flowing.
    let mut victim = Client::connect(addr).expect("connect");
    victim
        .send(&Request::Run(RunRequest {
            chunk_rows: Some(1),
            ..request(SLOW_DECK, "victim", Method::BackwardEuler)
        }))
        .expect("send run");
    let mut rows: Vec<String> = Vec::new();
    let mut canceller = Client::connect(addr).expect("connect");
    let sent = loop {
        match victim.recv().expect("recv") {
            Response::Accepted { .. } => {}
            Response::Chunk {
                rows: chunk_rows, ..
            } => {
                for row in chunk_rows {
                    rows.push(row.join(","));
                }
                if rows.len() == 8 {
                    assert!(canceller.cancel("victim").expect("cancel"), "job known");
                }
            }
            Response::Cancelled {
                reason, rows: sent, ..
            } => {
                assert_eq!(reason, "token");
                break sent;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    };
    assert_eq!(sent, rows.len());
    assert!(
        sent >= 8 && sent < reference_rows,
        "cancellation landed mid-run: {sent} of {reference_rows}"
    );
    // Bit-exact prefix: every streamed row equals the reference row at the
    // same index (skip the reference header line).
    let reference_rows_text: Vec<&str> = reference_text.lines().skip(1).collect();
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row, reference_rows_text[i], "row {i}");
    }
    // Cancelling an unknown id is acknowledged but not known.
    assert!(!canceller.cancel("victim").expect("cancel gone"));
    let stats = canceller.stats().expect("stats");
    assert_eq!(stats.jobs_cancelled, 1);
    canceller.shutdown().expect("shutdown");
    daemon.join().expect("join");
}

/// A per-job deadline cancels mid-run with reason `deadline`; the DC point
/// is always delivered (the job starts before the first deadline check).
#[test]
fn deadlines_cancel_with_a_partial_prefix() {
    let (addr, daemon) = boot(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let mut csv = Vec::new();
    let end = client
        .run_streaming(
            RunRequest {
                deadline_ms: Some(40),
                ..request(SLOW_DECK, "deadline", Method::BackwardEuler)
            },
            &mut csv,
            ',',
        )
        .expect("run");
    let RunEnd::Cancelled { reason, rows, .. } = end else {
        panic!("expected cancellation, got {end:?}");
    };
    assert_eq!(reason, "deadline");
    assert!(rows >= 1, "at least the DC point streams: {rows}");
    let text = String::from_utf8(csv).unwrap();
    assert!(text.starts_with("time,out\n"), "{text}");
    assert_eq!(text.lines().count(), rows + 1);
    client.shutdown().expect("shutdown");
    let stats = daemon.join().expect("join");
    assert_eq!(stats.jobs_cancelled, 1);
}

/// A full queue bounces further submissions with `busy` instead of
/// blocking; the rejection is counted.
#[test]
fn full_queue_replies_busy() {
    let (addr, daemon) = boot(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let mut running = Client::connect(addr).expect("connect");
    running
        .send(&Request::Run(RunRequest {
            chunk_rows: Some(1),
            ..request(SLOW_DECK, "running", Method::BackwardEuler)
        }))
        .expect("send");
    // Wait for the first chunk: the job has left the queue and is running.
    loop {
        match running.recv().expect("recv") {
            Response::Chunk { .. } => break,
            Response::Accepted { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    let mut filler = Client::connect(addr).expect("connect");
    filler
        .send(&Request::Run(request(
            SLOW_DECK,
            "queued",
            Method::BackwardEuler,
        )))
        .expect("send");
    match filler.recv().expect("recv") {
        Response::Accepted { queue_depth, .. } => assert_eq!(queue_depth, 1),
        other => panic!("unexpected frame {other:?}"),
    }
    let mut bounced = Client::connect(addr).expect("connect");
    bounced
        .send(&Request::Run(request(
            RC_DECK,
            "bounced",
            Method::ExponentialRosenbrock,
        )))
        .expect("send");
    match bounced.recv().expect("recv") {
        Response::Busy { id, queue_capacity } => {
            assert_eq!(id, "bounced");
            assert_eq!(queue_capacity, 1);
        }
        other => panic!("unexpected frame {other:?}"),
    }
    // Unblock quickly: cancel both admitted jobs, then drain and stop.
    assert!(bounced.cancel("running").expect("cancel"));
    assert!(bounced.cancel("queued").expect("cancel"));
    let stats = bounced.stats().expect("stats");
    assert_eq!(stats.jobs_rejected, 1);
    bounced.shutdown().expect("shutdown");
    let final_stats = daemon.join().expect("join");
    assert_eq!(final_stats.jobs_cancelled, 2);
    assert_eq!(final_stats.jobs_rejected, 1);
}

/// A malformed frame (or an oversized declared length) gets a
/// `protocol_error` reply and the connection is closed; an oversized deck in
/// a well-formed frame is a per-job `usage` error and the connection stays
/// usable.
#[test]
fn malformed_and_oversized_inputs_are_rejected() {
    let (addr, daemon) = boot(ServeConfig {
        max_deck_bytes: 64,
        ..ServeConfig::default()
    });

    // Malformed length line: protocol_error, then EOF.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        std::io::Write::write_all(&mut stream, b"not-a-length\n{}\n").expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let frame = read_frame(&mut reader, 1 << 20)
            .expect("read")
            .expect("frame");
        match Response::from_json(&frame).expect("parse") {
            Response::ProtocolError { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
        assert!(
            read_frame(&mut reader, 1 << 20).expect("read").is_none(),
            "connection closes after a protocol error"
        );
    }

    // Oversized declared frame length: same treatment, nothing buffered.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        std::io::Write::write_all(&mut stream, b"99999999\n").expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let frame = read_frame(&mut reader, 1 << 20)
            .expect("read")
            .expect("frame");
        match Response::from_json(&frame).expect("parse") {
            Response::ProtocolError { message } => {
                assert!(message.contains("oversized"), "{message}")
            }
            other => panic!("unexpected frame {other:?}"),
        }
        assert!(read_frame(&mut reader, 1 << 20).expect("read").is_none());
    }

    // Valid JSON but not a known request: protocol_error.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write_frame(&mut stream, r#"{"type":"warp"}"#).expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let frame = read_frame(&mut reader, 1 << 20)
            .expect("read")
            .expect("frame");
        assert!(matches!(
            Response::from_json(&frame).expect("parse"),
            Response::ProtocolError { .. }
        ));
    }

    // Oversized deck: usage-class job error, connection stays open.
    {
        let mut client = Client::connect(addr).expect("connect");
        let mut sink = Vec::new();
        let end = client
            .run_streaming(
                request(SLOW_DECK, "too-big", Method::BackwardEuler),
                &mut sink,
                ',',
            )
            .expect("run");
        match end {
            RunEnd::Failed { class, message } => {
                assert_eq!(class, "usage");
                assert!(message.contains("bytes"), "{message}");
            }
            other => panic!("unexpected end {other:?}"),
        }
        assert!(sink.is_empty());
        client
            .ping()
            .expect("connection survives an oversized deck");
        client.shutdown().expect("shutdown");
    }
    let stats = daemon.join().expect("join");
    assert_eq!(stats.jobs_accepted, 0);
}

/// A parse-failing deck and a deck without a `.tran` card map to the CLI
/// error taxonomy (`parse` and `usage`).
#[test]
fn job_failures_carry_their_error_class() {
    let (addr, daemon) = boot(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let mut sink = Vec::new();
    let end = client
        .run_streaming(
            request(
                "R1 in out\n.tran 1p 2p\n",
                "bad-parse",
                Method::ExponentialRosenbrock,
            ),
            &mut sink,
            ',',
        )
        .expect("run");
    assert!(
        matches!(end, RunEnd::Failed { ref class, .. } if class == "parse"),
        "{end:?}"
    );
    let end = client
        .run_streaming(
            request(
                "V1 a 0 DC 1\nR1 a 0 1k\n.op\n",
                "no-tran",
                Method::ExponentialRosenbrock,
            ),
            &mut sink,
            ',',
        )
        .expect("run");
    assert!(
        matches!(end, RunEnd::Failed { ref class, .. } if class == "usage"),
        "{end:?}"
    );
    // Duplicate active ids are usage errors too (two long jobs, same id).
    // Replies to this connection's requests arrive in order, so the cancel
    // has to come from a second connection.
    client
        .send(&Request::Run(request(
            SLOW_DECK,
            "dup",
            Method::BackwardEuler,
        )))
        .expect("send");
    client
        .send(&Request::Run(request(
            SLOW_DECK,
            "dup",
            Method::BackwardEuler,
        )))
        .expect("send");
    let mut canceller = Client::connect(addr).expect("connect");
    let mut saw_duplicate_error = false;
    let mut cancel_sent = false;
    let mut terminal = false;
    while !(saw_duplicate_error && terminal) {
        match client.recv().expect("recv") {
            Response::JobError { class, .. } => {
                assert_eq!(class, "usage");
                saw_duplicate_error = true;
            }
            Response::Accepted { .. } if !cancel_sent => {
                assert!(canceller.cancel("dup").expect("cancel"));
                cancel_sent = true;
            }
            Response::Done { .. } | Response::Cancelled { .. } => terminal = true,
            _ => {}
        }
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs_failed, 2);
    client.shutdown().expect("shutdown");
    daemon.join().expect("join");
}

/// Graceful shutdown: jobs already admitted (running *and* queued) drain to
/// completion; their clients receive full waveforms after the shutdown
/// request was acknowledged.
#[test]
fn shutdown_drains_in_flight_jobs() {
    let (addr, daemon) = boot(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut submitter = Client::connect(addr).expect("connect");
    submitter
        .send(&Request::Run(request(
            RC_DECK,
            "drain-1",
            Method::ExponentialRosenbrock,
        )))
        .expect("send");
    submitter
        .send(&Request::Run(request(
            RC_DECK,
            "drain-2",
            Method::ExponentialRosenbrock,
        )))
        .expect("send");

    let mut stopper = Client::connect(addr).expect("connect");
    stopper.shutdown().expect("shutdown");

    // Both jobs still complete; frames keep flowing after shutdown.
    let mut completed = std::collections::HashSet::new();
    while completed.len() < 2 {
        match submitter.recv().expect("recv") {
            Response::Done { id, rows, .. } => {
                assert!(rows > 5);
                completed.insert(id);
            }
            Response::Accepted { .. } | Response::Chunk { .. } => {}
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert!(completed.contains("drain-1") && completed.contains("drain-2"));
    let stats = daemon.join().expect("join");
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.jobs_accepted, 2);

    // New connections are refused once the daemon exited.
    assert!(
        Client::connect(addr).is_err() || {
            let mut late = Client::connect(addr).unwrap();
            late.ping().is_err()
        }
    );
}

/// `decimate` keeps every k-th accepted row — the memory/bandwidth knob —
/// and the kept rows are bit-identical to the corresponding full-rate rows.
#[test]
fn decimation_streams_every_kth_row() {
    let (addr, daemon) = boot(ServeConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let mut full = Vec::new();
    let RunEnd::Done {
        rows: full_rows, ..
    } = client
        .run_streaming(
            request(RC_DECK, "full", Method::ExponentialRosenbrock),
            &mut full,
            ',',
        )
        .expect("run")
    else {
        panic!("expected done");
    };
    let mut thinned = Vec::new();
    let RunEnd::Done {
        rows: thinned_rows, ..
    } = client
        .run_streaming(
            RunRequest {
                decimate: 4,
                ..request(RC_DECK, "thinned", Method::ExponentialRosenbrock)
            },
            &mut thinned,
            ',',
        )
        .expect("run")
    else {
        panic!("expected done");
    };
    assert_eq!(thinned_rows, full_rows.div_ceil(4), "every 4th row");
    let full_text = String::from_utf8(full).unwrap();
    let thinned_text = String::from_utf8(thinned).unwrap();
    let full_lines: Vec<&str> = full_text.lines().collect();
    for (i, line) in thinned_text.lines().enumerate() {
        if i == 0 {
            assert_eq!(line, full_lines[0], "same header");
        } else {
            assert_eq!(line, full_lines[1 + (i - 1) * 4], "kept row {i}");
        }
    }
    client.shutdown().expect("shutdown");
    daemon.join().expect("join");
}
