//! Minimal hand-rolled JSON, in the style of the CLI's `--error-format
//! json` output: the container has no registry access, so the wire format
//! is parsed and printed by ~two hundred lines of std-only code instead of
//! a serde dependency.
//!
//! Only what the protocol needs is supported — objects, arrays, strings,
//! finite numbers, booleans and `null`; no comments, no trailing commas,
//! and numbers round-trip through `f64`. Waveform values never pass through
//! this number path: they travel as preformatted 17-significant-digit
//! *strings* (see [`crate::protocol`]), so bit-identity cannot depend on
//! anyone's float parser.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs (duplicate keys keep
    /// the last occurrence on lookup, like every mainstream parser).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax problem, with its
    /// byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (last occurrence wins); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer (rejects negatives,
    /// fractions and anything beyond 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value as compact single-line JSON.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a finite number; non-finite values (which JSON cannot express)
/// serialize as `null`.
fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:e}");
    }
}

/// Writes `s` as a JSON string literal (the same escaping rules as the
/// CLI's `--error-format json`).
fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {}", *c as char, *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not needed by this protocol;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Convenience: an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: a string value.
pub fn s(text: impl Into<String>) -> Json {
    Json::Str(text.into())
}

/// Convenience: a numeric value from any unsigned counter.
pub fn n(value: usize) -> Json {
    Json::Num(value as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let text = r#"{"type":"run","id":"a-1","probes":["out","in"],"deadline_ms":250,"nested":{"x":[1,2.5,-3e-2,true,false,null]},"deck":"V1 a 0 DC 1\nR1 a 0 1k\n.tran 1p 10p\n"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("run"));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(250));
        let probes = v.get("probes").and_then(Json::as_arr).unwrap();
        assert_eq!(probes.len(), 2);
        assert!(v.get("deck").unwrap().as_str().unwrap().contains('\n'));
        // dump -> parse is the identity on the value.
        let again = Json::parse(&v.dump()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn escapes_survive_the_round_trip() {
        let original = Json::Str("quote \" backslash \\ newline \n tab \t ctrl \u{1}".to_string());
        let parsed = Json::parse(&original.dump()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn malformed_documents_are_rejected_with_positions() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "--5",
            "{\"a\":\"\\q\"}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn numbers_and_integers_print_compactly() {
        assert_eq!(Json::Num(42.0).dump(), "42");
        assert_eq!(Json::Num(0.0).dump(), "0");
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
        let v = Json::parse("2.5e-3").unwrap();
        assert_eq!(v.as_f64(), Some(2.5e-3));
        // Negatives, fractions and oversized values are not u64 counters.
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(1e17).as_u64(), None);
    }

    #[test]
    fn duplicate_keys_keep_the_last_occurrence() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }
}
