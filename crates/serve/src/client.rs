//! A blocking client for the `exi-serve` wire protocol — the library behind
//! `exi-cli client` and the integration tests.

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_frame, write_frame, FrameError, Request, Response, RunRequest, DEFAULT_MAX_FRAME_BYTES,
};
use crate::stats::ServerStats;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed.
    Io(std::io::Error),
    /// The server sent a frame this client could not parse or did not
    /// expect.
    Protocol(String),
    /// The server reported a protocol violation and closed the connection.
    Rejected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Rejected(m) => write!(f, "rejected by server: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

/// How a streamed run ended (every variant after the waveform prefix — if
/// any — has been written to the sink).
#[derive(Debug, Clone, PartialEq)]
pub enum RunEnd {
    /// Complete waveform; carries the server's `done` counters.
    Done {
        /// Data rows written (header not counted).
        rows: usize,
        /// Accepted solver steps.
        accepted_steps: usize,
        /// Symbolic LU analyses this job performed.
        symbolic_analyses: usize,
        /// Warm symbolic-cache hits this job recorded.
        shared_symbolic_hits: usize,
        /// Stamping-plan compilations this job performed.
        plan_compilations: usize,
        /// Warm plan-cache hits this job recorded.
        shared_plan_hits: usize,
    },
    /// Cancelled (wire or deadline); the sink holds a bit-exact prefix.
    Cancelled {
        /// `"token"` or `"deadline"`.
        reason: String,
        /// Simulation time at the stop boundary.
        at_time: String,
        /// Data rows written before the stop.
        rows: usize,
    },
    /// The job failed with an `exi-cli`-taxonomy error class.
    Failed {
        /// `parse`, `convergence`, `io`, `usage` or `internal`.
        class: String,
        /// Human-readable message.
        message: String,
    },
    /// Backpressure: the queue was full.
    Busy,
    /// Admission control refused the job before it could queue.
    Rejected {
        /// `"budget"`, `"inflight"`, `"overload"` or `"degraded"`.
        reason: String,
        /// Human-readable explanation of the refusal.
        message: String,
    },
    /// The server is shutting down and did not accept the job.
    ShuttingDown,
}

/// A blocking connection to an `exi-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Sends one request frame.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        write_frame(&mut self.writer, &request.to_json())
    }

    /// Receives one response frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on EOF/transport failure, [`ClientError::Protocol`]
    /// on an unparseable frame.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let frame = read_frame(&mut self.reader, self.max_frame_bytes)?
            .ok_or_else(|| ClientError::Io(std::io::ErrorKind::UnexpectedEof.into()))?;
        Response::from_json(&frame).map_err(ClientError::Protocol)
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected reply type.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Fetches a [`ServerStats`] snapshot.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected reply type.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Requests cancellation of `id`; returns whether the server knew the
    /// job.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected reply type.
    pub fn cancel(&mut self, id: &str) -> Result<bool, ClientError> {
        self.send(&Request::Cancel { id: id.to_string() })?;
        match self.recv()? {
            Response::CancelAck { known, .. } => Ok(known),
            other => Err(unexpected("cancel_ack", &other)),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or an unexpected reply type.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }

    /// Submits `run` and streams its waveform into `sink` as
    /// delimiter-separated rows, writing every received value **verbatim** —
    /// the resulting bytes are identical to `exi-cli run` on the same deck.
    ///
    /// Interleaved non-run frames (`pong`, `stats`, `cancel_ack`) are
    /// skipped; the first terminal frame for this job ends the call.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures and sink write errors. Job-level failures
    /// are returned as [`RunEnd`] values, not errors.
    pub fn run_streaming(
        &mut self,
        run: RunRequest,
        sink: &mut dyn Write,
        delimiter: char,
    ) -> Result<RunEnd, ClientError> {
        let id = run.id.clone();
        self.send(&Request::Run(run))?;
        loop {
            match self.recv()? {
                Response::Accepted { .. } => {}
                Response::Busy { id: busy_id, .. } if busy_id == id => return Ok(RunEnd::Busy),
                Response::Rejected {
                    id: rejected_id,
                    reason,
                    message,
                } if rejected_id == id => return Ok(RunEnd::Rejected { reason, message }),
                Response::ShuttingDown => return Ok(RunEnd::ShuttingDown),
                Response::Chunk {
                    id: chunk_id,
                    columns,
                    rows,
                    ..
                } if chunk_id == id => {
                    if let Some(columns) = columns {
                        write_joined(sink, &columns, delimiter)?;
                    }
                    for row in &rows {
                        write_joined(sink, row, delimiter)?;
                    }
                }
                Response::Done {
                    id: done_id,
                    rows,
                    accepted_steps,
                    symbolic_analyses,
                    shared_symbolic_hits,
                    plan_compilations,
                    shared_plan_hits,
                } if done_id == id => {
                    sink.flush()?;
                    return Ok(RunEnd::Done {
                        rows,
                        accepted_steps,
                        symbolic_analyses,
                        shared_symbolic_hits,
                        plan_compilations,
                        shared_plan_hits,
                    });
                }
                Response::Cancelled {
                    id: cancelled_id,
                    reason,
                    at_time,
                    rows,
                } if cancelled_id == id => {
                    sink.flush()?;
                    return Ok(RunEnd::Cancelled {
                        reason,
                        at_time,
                        rows,
                    });
                }
                Response::JobError {
                    id: err_id,
                    class,
                    message,
                } if err_id == id => return Ok(RunEnd::Failed { class, message }),
                Response::ProtocolError { message } => return Err(ClientError::Rejected(message)),
                // A frame for another job on a shared connection, or an
                // interleaved reply to a side request: skip it.
                _ => {}
            }
        }
    }
}

fn write_joined(sink: &mut dyn Write, cells: &[String], delimiter: char) -> std::io::Result<()> {
    let mut first = true;
    for cell in cells {
        if !first {
            write!(sink, "{delimiter}")?;
        }
        sink.write_all(cell.as_bytes())?;
        first = false;
    }
    writeln!(sink)
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {}", got.to_json()))
}
